//! # cagnet
//!
//! Facade crate for the CAGNET reproduction — *Reducing Communication in
//! Graph Neural Network Training* (Tripathy, Yelick, Buluç; SC 2020) —
//! re-exporting the four workspace crates:
//!
//! * [`dense`] — matrices, GEMM kernels, activations
//! * [`sparse`] — CSR/COO/DCSR, SpMM, generators, partitioning
//! * [`comm`] — the simulated distributed runtime and α–β cost model
//! * [`core`] — the serial reference and the 1D/1.5D/2D/3D trainers
//!
//! ## Example: distributed training matches serial
//!
//! ```
//! use cagnet::comm::CostModel;
//! use cagnet::core::trainer::{train_distributed, Algorithm, TrainConfig};
//! use cagnet::core::{GcnConfig, Problem, SerialTrainer};
//! use cagnet::sparse::generate::erdos_renyi;
//!
//! // A small random graph with synthetic features and labels.
//! let graph = erdos_renyi(40, 3.0, 7);
//! let problem = Problem::synthetic(&graph, 8, 3, 1.0, 8);
//! let gcn = GcnConfig::three_layer(8, 6, 3);
//!
//! // Serial reference.
//! let mut serial = SerialTrainer::new(&problem, gcn.clone());
//! let serial_losses = serial.train(3);
//!
//! // The paper's 2D SUMMA algorithm on a simulated 4-GPU cluster.
//! let tc = TrainConfig { epochs: 3, ..Default::default() };
//! let dist = train_distributed(
//!     &problem, &gcn, Algorithm::TwoD, 4, CostModel::summit_like(), &tc,
//! );
//!
//! for (a, b) in serial_losses.iter().zip(&dist.losses) {
//!     assert!((a - b).abs() < 1e-8);
//! }
//! // ...and the communication ledger is populated.
//! assert!(dist.reports.iter().all(|r| r.comm_words() > 0));
//! ```
//!
//! ## Example: counting words against the paper's bounds
//!
//! ```
//! use cagnet::core::analysis::{self, Shape};
//!
//! let s = Shape::new(1 << 20, 16 << 20, 128, 3);
//! let w_1d = analysis::one_d(&s, 64, None).words;
//! let w_2d = analysis::two_d(&s, 64).words;
//! let w_3d = analysis::three_d(&s, 64).words;
//! assert!(w_2d < w_1d); // the O(√P) reduction
//! assert!(w_3d < w_2d); // the further O(P^(1/6))
//! ```

pub use cagnet_comm as comm;
pub use cagnet_core as core;
pub use cagnet_dense as dense;
pub use cagnet_sparse as sparse;
