//! Property tests for the I/O substrate: Matrix Market and edge-list
//! roundtrips over arbitrary sparse matrices.

use cagnet_sparse::io::{read_edge_list, read_matrix_market, write_matrix_market};
use cagnet_sparse::{Coo, Csr};
use proptest::prelude::*;

fn sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0..rows, 0..cols, -100.0f64..100.0), 0..max_nnz.max(1)).prop_map(
        move |entries| {
            let entries: Vec<_> = entries.into_iter().filter(|&(_, _, v)| v != 0.0).collect();
            Csr::from_coo(Coo::from_entries(rows, cols, entries))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn matrix_market_roundtrips_any_matrix(
        a in (1usize..20, 1usize..20).prop_flat_map(|(r, c)| sparse(r, c, 60))
    ) {
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn edge_list_roundtrips_weighted_digraphs(
        a in (2usize..20,).prop_flat_map(|(n,)| sparse(n, n, 50))
    ) {
        // Serialize as an edge list ourselves, then parse it back.
        let mut text = String::from("# roundtrip\n");
        for i in 0..a.rows() {
            for (j, v) in a.row_entries(i) {
                text.push_str(&format!("{i} {j} {v}\n"));
            }
        }
        let back = read_edge_list(text.as_bytes(), Some(a.rows())).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn matrix_market_header_sizes_are_authoritative(
        rows in 1usize..10, cols in 1usize..10,
    ) {
        // A file that promises more entries than it has must be rejected.
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n{rows} {cols} 2\n1 1 1.0\n"
        );
        prop_assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
