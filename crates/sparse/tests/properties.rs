//! Property-based tests of the sparse substrate: SpMM vs densified GEMM,
//! transpose identities, partition conservation, normalization, edge-cut
//! invariants, and DCSR equivalence — for arbitrary random graphs.

use cagnet_dense::Mat;
use cagnet_parallel::ParallelCtx;
use cagnet_sparse::dcsr::{spmm_dcsr, Dcsr};
use cagnet_sparse::edgecut::{block_partition, evaluate_partition};
use cagnet_sparse::generate::{apply_permutation, erdos_renyi};
use cagnet_sparse::normalize::gcn_normalize;
use cagnet_sparse::partition::{
    block_ranges, grid_block_dense, grid_block_sparse, join_grid_dense, split_cols_sparse,
    split_rows_sparse,
};
use cagnet_sparse::spmm::{
    outer_product_from_transposed, spmm, spmm_acc, spmm_acc_with, spmm_semiring_acc,
    spmm_semiring_acc_with, spmm_with, MinPlus, Semiring,
};
use cagnet_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Random sparse matrix as triplets.
fn sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0..rows, 0..cols, -5.0f64..5.0), 0..max_nnz.max(1)).prop_map(
        move |entries| {
            // Filter exact zeros so nnz counts stay meaningful.
            let entries: Vec<_> = entries.into_iter().filter(|&(_, _, v)| v != 0.0).collect();
            Csr::from_coo(Coo::from_entries(rows, cols, entries))
        },
    )
}

fn dense(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn spmm_matches_densified_gemm(
        (a, b) in (1usize..16, 1usize..16, 1usize..8)
            .prop_flat_map(|(m, k, f)| (sparse(m, k, 40), dense(k, f)))
    ) {
        let fast = spmm(&a, &b);
        let reference = cagnet_dense::matmul(&a.to_dense(), &b);
        prop_assert!(fast.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn parallel_spmm_is_bit_identical_to_serial(
        (a, b) in (1usize..48, 1usize..16, 1usize..8)
            .prop_flat_map(|(m, k, f)| (sparse(m, k, 120), dense(k, f))),
        threads in 1usize..=8,
    ) {
        // Exact equality: the nnz-balanced row chunking never splits a
        // row, so each output element keeps its serial accumulation
        // order. Random matrices here routinely contain empty rows
        // (the 0 x k degenerate block has its own test below).
        let ctx = ParallelCtx::new(threads);
        prop_assert_eq!(spmm_with(ctx, &a, &b), spmm(&a, &b));
        let mut acc_s = Mat::filled(a.rows(), b.cols(), 0.25);
        let mut acc_p = acc_s.clone();
        spmm_acc(&a, &b, &mut acc_s);
        spmm_acc_with(ctx, &a, &b, &mut acc_p);
        prop_assert_eq!(acc_p, acc_s);
    }

    #[test]
    fn parallel_semiring_spmm_bit_identical(
        (a, b) in (1usize..32, 1usize..12, 1usize..6)
            .prop_flat_map(|(m, k, f)| (sparse(m, k, 80), dense(k, f))),
        threads in 1usize..=8,
    ) {
        let ctx = ParallelCtx::new(threads);
        let mut acc_s = Mat::filled(a.rows(), b.cols(), MinPlus.zero());
        let mut acc_p = acc_s.clone();
        spmm_semiring_acc(&a, &b, &MinPlus, &mut acc_s);
        spmm_semiring_acc_with(ctx, &a, &b, &MinPlus, &mut acc_p);
        prop_assert_eq!(acc_p, acc_s);
    }

    #[test]
    fn transpose_involution(a in sparse(12, 9, 50)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_matches_dense(a in sparse(10, 14, 60)) {
        prop_assert!(a
            .transpose()
            .to_dense()
            .approx_eq(&a.to_dense().transpose(), 0.0));
    }

    #[test]
    fn outer_product_matches_dense_path(
        (at, b) in (1usize..10, 1usize..12, 1usize..6)
            .prop_flat_map(|(bl, n, f)| (sparse(bl, n, 30), dense(bl, f)))
    ) {
        // at is the transpose of a column block; reference: atᵀ · b.
        let got = outer_product_from_transposed(&at, &b);
        let reference = cagnet_dense::matmul(&at.to_dense().transpose(), &b);
        prop_assert!(got.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn row_and_col_splits_conserve_nnz(
        (a, p) in (4usize..20).prop_flat_map(|n| (sparse(n, n, 80), 1usize..8))
    ) {
        let rows: usize = split_rows_sparse(&a, p).iter().map(Csr::nnz).sum();
        let cols: usize = split_cols_sparse(&a, p).iter().map(Csr::nnz).sum();
        prop_assert_eq!(rows, a.nnz());
        prop_assert_eq!(cols, a.nnz());
    }

    #[test]
    fn grid_blocks_reassemble(
        (a, pr, pc) in (4usize..16).prop_flat_map(|n| (sparse(n, n, 60), 1usize..5, 1usize..5))
    ) {
        let blocks: Vec<Mat> = (0..pr)
            .flat_map(|i| (0..pc).map(move |j| (i, j)))
            .map(|(i, j)| grid_block_sparse(&a, pr, pc, i, j).to_dense())
            .collect();
        prop_assert!(join_grid_dense(&blocks, pr, pc).approx_eq(&a.to_dense(), 0.0));
        // Dense grid split agrees with the sparse one.
        let dblocks: Vec<Mat> = (0..pr)
            .flat_map(|i| (0..pc).map(move |j| (i, j)))
            .map(|(i, j)| grid_block_dense(&a.to_dense(), pr, pc, i, j))
            .collect();
        for (s, d) in blocks.iter().zip(&dblocks) {
            prop_assert!(s.approx_eq(d, 0.0));
        }
    }

    #[test]
    fn block_ranges_partition_exactly(n in 0usize..100, p in 1usize..20) {
        let ranges = block_ranges(n, p);
        let total: usize = ranges.iter().map(|&(a, b)| b - a).sum();
        prop_assert_eq!(total, n);
        let sizes: Vec<usize> = ranges.iter().map(|&(a, b)| b - a).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn normalization_keeps_symmetry_and_bounds(n in 2usize..24, d in 0.5f64..6.0, seed in 0u64..500) {
        let mut coo = erdos_renyi(n, d, seed).to_coo();
        coo.symmetrize();
        let a = Csr::from_coo(coo);
        let ahat = gcn_normalize(&a);
        // Symmetric in, symmetric out.
        prop_assert!(ahat.to_dense().approx_eq(&ahat.transpose().to_dense(), 1e-12));
        // All entries in (0, 1] (normalized weights with self loops).
        prop_assert!(ahat.vals().iter().all(|&v| v > 0.0 && v <= 1.0 + 1e-12));
    }

    #[test]
    fn edgecut_zero_for_one_part_and_conserved_under_permutation(
        n in 4usize..40, d in 0.5f64..5.0, seed in 0u64..500, p in 2usize..6,
    ) {
        let a = erdos_renyi(n, d, seed);
        let one = evaluate_partition(&a, &block_partition(n, 1), 1);
        prop_assert_eq!(one.total_cut_edges, 0);
        // Permuting vertices and permuting the partition labels the same
        // way leaves every cut statistic unchanged.
        let perm: Vec<usize> = {
            let (_, perm) = cagnet_sparse::generate::permute_symmetric(&a, seed ^ 1);
            perm
        };
        let pa = apply_permutation(&a, &perm);
        let part = block_partition(n, p);
        let mut permuted_part = vec![0usize; n];
        for v in 0..n {
            permuted_part[perm[v]] = part[v];
        }
        let orig = evaluate_partition(&a, &part, p);
        let moved = evaluate_partition(&pa, &permuted_part, p);
        prop_assert_eq!(orig.total_cut_edges, moved.total_cut_edges);
        prop_assert_eq!(orig.edgecut_max(), moved.edgecut_max());
    }

    #[test]
    fn dcsr_roundtrip_and_spmm(
        (a, b) in (1usize..20, 1usize..12, 1usize..6)
            .prop_flat_map(|(m, k, f)| (sparse(m, k, 25), dense(k, f)))
    ) {
        let d = Dcsr::from_csr(&a);
        prop_assert_eq!(d.to_csr(), a.clone());
        prop_assert!(spmm_dcsr(&d, &b).approx_eq(&spmm(&a, &b), 1e-12));
        prop_assert_eq!(d.nnz(), a.nnz());
        prop_assert!(d.non_empty_rows() <= a.rows());
    }
}

#[test]
fn parallel_spmm_handles_zero_row_block() {
    // A 0 x k block (a rank that owns no rows at high P) must be a no-op
    // under every thread budget.
    let a = Csr::from_coo(Coo::from_entries(0, 7, vec![]));
    let b = Mat::filled(7, 3, 1.5);
    for threads in 1..=8 {
        let ctx = ParallelCtx::new(threads);
        let got = spmm_with(ctx, &a, &b);
        assert_eq!(got.shape(), (0, 3));
        let mut acc = Mat::zeros(0, 3);
        spmm_acc_with(ctx, &a, &b, &mut acc);
        assert_eq!(acc.shape(), (0, 3));
    }
}
