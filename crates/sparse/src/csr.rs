//! Compressed Sparse Row matrix.
//!
//! CSR is the computation format for the adjacency matrix `A` throughout
//! the project, matching the paper's use of cuSPARSE's CSR `csrmm2` for its
//! local SpMM calls (§V-C). Column indices within each row are kept sorted,
//! which makes equality, transpose, and sub-block extraction deterministic.

use crate::coo::Coo;
use cagnet_dense::Mat;

/// Compressed Sparse Row matrix of `f64`.
///
/// ```
/// use cagnet_sparse::{Coo, Csr};
/// let a = Csr::from_coo(Coo::from_entries(2, 3, vec![(0, 1, 5.0), (1, 2, 7.0)]));
/// assert_eq!(a.nnz(), 2);
/// assert_eq!(a.get(0, 1), 5.0);
/// assert_eq!(a.transpose().get(1, 0), 5.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Build from COO; duplicates are summed.
    pub fn from_coo(mut coo: Coo) -> Self {
        coo.sum_duplicates();
        let rows = coo.rows();
        let cols = coo.cols();
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in coo.entries() {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = coo.nnz();
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        // Entries are already row-major sorted by sum_duplicates.
        for &(_, c, v) in coo.entries() {
            col_idx.push(c);
            vals.push(v);
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, non-monotone
    /// `row_ptr`, unsorted or out-of-range column indices).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), vals.len(), "col/val length mismatch");
        assert_eq!(row_ptr.last().copied(), Some(col_idx.len()), "nnz mismatch");
        for i in 0..rows {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr not monotone");
            let s = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in s.windows(2) {
                assert!(w[0] < w[1], "columns not strictly increasing in row {i}");
            }
            if let Some(&last) = s.last() {
                assert!(last < cols, "column index {last} out of bounds");
            }
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Empty matrix (no nonzeros) with the given dimensions.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// `n x n` identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros — the paper's `nnz(A)`.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Average nonzeros per row — the paper's average degree `d = nnz/n`.
    pub fn avg_degree(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// Row-pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row-major, sorted within each row.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Nonzero values, parallel to `col_idx`.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable nonzero values (pattern is fixed).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Iterate over the `(col, value)` pairs of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Number of nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Number of rows that contain at least one nonzero. The paper's §IV-A.3
    /// sparsity analysis is about exactly this count on 1D partitions of an
    /// Erdős–Rényi graph.
    pub fn non_empty_rows(&self) -> usize {
        (0..self.rows).filter(|&i| self.row_nnz(i) > 0).count()
    }

    /// Sorted distinct column indices that carry at least one nonzero —
    /// exactly the feature rows a rank multiplying this block needs from
    /// the owner of the corresponding row partition. This is the
    /// needed-row set of sparsity-aware communication (Mukhopadhyay et
    /// al.): a receiver holding `Aᵀ_{ij}` touches only these rows of
    /// `H_j`, so only they need to travel.
    pub fn needed_cols(&self) -> Vec<usize> {
        let mut seen = vec![false; self.cols];
        for &c in &self.col_idx {
            seen[c] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(c, &s)| s.then_some(c))
            .collect()
    }

    /// [`needed_cols`](Csr::needed_cols) of the sub-block
    /// `rows r0..r1 × cols c0..c1` without materializing it: the sorted
    /// distinct column indices (relative to `c0`) carrying a nonzero in
    /// that window. The 2D/3D trainers call this once per SUMMA stage at
    /// setup to derive the needed-row set of each stage panel.
    pub fn needed_cols_in(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Vec<usize> {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        let mut seen = vec![false; c1 - c0];
        for i in r0..r1 {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let cols_row = &self.col_idx[lo..hi];
            let start = cols_row.partition_point(|&c| c < c0);
            let end = cols_row.partition_point(|&c| c < c1);
            for &c in &cols_row[start..end] {
                seen[c - c0] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(c, &s)| s.then_some(c))
            .collect()
    }

    /// Renumber column indices to their positions in `needed` (sorted
    /// distinct, a superset of [`needed_cols`](Csr::needed_cols)); the
    /// result has `needed.len()` columns and identical pattern/values.
    /// Multiplying the compact matrix against a matrix holding only the
    /// `needed` rows (in order) is bit-identical to multiplying the
    /// original against the full-height operand: the remap is monotone,
    /// so every row's accumulation order is unchanged.
    ///
    /// # Panics
    /// Panics if a stored column index is absent from `needed`.
    pub fn compact_cols(&self, needed: &[usize]) -> Csr {
        debug_assert!(needed.windows(2).all(|w| w[0] < w[1]), "needed not sorted");
        let col_idx = self
            .col_idx
            .iter()
            .map(|&c| match needed.binary_search(&c) {
                Ok(pos) => pos,
                Err(_) => panic!("column {c} not in the needed set"),
            })
            .collect();
        Csr {
            rows: self.rows,
            cols: needed.len(),
            row_ptr: self.row_ptr.clone(),
            col_idx,
            vals: self.vals.clone(),
        }
    }

    /// Value at `(i, j)` (0 if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => self.vals[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Out-of-place transpose (CSR of `Aᵀ`), via counting sort — O(nnz + n).
    ///
    /// Distributed trainers use this to derive the `A`-blocks from stored
    /// `Aᵀ`-blocks and vice versa; the paper charges this under "trpose" in
    /// its Figure 3 breakdown.
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut cursor = row_ptr.clone();
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let dst = cursor[c];
                col_idx[dst] = r;
                vals[dst] = v;
                cursor[c] += 1;
            }
        }
        // Rows of the transpose are visited in increasing source-row order,
        // so each output row's columns are already sorted.
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Extract the sub-matrix of rows `r0..r1` and columns `c0..c1`,
    /// reindexed to local coordinates. This is the primitive behind every
    /// 1D/2D/3D distribution of `A`.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Csr {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        let mut row_ptr = Vec::with_capacity(r1 - r0 + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for i in r0..r1 {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let cols_row = &self.col_idx[lo..hi];
            // Binary search the column window once per row.
            let start = cols_row.partition_point(|&c| c < c0);
            let end = cols_row.partition_point(|&c| c < c1);
            for k in lo + start..lo + end {
                col_idx.push(self.col_idx[k] - c0);
                vals.push(self.vals[k]);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows: r1 - r0,
            cols: c1 - c0,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Densify into a [`Mat`] — test/debug helper; O(rows·cols) memory.
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                m[(i, c)] = v;
            }
        }
        m
    }

    /// Convert back to COO triplets.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                coo.push(i, c, v);
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_coo(Coo::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        ))
    }

    #[test]
    fn from_coo_layout() {
        let a = sample();
        assert_eq!(a.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(a.col_idx(), &[0, 2, 0, 1]);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_coo(Coo::from_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 4.0)]));
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 5.0);
    }

    #[test]
    fn transpose_matches_dense() {
        let a = sample();
        let t = a.transpose();
        assert!(t.to_dense().approx_eq(&a.to_dense().transpose(), 0.0));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn block_extraction_matches_dense() {
        let a = sample();
        let b = a.block(0, 2, 1, 3);
        let expect = a.to_dense().block(0, 2, 1, 3);
        assert!(b.to_dense().approx_eq(&expect, 0.0));
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
    }

    #[test]
    fn blocks_reassemble_to_whole() {
        let a = sample();
        let mut total = 0;
        for (r0, r1) in [(0usize, 2usize), (2, 3)] {
            for (c0, c1) in [(0usize, 1usize), (1, 3)] {
                total += a.block(r0, r1, c0, c1).nnz();
            }
        }
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn identity_and_empty() {
        let i = Csr::identity(4);
        assert_eq!(i.nnz(), 4);
        assert!(i.to_dense().approx_eq(&Mat::eye(4), 0.0));
        let e = Csr::empty(3, 5);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.non_empty_rows(), 0);
    }

    #[test]
    fn degree_statistics() {
        let a = sample();
        assert_eq!(a.row_nnz(0), 2);
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.non_empty_rows(), 2);
        assert!((a.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn needed_cols_is_sorted_distinct() {
        let a = sample();
        // Columns 0 (rows 0, 2), 1 (row 2), 2 (row 0); never column 3+.
        assert_eq!(a.needed_cols(), vec![0, 1, 2]);
        // A block sees only its local column window.
        assert_eq!(a.block(0, 3, 1, 3).needed_cols(), vec![0, 1]);
        assert_eq!(Csr::empty(4, 5).needed_cols(), Vec::<usize>::new());
        // Duplicate columns across rows are reported once and sorted.
        let b = Csr::from_coo(Coo::from_entries(
            3,
            4,
            vec![(0, 3, 1.0), (1, 3, 1.0), (2, 0, 1.0)],
        ));
        assert_eq!(b.needed_cols(), vec![0, 3]);
    }

    #[test]
    fn needed_cols_in_matches_block_needed_cols() {
        let a = sample();
        for (r0, r1) in [(0usize, 3usize), (0, 2), (1, 3), (2, 2)] {
            for (c0, c1) in [(0usize, 3usize), (1, 3), (0, 1), (2, 2)] {
                assert_eq!(
                    a.needed_cols_in(r0, r1, c0, c1),
                    a.block(r0, r1, c0, c1).needed_cols(),
                    "window r{r0}..{r1} c{c0}..{c1}"
                );
            }
        }
    }

    #[test]
    fn compact_cols_is_monotone_renumbering() {
        let a = Csr::from_coo(Coo::from_entries(
            2,
            6,
            vec![(0, 1, 1.0), (0, 5, 2.0), (1, 3, 3.0), (1, 5, 4.0)],
        ));
        let needed = a.needed_cols();
        assert_eq!(needed, vec![1, 3, 5]);
        let c = a.compact_cols(&needed);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row_ptr(), a.row_ptr());
        assert_eq!(c.vals(), a.vals());
        assert_eq!(c.col_idx(), &[0, 2, 1, 2]);
        // A strict superset is allowed; positions shift accordingly.
        let s = a.compact_cols(&[0, 1, 3, 5]);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.col_idx(), &[1, 3, 2, 3]);
        // The empty pattern compacts against an empty needed set.
        let e = Csr::empty(3, 4).compact_cols(&[]);
        assert_eq!(e.cols(), 0);
        assert_eq!(e.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "not in the needed set")]
    fn compact_cols_rejects_missing_column() {
        let a = sample();
        let _ = a.compact_cols(&[0, 2]); // column 1 is referenced by row 2
    }

    #[test]
    #[should_panic(expected = "columns not strictly increasing")]
    fn from_raw_rejects_unsorted() {
        let _ = Csr::from_raw(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr not monotone")]
    fn from_raw_rejects_nonmonotone() {
        let _ = Csr::from_raw(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 1.0]);
    }
}
