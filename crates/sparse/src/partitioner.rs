//! A from-scratch graph partitioner — the METIS stand-in for §IV-A.8.
//!
//! The paper ran METIS on Reddit with 64 parts and found a 72% reduction in
//! *total* edgecut over random block distribution, but only a 29% reduction
//! in the *max-per-process* cut that actually governs bulk-synchronous
//! runtime. Reproducing that qualitative asymmetry does not need METIS
//! itself; this module provides a greedy BFS-grown partitioner with a
//! boundary-refinement pass (Kernighan–Lin flavored), which on scale-free
//! graphs lands in the same regime: large total-cut wins, much smaller
//! max-cut wins.
//!
//! Two refinement objectives are available (see [`PartitionObjective`]):
//! the classic *edgecut* connectivity gain, and a *communication-volume*
//! objective in the spirit of Demirci et al. (arXiv:2212.05009) that
//! scores every move by the change in per-part gathered-row volume — the
//! `remote_rows_per_part` of [`crate::edgecut::CutReport`], which is the
//! exact quantity [`Csr::needed_cols`] measures when the trainers build
//! their sparsity-aware needed-row sets. Volume refinement maintains an
//! incremental reference-count ledger so each candidate move is scored in
//! `O(deg)` and refinement stays near-linear in `nnz` per pass.

use crate::csr::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What boundary refinement optimizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionObjective {
    /// Greedy connectivity gain: move a vertex to the neighboring part it
    /// has the most edges to. Minimizes (total) cut edges — the classic
    /// KL/FM objective, and the historical behaviour of this module.
    #[default]
    EdgeCut,
    /// Gathered-row communication volume: after a connectivity-gain
    /// warm-up, move a vertex only when the `(max-per-part, total)` pair
    /// of distinct-remote-row counts strictly improves, max first. This
    /// is the §IV-A.8 metric that governs 1D bulk-synchronous runtime,
    /// and the exact row counts the sparsity-aware trainers fetch via
    /// `gather_rows`; under identical config it never scores worse on it
    /// than [`PartitionObjective::EdgeCut`].
    Volume,
}

/// Configuration for [`partition_greedy_bfs`].
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Number of parts.
    pub num_parts: usize,
    /// Maximum allowed part size as a multiple of the ideal `n/p`
    /// (1.03 = 3% imbalance, the METIS default ballpark).
    pub balance_factor: f64,
    /// Boundary-refinement sweeps after the initial growth.
    pub refinement_passes: usize,
    /// Spread-and-pin threshold for high-degree vertices, as a multiple
    /// of the average degree: vertices above it are distributed
    /// round-robin across parts *before* BFS growth and never moved by
    /// refinement. This mirrors what balanced multilevel partitioners
    /// (METIS) achieve implicitly — without it, BFS growth pulls hub
    /// vertices into one part and the max-per-part cut explodes. `None`
    /// disables pinning.
    pub pin_high_degree: Option<f64>,
    /// Seed for tie-breaking and seed-vertex selection.
    pub seed: u64,
    /// Refinement objective (default [`PartitionObjective::EdgeCut`],
    /// the historical behaviour).
    pub objective: PartitionObjective,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_parts: 2,
            balance_factor: 1.03,
            refinement_passes: 4,
            pin_high_degree: Some(4.0),
            seed: 0,
            objective: PartitionObjective::EdgeCut,
        }
    }
}

/// Grow `num_parts` parts by seeded BFS, then refine boundaries under the
/// configured [`PartitionObjective`]. Returns `part[v]` assignments.
///
/// Guarantees, for every input with `n >= num_parts >= 1`:
///
/// * every returned id is `< num_parts`;
/// * every part owns at least one vertex;
/// * no part exceeds `ceil((n / p) · balance_factor)` vertices — the
///   documented balance cap — on *every* assignment path, including hub
///   pinning and the disconnected-remainder fallback.
///
/// The undirected structure of `a` is used (both in- and out-neighbors).
pub fn partition_greedy_bfs(a: &Csr, cfg: &PartitionConfig) -> Vec<usize> {
    assert_eq!(a.rows(), a.cols(), "partitioner requires square adjacency");
    let n = a.rows();
    let p = cfg.num_parts;
    assert!(p > 0 && p <= n.max(1), "bad part count");
    let at = a.transpose();
    let max_size = (((n as f64 / p as f64) * cfg.balance_factor).ceil() as usize).max(1);

    let mut part = vec![usize::MAX; n];
    let mut pinned = vec![false; n];
    let mut sizes = vec![0usize; p];
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut unassigned = n;

    // Multi-source BFS: each part grows one frontier in round-robin, so
    // parts stay contiguous regions of the graph where possible.
    let mut frontiers: Vec<Vec<usize>> = vec![Vec::new(); p];

    // Spread-and-pin hubs before growth. The round-robin cursor skips
    // parts already at the balance cap, so pinning alone can never
    // violate it (e.g. many hubs landing on a small `p`).
    if let Some(mult) = cfg.pin_high_degree {
        let deg = |v: usize| a.row_nnz(v) + at.row_nnz(v);
        let avg = (a.nnz() + at.nnz()) as f64 / n.max(1) as f64;
        let mut hubs: Vec<usize> = (0..n).filter(|&v| deg(v) as f64 > mult * avg).collect();
        hubs.sort_unstable_by_key(|&v| std::cmp::Reverse(deg(v)));
        let mut cursor = 0usize;
        for &v in hubs.iter() {
            // First part with space at or after the cursor; every part
            // being full means every vertex already fits exactly — stop.
            let Some(off) = (0..p).find(|off| sizes[(cursor + off) % p] < max_size) else {
                break;
            };
            let pid = (cursor + off) % p;
            cursor = (pid + 1) % p;
            part[v] = pid;
            pinned[v] = true;
            sizes[pid] += 1;
            frontiers[pid].push(v);
            unassigned -= 1;
        }
    }
    for pid in 0..p {
        if !frontiers[pid].is_empty() {
            continue; // already seeded by a pinned hub
        }
        // Pick a random unassigned seed.
        let mut v = rng.gen_range(0..n);
        let mut tries = 0;
        while part[v] != usize::MAX && tries < 4 * n {
            v = rng.gen_range(0..n);
            tries += 1;
        }
        if part[v] != usize::MAX {
            match (0..n).find(|&u| part[u] == usize::MAX) {
                Some(u) => v = u,
                // Pinning plus prior seeding exhausted the vertices: the
                // part stays seedless for now; ensure_nonempty_parts
                // donates it a vertex after growth.
                None => continue,
            }
        }
        part[v] = pid;
        sizes[pid] += 1;
        unassigned -= 1;
        frontiers[pid].push(v);
    }

    while unassigned > 0 {
        let mut progressed = false;
        for pid in 0..p {
            if sizes[pid] >= max_size {
                continue;
            }
            // Pop until a vertex with an unassigned neighbor is found.
            let mut claimed = None;
            while let Some(u) = frontiers[pid].pop() {
                let mut next = None;
                for (w, _) in a.row_entries(u).chain(at.row_entries(u)) {
                    if part[w] == usize::MAX {
                        next = Some(w);
                        break;
                    }
                }
                if let Some(w) = next {
                    // u may have more unassigned neighbors; keep it.
                    frontiers[pid].push(u);
                    claimed = Some(w);
                    break;
                }
            }
            let w = match claimed {
                Some(w) => w,
                None => continue,
            };
            part[w] = pid;
            sizes[pid] += 1;
            unassigned -= 1;
            frontiers[pid].push(w);
            progressed = true;
            if unassigned == 0 {
                break;
            }
        }
        if !progressed {
            // Disconnected remainder: spread leftovers over the smallest
            // parts *with space* so the balance cap holds even when some
            // parts are already full, and restart frontiers there.
            for (v, pv) in part.iter_mut().enumerate() {
                if *pv == usize::MAX {
                    let pid = (0..p)
                        .filter(|&q| sizes[q] < max_size)
                        .min_by_key(|&q| sizes[q])
                        .unwrap_or(0);
                    *pv = pid;
                    sizes[pid] += 1;
                    unassigned -= 1;
                    frontiers[pid].push(v);
                }
            }
        }
    }

    ensure_nonempty_parts(&mut part, &pinned, &mut sizes);

    refine(
        a,
        &at,
        &mut part,
        &pinned,
        &mut sizes,
        max_size,
        cfg.refinement_passes,
        cfg.objective,
    );
    part
}

/// Donate one vertex to every empty part: unpinned vertices from the
/// largest parts first, falling back to pinned ones only if every
/// multi-vertex part is all-pinned. With `n >= p` a donor always exists
/// (some part owns ≥ 2 vertices whenever another owns none), so the
/// partitioner's every-part-nonempty guarantee holds unconditionally.
fn ensure_nonempty_parts(part: &mut [usize], pinned: &[bool], sizes: &mut [usize]) {
    let p = sizes.len();
    for q in 0..p {
        if sizes[q] > 0 {
            continue;
        }
        let donor = (0..part.len())
            .filter(|&v| sizes[part[v]] >= 2)
            .max_by_key(|&v| (sizes[part[v]], !pinned[v]));
        if let Some(v) = donor {
            sizes[part[v]] -= 1;
            part[v] = q;
            sizes[q] += 1;
        }
    }
}

/// Greedy boundary refinement dispatcher: pinned vertices never move, no
/// move may empty a part or push one over the balance cap, under either
/// objective.
#[allow(clippy::too_many_arguments)]
fn refine(
    a: &Csr,
    at: &Csr,
    part: &mut [usize],
    pinned: &[bool],
    sizes: &mut [usize],
    max_size: usize,
    passes: usize,
    objective: PartitionObjective,
) {
    match objective {
        PartitionObjective::EdgeCut => refine_edgecut(a, at, part, pinned, sizes, max_size, passes),
        PartitionObjective::Volume => {
            // Connectivity refinement first (a cheap, good total-cut
            // start), then volume polish. The polish only ever accepts
            // strict `(max, total)` gathered-row improvements, so under
            // identical config/seeds the volume result never scores
            // worse than the edgecut result it starts from.
            refine_edgecut(a, at, part, pinned, sizes, max_size, passes);
            refine_volume(a, at, part, pinned, sizes, max_size, passes)
        }
    }
}

/// Edge-cut refinement: move a vertex to the neighboring part with the
/// highest connectivity gain, respecting the balance cap.
fn refine_edgecut(
    a: &Csr,
    at: &Csr,
    part: &mut [usize],
    pinned: &[bool],
    sizes: &mut [usize],
    max_size: usize,
    passes: usize,
) {
    let n = a.rows();
    let p = sizes.len();
    let mut conn = vec![0usize; p];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            if pinned[v] {
                continue;
            }
            conn.iter_mut().for_each(|c| *c = 0);
            for (w, _) in a.row_entries(v).chain(at.row_entries(v)) {
                if w != v {
                    conn[part[w]] += 1;
                }
            }
            let cur = part[v];
            if sizes[cur] <= 1 {
                continue;
            }
            // Best alternative part by connectivity.
            let mut best = cur;
            let mut best_conn = conn[cur];
            for q in 0..p {
                if q != cur && sizes[q] < max_size && conn[q] > best_conn {
                    best = q;
                    best_conn = conn[q];
                }
            }
            if best != cur {
                part[v] = best;
                sizes[cur] -= 1;
                sizes[best] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Incremental per-part gathered-row ledger for volume refinement.
///
/// `ref_count[q·n + w]` counts the directed `A` edges `(u, w)` whose row
/// `u` is owned by part `q`; `remote[q]` is the number of distinct `w`
/// with `ref_count[q][w] > 0` and `part[w] != q` — exactly
/// `CutReport::remote_rows_per_part[q]`, the rows part `q` must gather.
/// [`VolumeLedger::apply_move`] updates both in `O(out-degree)`, which is
/// what keeps a refinement pass near-linear: scoring a candidate move is
/// apply + inspect + revert, never a from-scratch recount.
struct VolumeLedger {
    n: usize,
    ref_count: Vec<u32>,
    remote: Vec<usize>,
}

impl VolumeLedger {
    fn new(a: &Csr, part: &[usize], p: usize) -> VolumeLedger {
        let n = a.rows();
        let mut ref_count = vec![0u32; p * n];
        for (u, &pu) in part.iter().enumerate() {
            let base = pu * n;
            for (w, _) in a.row_entries(u) {
                ref_count[base + w] += 1;
            }
        }
        let mut remote = vec![0usize; p];
        for (q, r) in remote.iter_mut().enumerate() {
            *r = (0..n)
                .filter(|&w| ref_count[q * n + w] > 0 && part[w] != q)
                .count();
        }
        VolumeLedger {
            n,
            ref_count,
            remote,
        }
    }

    /// Move `v` into part `d`, updating `part` and the ledger. Calling
    /// again with the old part exactly reverts the move, which is how
    /// candidate moves are scored without a second bookkeeping path.
    fn apply_move(&mut self, a: &Csr, part: &mut [usize], v: usize, d: usize) {
        let s = part[v];
        if s == d {
            return;
        }
        let n = self.n;
        // v's references (row v of A) migrate from s's ledger to d's.
        // `part[v]` is still `s` here, so the self-loop case `w == v`
        // charges d with a transient remote row that the ownership flip
        // below cancels.
        for (w, _) in a.row_entries(v) {
            let c = &mut self.ref_count[s * n + w];
            *c -= 1;
            if *c == 0 && part[w] != s {
                self.remote[s] -= 1;
            }
            let c = &mut self.ref_count[d * n + w];
            if *c == 0 && part[w] != d {
                self.remote[d] += 1;
            }
            *c += 1;
        }
        // Ownership flip: v stops being local to s (anyone in s still
        // referencing it now gathers it) and becomes local to d.
        if self.ref_count[s * n + v] > 0 {
            self.remote[s] += 1;
        }
        if self.ref_count[d * n + v] > 0 {
            self.remote[d] -= 1;
        }
        part[v] = d;
    }

    /// `(max-per-part, total)` gathered-row volume — the move-acceptance
    /// key, compared lexicographically (max first, the §IV-A.8 metric).
    fn score(&self) -> (usize, usize) {
        (
            self.remote.iter().copied().max().unwrap_or(0),
            self.remote.iter().sum(),
        )
    }
}

/// Volume refinement: accept a move only when it strictly lowers the
/// `(max-per-part, total)` gathered-row volume pair.
fn refine_volume(
    a: &Csr,
    at: &Csr,
    part: &mut [usize],
    pinned: &[bool],
    sizes: &mut [usize],
    max_size: usize,
    passes: usize,
) {
    let n = a.rows();
    let p = sizes.len();
    let mut ledger = VolumeLedger::new(a, part, p);
    let mut cand: Vec<usize> = Vec::with_capacity(p);
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            if pinned[v] {
                continue;
            }
            let cur = part[v];
            if sizes[cur] <= 1 {
                continue;
            }
            // Candidate destinations: the parts of v's in/out neighbors
            // (a move elsewhere can only sever locality).
            cand.clear();
            for (w, _) in a.row_entries(v).chain(at.row_entries(v)) {
                let q = part[w];
                if q != cur && sizes[q] < max_size && !cand.contains(&q) {
                    cand.push(q);
                }
            }
            if cand.is_empty() {
                continue;
            }
            let before = ledger.score();
            let mut best: Option<(usize, (usize, usize))> = None;
            for &d in &cand {
                ledger.apply_move(a, part, v, d);
                let score = ledger.score();
                ledger.apply_move(a, part, v, cur);
                if score < before && best.is_none_or(|(_, b)| score < b) {
                    best = Some((d, score));
                }
            }
            if let Some((d, _)) = best {
                ledger.apply_move(a, part, v, d);
                sizes[cur] -= 1;
                sizes[d] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    debug_assert_eq!(
        ledger.remote,
        VolumeLedger::new(a, part, p).remote,
        "volume ledger drifted from a from-scratch recount"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgecut::{block_partition, evaluate_partition};
    use crate::generate::{
        erdos_renyi, permute_symmetric, planted_partition, rmat_symmetric, PlantedPartitionParams,
        RmatParams,
    };
    use crate::relabel::apply_partition;

    #[test]
    fn produces_valid_assignment() {
        let g = rmat_symmetric(8, 4, RmatParams::default(), 1);
        let cfg = PartitionConfig {
            num_parts: 8,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        assert_eq!(part.len(), g.rows());
        assert!(part.iter().all(|&q| q < 8));
        // Every part nonempty.
        for q in 0..8 {
            assert!(part.contains(&q), "part {q} empty");
        }
    }

    #[test]
    fn respects_balance_cap() {
        let g = rmat_symmetric(8, 4, RmatParams::default(), 2);
        let cfg = PartitionConfig {
            num_parts: 4,
            balance_factor: 1.05,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        let n = g.rows();
        let cap = ((n as f64 / 4.0) * 1.05).ceil() as usize;
        let mut sizes = [0usize; 4];
        for &q in &part {
            sizes[q] += 1;
        }
        for (q, &s) in sizes.iter().enumerate() {
            assert!(s <= cap, "part {q} size {s} exceeds cap {cap}");
        }
    }

    /// Regression for the pinning path: with a threshold of 0 every
    /// non-isolated vertex is a "hub", so spread-and-pin assigns nearly
    /// the whole graph round-robin and must still respect the cap — and
    /// with a disconnected graph the remainder fallback path must too.
    #[test]
    fn respects_balance_cap_when_pinning_heavy_or_disconnected() {
        // Star + isolated vertices: vertex 0 is a hub; vertices 20..40
        // are edgeless, so they take the disconnected-remainder path.
        let mut coo = crate::coo::Coo::new(40, 40);
        for leaf in 1..20 {
            coo.push(0, leaf, 1.0);
            coo.push(leaf, 0, 1.0);
        }
        let star = Csr::from_coo(coo);
        let cases = [
            (star, "star+isolated"),
            (erdos_renyi(40, 0.4, 9), "sparse er (disconnected)"),
        ];
        for (g, name) in cases {
            for p in [2usize, 3, 5, 8] {
                for bf in [1.0f64, 1.05, 1.3] {
                    for pin in [Some(0.0), Some(1.0), None] {
                        for objective in [PartitionObjective::EdgeCut, PartitionObjective::Volume] {
                            let cfg = PartitionConfig {
                                num_parts: p,
                                balance_factor: bf,
                                pin_high_degree: pin,
                                objective,
                                ..Default::default()
                            };
                            let part = partition_greedy_bfs(&g, &cfg);
                            let cap = (((g.rows() as f64 / p as f64) * bf).ceil() as usize).max(1);
                            let mut sizes = vec![0usize; p];
                            for &q in &part {
                                sizes[q] += 1;
                            }
                            for (q, &s) in sizes.iter().enumerate() {
                                assert!(
                                    s <= cap,
                                    "{name} p={p} bf={bf} pin={pin:?} {objective:?}: \
                                     part {q} size {s} exceeds cap {cap}"
                                );
                                assert!(s > 0, "{name} p={p} bf={bf} pin={pin:?}: part {q} empty");
                            }
                        }
                    }
                }
            }
        }
    }

    /// Regression for the seedless-part path: at `n` close to `p` (with
    /// pinning consuming most vertices first) every part must still end
    /// up with at least one vertex.
    #[test]
    fn every_part_nonempty_when_n_close_to_p() {
        // Tight star: 9 vertices, the center is a hub under any
        // threshold; p up to n exercises seed exhaustion.
        let mut coo = crate::coo::Coo::new(9, 9);
        for leaf in 1..9 {
            coo.push(0, leaf, 1.0);
            coo.push(leaf, 0, 1.0);
        }
        let g = Csr::from_coo(coo);
        for p in [7usize, 8, 9] {
            for pin in [Some(0.0), Some(0.5), None] {
                let cfg = PartitionConfig {
                    num_parts: p,
                    balance_factor: 1.0,
                    pin_high_degree: pin,
                    ..Default::default()
                };
                let part = partition_greedy_bfs(&g, &cfg);
                for q in 0..p {
                    assert!(part.contains(&q), "n=9 p={p} pin={pin:?}: part {q} empty");
                }
            }
        }
    }

    #[test]
    fn beats_random_blocks_on_total_cut() {
        // The §IV-A.8 qualitative claim: partitioning cuts total edges a
        // lot. Use a graph with strong community structure (ring of
        // cliques) where a good partitioner must win decisively.
        let mut coo = crate::coo::Coo::new(64, 64);
        // 8 cliques of 8 vertices, ring-connected. Scatter clique members
        // across the id space so the block baseline is bad.
        let member = |c: usize, k: usize| (k * 8 + c) % 64;
        for c in 0..8 {
            for i in 0..8 {
                for j in 0..8 {
                    if i != j {
                        coo.push(member(c, i), member(c, j), 1.0);
                    }
                }
            }
            let next = (c + 1) % 8;
            coo.push(member(c, 0), member(next, 0), 1.0);
            coo.push(member(next, 0), member(c, 0), 1.0);
        }
        let g = crate::csr::Csr::from_coo(coo);
        let cfg = PartitionConfig {
            num_parts: 8,
            balance_factor: 1.01,
            refinement_passes: 8,
            seed: 5,
            ..Default::default()
        };
        let smart = evaluate_partition(&g, &partition_greedy_bfs(&g, &cfg), 8);
        let random = evaluate_partition(&g, &block_partition(64, 8), 8);
        assert!(
            smart.total_cut_edges < random.total_cut_edges,
            "partitioner ({}) did not beat block baseline ({})",
            smart.total_cut_edges,
            random.total_cut_edges
        );
    }

    /// A clustered, permuted graph with hubs — block baselines cannot see
    /// the communities, hubs keep the max-cut interesting.
    fn clustered(seed: u64) -> Csr {
        let g = planted_partition(
            192,
            PlantedPartitionParams {
                communities: 8,
                degree_in: 8.0,
                degree_out: 0.6,
                hubs: 2,
                hub_degree: 20,
            },
            seed,
        );
        let (g, _) = permute_symmetric(&g, seed ^ 0xC0FFEE);
        g
    }

    /// The tentpole claim: the volume objective lowers the max-per-part
    /// gathered-row count below both the block baseline and the edgecut
    /// objective, and total volume below block.
    #[test]
    fn volume_objective_reduces_max_gathered_rows() {
        let g = clustered(31);
        let p = 8;
        let cfg = |objective| PartitionConfig {
            num_parts: p,
            refinement_passes: 8,
            objective,
            seed: 3,
            ..Default::default()
        };
        let vol = evaluate_partition(
            &g,
            &partition_greedy_bfs(&g, &cfg(PartitionObjective::Volume)),
            p,
        );
        let edge = evaluate_partition(
            &g,
            &partition_greedy_bfs(&g, &cfg(PartitionObjective::EdgeCut)),
            p,
        );
        let block = evaluate_partition(&g, &block_partition(g.rows(), p), p);
        assert!(
            vol.edgecut_max() < block.edgecut_max(),
            "volume max {} not below block max {}",
            vol.edgecut_max(),
            block.edgecut_max()
        );
        assert!(
            vol.edgecut_max() <= edge.edgecut_max(),
            "volume max {} above edgecut-objective max {}",
            vol.edgecut_max(),
            edge.edgecut_max()
        );
        assert!(
            vol.remote_rows_total() < block.remote_rows_total(),
            "volume total {} not below block total {}",
            vol.remote_rows_total(),
            block.remote_rows_total()
        );
    }

    /// The incremental ledger must agree with the from-scratch metric.
    #[test]
    fn volume_ledger_matches_evaluate_partition() {
        for seed in [0u64, 1, 2] {
            let g = rmat_symmetric(6, 4, RmatParams::default(), seed);
            for p in [2usize, 3, 5] {
                let part = block_partition(g.rows(), p);
                let ledger = VolumeLedger::new(&g, &part, p);
                let report = evaluate_partition(&g, &part, p);
                assert_eq!(
                    ledger.remote, report.remote_rows_per_part,
                    "seed {seed} p={p}"
                );
                // ...and stays in agreement through a chain of moves.
                let mut part = part;
                let mut ledger = ledger;
                for (v, d) in [(0usize, 1usize), (7, 0), (12, 1), (7, 2), (0, 0)] {
                    let d = d % p;
                    ledger.apply_move(&g, &mut part, v, d);
                    let report = evaluate_partition(&g, &part, p);
                    assert_eq!(
                        ledger.remote, report.remote_rows_per_part,
                        "seed {seed} p={p} after moving {v}->{d}"
                    );
                }
            }
        }
    }

    /// Proptest-style invariants sweep: seeds × part counts × generators
    /// × objectives. Valid ids, nonempty parts, cap respected, and
    /// `evaluate_partition` per-part reports invariant under relabeling.
    #[test]
    fn invariants_sweep() {
        let graphs: Vec<(&str, Csr)> = vec![
            ("er-sparse", erdos_renyi(48, 0.8, 4)),
            ("er", erdos_renyi(48, 3.0, 5)),
            ("rmat", rmat_symmetric(6, 3, RmatParams::default(), 6)),
            (
                "planted",
                planted_partition(
                    48,
                    PlantedPartitionParams {
                        communities: 4,
                        degree_in: 6.0,
                        degree_out: 1.0,
                        hubs: 1,
                        hub_degree: 10,
                    },
                    7,
                ),
            ),
            ("edge-free", Csr::empty(16, 16)),
        ];
        for (name, g) in &graphs {
            let n = g.rows();
            for &p in &[2usize, 3, 7] {
                if p > n {
                    continue;
                }
                for seed in [0u64, 11] {
                    for objective in [PartitionObjective::EdgeCut, PartitionObjective::Volume] {
                        let cfg = PartitionConfig {
                            num_parts: p,
                            seed,
                            objective,
                            ..Default::default()
                        };
                        let part = partition_greedy_bfs(g, &cfg);
                        let label = format!("{name} p={p} seed={seed} {objective:?}");
                        assert_eq!(part.len(), n, "{label}: length");
                        assert!(part.iter().all(|&q| q < p), "{label}: id range");
                        let cap =
                            (((n as f64 / p as f64) * cfg.balance_factor).ceil() as usize).max(1);
                        let mut sizes = vec![0usize; p];
                        for &q in &part {
                            sizes[q] += 1;
                        }
                        for (q, &s) in sizes.iter().enumerate() {
                            assert!(s > 0, "{label}: part {q} empty");
                            assert!(s <= cap, "{label}: part {q} size {s} > cap {cap}");
                        }
                        // Relabeling invariance: same per-part reports on
                        // the permuted graph with the permuted partition.
                        let report = evaluate_partition(g, &part, p);
                        let (rg, rl) = apply_partition(g, &part, p);
                        let rpart = rl.part_of_new();
                        assert_eq!(
                            evaluate_partition(&rg, &rpart, p),
                            report,
                            "{label}: relabel"
                        );
                    }
                }
            }
        }
    }

    /// Pinned vertices must survive refinement in place, under both
    /// objectives, even when moving them would pay.
    #[test]
    fn refine_never_moves_pinned() {
        let g = rmat_symmetric(6, 4, RmatParams::default(), 8);
        let at = g.transpose();
        let n = g.rows();
        let p = 4;
        for objective in [PartitionObjective::EdgeCut, PartitionObjective::Volume] {
            // Adversarial start: block partition, every third vertex pinned.
            let mut part = block_partition(n, p);
            let pinned: Vec<bool> = (0..n).map(|v| v % 3 == 0).collect();
            let mut sizes = vec![0usize; p];
            for &q in &part {
                sizes[q] += 1;
            }
            let before = part.clone();
            let max_size = n; // unconstrained: only pinning may hold a vertex
            refine(
                &g, &at, &mut part, &pinned, &mut sizes, max_size, 6, objective,
            );
            let mut moved_unpinned = 0usize;
            for v in 0..n {
                if pinned[v] {
                    assert_eq!(part[v], before[v], "{objective:?}: pinned {v} moved");
                } else if part[v] != before[v] {
                    moved_unpinned += 1;
                }
            }
            assert!(moved_unpinned > 0, "{objective:?}: refinement did nothing");
            let mut check = vec![0usize; p];
            for &q in &part {
                check[q] += 1;
            }
            assert_eq!(check, sizes, "{objective:?}: sizes ledger drifted");
        }
    }

    #[test]
    fn single_part_trivial() {
        let g = rmat_symmetric(5, 3, RmatParams::default(), 3);
        let cfg = PartitionConfig {
            num_parts: 1,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        assert!(part.iter().all(|&q| q == 0));
    }
}
