//! A from-scratch graph partitioner — the METIS stand-in for §IV-A.8.
//!
//! The paper ran METIS on Reddit with 64 parts and found a 72% reduction in
//! *total* edgecut over random block distribution, but only a 29% reduction
//! in the *max-per-process* cut that actually governs bulk-synchronous
//! runtime. Reproducing that qualitative asymmetry does not need METIS
//! itself; this module provides a greedy BFS-grown partitioner with a
//! boundary-refinement pass (Kernighan–Lin flavored), which on scale-free
//! graphs lands in the same regime: large total-cut wins, much smaller
//! max-cut wins.

use crate::csr::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`partition_greedy_bfs`].
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Number of parts.
    pub num_parts: usize,
    /// Maximum allowed part size as a multiple of the ideal `n/p`
    /// (1.03 = 3% imbalance, the METIS default ballpark).
    pub balance_factor: f64,
    /// Boundary-refinement sweeps after the initial growth.
    pub refinement_passes: usize,
    /// Spread-and-pin threshold for high-degree vertices, as a multiple
    /// of the average degree: vertices above it are distributed
    /// round-robin across parts *before* BFS growth and never moved by
    /// refinement. This mirrors what balanced multilevel partitioners
    /// (METIS) achieve implicitly — without it, BFS growth pulls hub
    /// vertices into one part and the max-per-part cut explodes. `None`
    /// disables pinning.
    pub pin_high_degree: Option<f64>,
    /// Seed for tie-breaking and seed-vertex selection.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_parts: 2,
            balance_factor: 1.03,
            refinement_passes: 4,
            pin_high_degree: Some(4.0),
            seed: 0,
        }
    }
}

/// Grow `num_parts` parts by seeded BFS, then refine boundaries by greedy
/// gain moves. Returns `part[v]` assignments.
///
/// The undirected structure of `a` is used (both in- and out-neighbors).
pub fn partition_greedy_bfs(a: &Csr, cfg: &PartitionConfig) -> Vec<usize> {
    assert_eq!(a.rows(), a.cols(), "partitioner requires square adjacency");
    let n = a.rows();
    let p = cfg.num_parts;
    assert!(p > 0 && p <= n.max(1), "bad part count");
    let at = a.transpose();
    let max_size = (((n as f64 / p as f64) * cfg.balance_factor).ceil() as usize).max(1);

    let mut part = vec![usize::MAX; n];
    let mut pinned = vec![false; n];
    let mut sizes = vec![0usize; p];
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut unassigned = n;

    // Multi-source BFS: each part grows one frontier in round-robin, so
    // parts stay contiguous regions of the graph where possible.
    let mut frontiers: Vec<Vec<usize>> = vec![Vec::new(); p];

    // Spread-and-pin hubs before growth.
    if let Some(mult) = cfg.pin_high_degree {
        let deg = |v: usize| a.row_nnz(v) + at.row_nnz(v);
        let avg = (a.nnz() + at.nnz()) as f64 / n.max(1) as f64;
        let mut hubs: Vec<usize> = (0..n).filter(|&v| deg(v) as f64 > mult * avg).collect();
        hubs.sort_unstable_by_key(|&v| std::cmp::Reverse(deg(v)));
        for (idx, &v) in hubs.iter().enumerate() {
            let pid = idx % p;
            part[v] = pid;
            pinned[v] = true;
            sizes[pid] += 1;
            frontiers[pid].push(v);
            unassigned -= 1;
        }
    }
    for pid in 0..p {
        if !frontiers[pid].is_empty() {
            continue; // already seeded by a pinned hub
        }
        // Pick a random unassigned seed.
        let mut v = rng.gen_range(0..n);
        let mut tries = 0;
        while part[v] != usize::MAX && tries < 4 * n {
            v = rng.gen_range(0..n);
            tries += 1;
        }
        if part[v] != usize::MAX {
            match (0..n).find(|&u| part[u] == usize::MAX) {
                Some(u) => v = u,
                None => continue,
            }
        }
        part[v] = pid;
        sizes[pid] += 1;
        unassigned -= 1;
        frontiers[pid].push(v);
    }

    while unassigned > 0 {
        let mut progressed = false;
        for pid in 0..p {
            if sizes[pid] >= max_size {
                continue;
            }
            // Pop until a vertex with an unassigned neighbor is found.
            let mut claimed = None;
            while let Some(u) = frontiers[pid].pop() {
                let mut next = None;
                for (w, _) in a.row_entries(u).chain(at.row_entries(u)) {
                    if part[w] == usize::MAX {
                        next = Some(w);
                        break;
                    }
                }
                if let Some(w) = next {
                    // u may have more unassigned neighbors; keep it.
                    frontiers[pid].push(u);
                    claimed = Some(w);
                    break;
                }
            }
            let w = match claimed {
                Some(w) => w,
                None => continue,
            };
            part[w] = pid;
            sizes[pid] += 1;
            unassigned -= 1;
            frontiers[pid].push(w);
            progressed = true;
            if unassigned == 0 {
                break;
            }
        }
        if !progressed {
            // Disconnected remainder: assign leftovers to the smallest
            // parts and restart their frontiers there.
            for (v, pv) in part.iter_mut().enumerate() {
                if *pv == usize::MAX {
                    let pid = (0..p).min_by_key(|&q| sizes[q]).unwrap_or(0);
                    *pv = pid;
                    sizes[pid] += 1;
                    unassigned -= 1;
                    frontiers[pid].push(v);
                }
            }
        }
    }

    refine(
        a,
        &at,
        &mut part,
        &pinned,
        &mut sizes,
        max_size,
        cfg.refinement_passes,
    );
    part
}

/// Greedy boundary refinement: move a vertex to the neighboring part with
/// the highest connectivity gain, respecting the balance cap. Pinned
/// vertices never move.
fn refine(
    a: &Csr,
    at: &Csr,
    part: &mut [usize],
    pinned: &[bool],
    sizes: &mut [usize],
    max_size: usize,
    passes: usize,
) {
    let n = a.rows();
    let p = sizes.len();
    let mut conn = vec![0usize; p];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            if pinned[v] {
                continue;
            }
            conn.iter_mut().for_each(|c| *c = 0);
            for (w, _) in a.row_entries(v).chain(at.row_entries(v)) {
                if w != v {
                    conn[part[w]] += 1;
                }
            }
            let cur = part[v];
            if sizes[cur] <= 1 {
                continue;
            }
            // Best alternative part by connectivity.
            let mut best = cur;
            let mut best_conn = conn[cur];
            for q in 0..p {
                if q != cur && sizes[q] < max_size && conn[q] > best_conn {
                    best = q;
                    best_conn = conn[q];
                }
            }
            if best != cur {
                part[v] = best;
                sizes[cur] -= 1;
                sizes[best] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgecut::{block_partition, evaluate_partition};
    use crate::generate::{rmat_symmetric, RmatParams};

    #[test]
    fn produces_valid_assignment() {
        let g = rmat_symmetric(8, 4, RmatParams::default(), 1);
        let cfg = PartitionConfig {
            num_parts: 8,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        assert_eq!(part.len(), g.rows());
        assert!(part.iter().all(|&q| q < 8));
        // Every part nonempty.
        for q in 0..8 {
            assert!(part.contains(&q), "part {q} empty");
        }
    }

    #[test]
    fn respects_balance_cap() {
        let g = rmat_symmetric(8, 4, RmatParams::default(), 2);
        let cfg = PartitionConfig {
            num_parts: 4,
            balance_factor: 1.05,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        let n = g.rows();
        let cap = ((n as f64 / 4.0) * 1.05).ceil() as usize;
        let mut sizes = [0usize; 4];
        for &q in &part {
            sizes[q] += 1;
        }
        for (q, &s) in sizes.iter().enumerate() {
            assert!(s <= cap, "part {q} size {s} exceeds cap {cap}");
        }
    }

    #[test]
    fn beats_random_blocks_on_total_cut() {
        // The §IV-A.8 qualitative claim: partitioning cuts total edges a
        // lot. Use a graph with strong community structure (ring of
        // cliques) where a good partitioner must win decisively.
        let mut coo = crate::coo::Coo::new(64, 64);
        // 8 cliques of 8 vertices, ring-connected. Scatter clique members
        // across the id space so the block baseline is bad.
        let member = |c: usize, k: usize| (k * 8 + c) % 64;
        for c in 0..8 {
            for i in 0..8 {
                for j in 0..8 {
                    if i != j {
                        coo.push(member(c, i), member(c, j), 1.0);
                    }
                }
            }
            let next = (c + 1) % 8;
            coo.push(member(c, 0), member(next, 0), 1.0);
            coo.push(member(next, 0), member(c, 0), 1.0);
        }
        let g = crate::csr::Csr::from_coo(coo);
        let cfg = PartitionConfig {
            num_parts: 8,
            balance_factor: 1.01,
            refinement_passes: 8,
            seed: 5,
            ..Default::default()
        };
        let smart = evaluate_partition(&g, &partition_greedy_bfs(&g, &cfg), 8);
        let random = evaluate_partition(&g, &block_partition(64, 8), 8);
        assert!(
            smart.total_cut_edges < random.total_cut_edges,
            "partitioner ({}) did not beat block baseline ({})",
            smart.total_cut_edges,
            random.total_cut_edges
        );
    }

    #[test]
    fn single_part_trivial() {
        let g = rmat_symmetric(5, 3, RmatParams::default(), 3);
        let cfg = PartitionConfig {
            num_parts: 1,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        assert!(part.iter().all(|&q| q == 0));
    }
}
