//! Pre-specialization reference SpMM kernel, kept for benchmarking.
//!
//! This is the per-nonzero axpy row loop that `spmm.rs` shipped before
//! the width-specialized / column-tiled kernels landed (DESIGN.md §14).
//! It exists so `kernel_bench` can report an honest old-vs-new
//! wall-clock ratio on the same operands, and as a structurally
//! different implementation for differential tests: the new kernels
//! fold each output element's products in the same stored-entry order,
//! so results are bit-identical, not merely close. It is **not** called
//! by any trainer.
//!
//! This module is a blessed micro-kernel module for the
//! `scalar-hot-loop` lint (see `crates/check/src/lint/rules.rs`).

use crate::csr::Csr;
use cagnet_dense::Mat;

/// `C += A · B` with the historical scalar row loop: stream each stored
/// entry's `B` row against the `C` row in memory.
pub fn spmm_acc_reference(a: &Csr, b: &Mat, c: &mut Mat) {
    assert_eq!(a.cols(), b.rows(), "spmm_acc_reference: inner dims");
    assert_eq!(
        c.shape(),
        (a.rows(), b.cols()),
        "spmm_acc_reference: output shape"
    );
    let f = b.cols();
    if f == 0 {
        return;
    }
    let bv = b.as_slice();
    let cv = c.as_mut_slice();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let vals = a.vals();
    for i in 0..a.rows() {
        let crow = &mut cv[i * f..(i + 1) * f];
        for k in row_ptr[i]..row_ptr[i + 1] {
            let aval = vals[k];
            let brow = &bv[col_idx[k] * f..(col_idx[k] + 1) * f];
            for (cj, &bval) in crow.iter_mut().zip(brow) {
                *cj += aval * bval;
            }
        }
    }
}

/// `C = A · B` through [`spmm_acc_reference`].
pub fn spmm_reference(a: &Csr, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    spmm_acc_reference(a, b, &mut c);
    c
}
