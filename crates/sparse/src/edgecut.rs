//! Edge-cut metrics for vertex partitions.
//!
//! The paper's 1D communication bound is written in terms of
//! `edgecut_P(A) = max(r_1, ..., r_P)` where `r_i` is the number of dense
//! matrix rows process `i` must receive from other processes (§IV-A.1,
//! Figure 1). Its §IV-A.8 experiment compares METIS partitions against
//! random block distribution on both the *total* cut and the
//! *max-per-process* cut, observing that bulk-synchronous runtime follows
//! the max, not the total.

use crate::csr::Csr;

/// Summary of communication requirements induced by a vertex partition.
#[derive(Clone, Debug, PartialEq)]
pub struct CutReport {
    /// Total number of cut edges (endpoints in different parts), counting
    /// each directed edge once.
    pub total_cut_edges: usize,
    /// Cut edges incident (as destination side) to each part — the
    /// per-process communication load in edge terms.
    pub cut_edges_per_part: Vec<usize>,
    /// Number of *distinct remote vertices* each part must receive — the
    /// `r_i` of the paper (each remote vertex carries one length-`f`
    /// feature-vector row).
    pub remote_rows_per_part: Vec<usize>,
}

impl CutReport {
    /// `max_i r_i` — the paper's `edgecut_P(A)` metric.
    pub fn edgecut_max(&self) -> usize {
        self.remote_rows_per_part.iter().copied().max().unwrap_or(0)
    }

    /// `Σ_i r_i` — total remote rows fetched per epoch phase.
    pub fn remote_rows_total(&self) -> usize {
        self.remote_rows_per_part.iter().sum()
    }

    /// Max cut edges over parts (the §IV-A.8 "max communication per
    /// process" number).
    pub fn cut_edges_max(&self) -> usize {
        self.cut_edges_per_part.iter().copied().max().unwrap_or(0)
    }
}

/// Evaluate a vertex partition: `part[v]` gives the owning part of vertex
/// `v`; `num_parts` is the part count. An edge `(u, v)` of `A` means the
/// owner of row `u` needs vertex `v`'s feature row; it is *cut* when
/// `part[u] != part[v]`.
pub fn evaluate_partition(a: &Csr, part: &[usize], num_parts: usize) -> CutReport {
    assert_eq!(a.rows(), part.len(), "partition length mismatch");
    assert_eq!(a.rows(), a.cols(), "edgecut requires square adjacency");
    let mut total = 0usize;
    let mut per_part = vec![0usize; num_parts];
    // A vertex can be remote to several parts, so distinctness is per
    // (part, vertex): one hash set per part.
    let mut remote_sets = vec![std::collections::HashSet::new(); num_parts];
    for u in 0..a.rows() {
        let pu = part[u];
        assert!(pu < num_parts, "part id {pu} out of range");
        for (v, _) in a.row_entries(u) {
            if part[v] != pu {
                total += 1;
                per_part[pu] += 1;
                remote_sets[pu].insert(v);
            }
        }
    }
    let remote: Vec<usize> = remote_sets.iter().map(|s| s.len()).collect();
    CutReport {
        total_cut_edges: total,
        cut_edges_per_part: per_part,
        remote_rows_per_part: remote,
    }
}

/// The trivial contiguous block partition of `n` vertices into `p` parts —
/// the "random block row distribution" baseline of §IV-A.8 when the vertex
/// ids have been randomly permuted first.
pub fn block_partition(n: usize, p: usize) -> Vec<usize> {
    let ranges = crate::partition::block_ranges(n, p);
    let mut part = vec![0usize; n];
    for (pid, (r0, r1)) in ranges.into_iter().enumerate() {
        part[r0..r1].fill(pid);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::generate::{erdos_renyi, permute_symmetric};

    fn ring(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1.0);
            coo.push((i + 1) % n, i, 1.0);
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn single_part_has_zero_cut() {
        let a = ring(10);
        let r = evaluate_partition(&a, &block_partition(10, 1), 1);
        assert_eq!(r.total_cut_edges, 0);
        assert_eq!(r.edgecut_max(), 0);
    }

    #[test]
    fn ring_block_partition_cut() {
        // Ring of 8 split into 2 halves: 2 undirected cut edges = 4
        // directed; each part needs 2 remote vertices.
        let a = ring(8);
        let r = evaluate_partition(&a, &block_partition(8, 2), 2);
        assert_eq!(r.total_cut_edges, 4);
        assert_eq!(r.remote_rows_per_part, vec![2, 2]);
        assert_eq!(r.edgecut_max(), 2);
    }

    #[test]
    fn remote_rows_are_distinct_vertices() {
        // Star: vertex 0 in part 0, leaves in part 1. Every leaf needs only
        // vertex 0 (1 distinct remote row), part 0 needs all leaves.
        let mut coo = Coo::new(5, 5);
        for leaf in 1..5 {
            coo.push(0, leaf, 1.0);
            coo.push(leaf, 0, 1.0);
        }
        let a = Csr::from_coo(coo);
        let part = vec![0, 1, 1, 1, 1];
        let r = evaluate_partition(&a, &part, 2);
        assert_eq!(r.remote_rows_per_part, vec![4, 1]);
        assert_eq!(r.total_cut_edges, 8);
    }

    #[test]
    fn permutation_preserves_total_cut_distribution_shape() {
        // Total directed edges is invariant; cut under block partition of a
        // permuted graph stays bounded by nnz.
        let a = erdos_renyi(100, 5.0, 8);
        let (pa, _) = permute_symmetric(&a, 3);
        let r = evaluate_partition(&pa, &block_partition(100, 4), 4);
        assert!(r.total_cut_edges <= pa.nnz());
        // Non-adversarial bound from the paper: r_i <= n(P-1)/P.
        assert!(r.edgecut_max() <= 100 * 3 / 4 + 1);
    }

    #[test]
    #[should_panic(expected = "partition length")]
    fn wrong_partition_length_panics() {
        let a = ring(4);
        let _ = evaluate_partition(&a, &[0, 0], 1);
    }
}
