//! # cagnet-sparse
//!
//! Sparse-matrix and graph substrate for the CAGNET reproduction: COO/CSR
//! formats, SpMM (plain and semiring-generic), GCN normalization, seeded
//! Erdős–Rényi and R-MAT generators, block partitioning onto 1D/2D/3D
//! process geometries, edge-cut metrics, a from-scratch graph partitioner
//! (the METIS stand-in for the paper's §IV-A.8 experiment), and synthetic
//! stand-ins for the paper's Table VI datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod datasets;
pub mod dcsr;
pub mod edgecut;
pub mod generate;
pub mod io;
pub mod normalize;
pub mod partition;
pub mod partitioner;
pub mod reference;
pub mod relabel;
pub mod spgemm;
pub mod spmm;

pub use coo::Coo;
pub use csr::Csr;
pub use dcsr::Dcsr;
pub use spgemm::spgemm;
pub use spmm::{spmm, spmm_acc, spmm_semiring};
