//! Block partitioning of matrices onto 1D / 2D / 3D process geometries.
//!
//! These functions realize Tables III–V of the paper: the 1D algorithm
//! stores `A` by block columns and `H` by block rows; the 2D algorithm
//! stores both on a `√P x √P` grid; the 3D algorithm splits each 2D block
//! of `A` along columns across layers and `H` along rows across layers
//! (§IV-D). Uneven dimensions are handled by giving the first
//! `n mod P` parts one extra row/column (balanced block distribution).

use crate::csr::Csr;
use cagnet_dense::Mat;

/// Balanced 1D block ranges: splits `0..n` into `p` contiguous ranges whose
/// sizes differ by at most one (first `n % p` ranges get the extra item).
pub fn block_ranges(n: usize, p: usize) -> Vec<(usize, usize)> {
    assert!(p > 0, "cannot partition into zero parts");
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// The range owned by part `i` of `p` (convenience for `block_ranges`).
pub fn block_range(n: usize, p: usize, i: usize) -> (usize, usize) {
    assert!(i < p, "part index out of range");
    let base = n / p;
    let extra = n % p;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    (start, start + len)
}

/// Which part owns global index `g` under the balanced block distribution.
pub fn owner_of(n: usize, p: usize, g: usize) -> usize {
    debug_assert!(g < n);
    let base = n / p;
    let extra = n % p;
    let boundary = extra * (base + 1);
    if g < boundary {
        g / (base + 1)
    } else {
        extra + (g - boundary) / base.max(1)
    }
}

/// Split a sparse matrix into `p` block rows.
pub fn split_rows_sparse(a: &Csr, p: usize) -> Vec<Csr> {
    block_ranges(a.rows(), p)
        .into_iter()
        .map(|(r0, r1)| a.block(r0, r1, 0, a.cols()))
        .collect()
}

/// Split a sparse matrix into `p` block columns.
pub fn split_cols_sparse(a: &Csr, p: usize) -> Vec<Csr> {
    block_ranges(a.cols(), p)
        .into_iter()
        .map(|(c0, c1)| a.block(0, a.rows(), c0, c1))
        .collect()
}

/// Split a dense matrix into `p` block rows.
pub fn split_rows_dense(h: &Mat, p: usize) -> Vec<Mat> {
    block_ranges(h.rows(), p)
        .into_iter()
        .map(|(r0, r1)| h.block(r0, r1, 0, h.cols()))
        .collect()
}

/// Reassemble block rows into the full dense matrix.
pub fn join_rows_dense(parts: &[Mat]) -> Mat {
    Mat::vstack(parts)
}

/// 2D block of a sparse matrix for grid position `(i, j)` on a `pr x pc`
/// grid.
pub fn grid_block_sparse(a: &Csr, pr: usize, pc: usize, i: usize, j: usize) -> Csr {
    let (r0, r1) = block_range(a.rows(), pr, i);
    let (c0, c1) = block_range(a.cols(), pc, j);
    a.block(r0, r1, c0, c1)
}

/// 2D block of a dense matrix for grid position `(i, j)` on a `pr x pc`
/// grid.
pub fn grid_block_dense(h: &Mat, pr: usize, pc: usize, i: usize, j: usize) -> Mat {
    let (r0, r1) = block_range(h.rows(), pr, i);
    let (c0, c1) = block_range(h.cols(), pc, j);
    h.block(r0, r1, c0, c1)
}

/// Reassemble a full dense matrix from its `pr x pc` grid blocks (row-major
/// block order: `blocks[i * pc + j]`).
pub fn join_grid_dense(blocks: &[Mat], pr: usize, pc: usize) -> Mat {
    assert_eq!(blocks.len(), pr * pc, "block count mismatch");
    let rows: Vec<Mat> = (0..pr)
        .map(|i| Mat::hstack(&blocks[i * pc..(i + 1) * pc]))
        .collect();
    Mat::vstack(&rows)
}

/// The 3D "Block Split" piece of `A` for mesh position `(i, j, k)` on a
/// `q x q x q` mesh (`P = q³`): the 2D block `(i, j)` on the `q x q` grid,
/// further split along *columns* into `q` slices, of which slice `k` is
/// returned. Its shape is `n/q x n/q²` as in §IV-D.
pub fn split3d_block_sparse(a: &Csr, q: usize, i: usize, j: usize, k: usize) -> Csr {
    let (r0, r1) = block_range(a.rows(), q, i);
    let (c0, c1) = block_range(a.cols(), q, j);
    let sub = block_range(c1 - c0, q, k);
    a.block(r0, r1, c0 + sub.0, c0 + sub.1)
}

/// The 3D "Block Split" piece of a dense matrix for mesh position
/// `(i, j, k)`: the 2D block `(i, j)` split along *rows* into `q` slices,
/// slice `k` returned; shape `n/q² x f/q` as in §IV-D.
pub fn split3d_block_dense(h: &Mat, q: usize, i: usize, j: usize, k: usize) -> Mat {
    let (r0, r1) = block_range(h.rows(), q, i);
    let (c0, c1) = block_range(h.cols(), q, j);
    let sub = block_range(r1 - r0, q, k);
    h.block(r0 + sub.0, r0 + sub.1, c0, c1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;

    #[test]
    fn ranges_cover_and_balance() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (5, 8), (100, 6), (0, 4)] {
            let ranges = block_ranges(n, p);
            assert_eq!(ranges.len(), p);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[p - 1].1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges not contiguous");
            }
            let sizes: Vec<usize> = ranges.iter().map(|&(a, b)| b - a).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "imbalanced: {sizes:?}");
        }
    }

    #[test]
    fn block_range_matches_block_ranges() {
        for &(n, p) in &[(13usize, 4usize), (9, 2), (6, 6)] {
            let all = block_ranges(n, p);
            for (i, expected) in all.iter().enumerate() {
                assert_eq!(block_range(n, p, i), *expected);
            }
        }
    }

    #[test]
    fn owner_of_consistent() {
        for &(n, p) in &[(13usize, 4usize), (10, 3), (5, 5), (100, 7)] {
            let ranges = block_ranges(n, p);
            for g in 0..n {
                let o = owner_of(n, p, g);
                assert!(ranges[o].0 <= g && g < ranges[o].1, "owner wrong for {g}");
            }
        }
    }

    #[test]
    fn sparse_row_split_reassembles() {
        let a = erdos_renyi(50, 4.0, 1);
        let parts = split_rows_sparse(&a, 4);
        let total: usize = parts.iter().map(Csr::nnz).sum();
        assert_eq!(total, a.nnz());
        // Dense reassembly matches.
        let dense_parts: Vec<Mat> = parts.iter().map(Csr::to_dense).collect();
        assert!(Mat::vstack(&dense_parts).approx_eq(&a.to_dense(), 0.0));
    }

    #[test]
    fn sparse_col_split_reassembles() {
        let a = erdos_renyi(50, 4.0, 2);
        let parts = split_cols_sparse(&a, 3);
        let total: usize = parts.iter().map(Csr::nnz).sum();
        assert_eq!(total, a.nnz());
        let dense_parts: Vec<Mat> = parts.iter().map(Csr::to_dense).collect();
        assert!(Mat::hstack(&dense_parts).approx_eq(&a.to_dense(), 0.0));
    }

    #[test]
    fn dense_grid_split_reassembles() {
        let h = Mat::from_fn(11, 7, |i, j| (i * 7 + j) as f64);
        let (pr, pc) = (3, 2);
        let blocks: Vec<Mat> = (0..pr)
            .flat_map(|i| (0..pc).map(move |j| (i, j)))
            .map(|(i, j)| grid_block_dense(&h, pr, pc, i, j))
            .collect();
        assert!(join_grid_dense(&blocks, pr, pc).approx_eq(&h, 0.0));
    }

    #[test]
    fn sparse_grid_blocks_conserve_nnz() {
        let a = erdos_renyi(40, 5.0, 3);
        let (pr, pc) = (4, 4);
        let total: usize = (0..pr)
            .flat_map(|i| (0..pc).map(move |j| (i, j)))
            .map(|(i, j)| grid_block_sparse(&a, pr, pc, i, j).nnz())
            .sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn split3d_shapes_and_conservation() {
        let q = 2; // P = 8
        let a = erdos_renyi(16, 3.0, 4);
        let h = Mat::from_fn(16, 8, |i, j| (i * 8 + j) as f64);
        let mut nnz_total = 0;
        let mut h_total = 0;
        for i in 0..q {
            for j in 0..q {
                for k in 0..q {
                    let ab = split3d_block_sparse(&a, q, i, j, k);
                    assert_eq!(ab.rows(), 8); // n/q
                    assert_eq!(ab.cols(), 4); // n/q²
                    nnz_total += ab.nnz();
                    let hb = split3d_block_dense(&h, q, i, j, k);
                    assert_eq!(hb.shape(), (4, 4)); // n/q² x f/q
                    h_total += hb.len();
                }
            }
        }
        assert_eq!(nnz_total, a.nnz());
        assert_eq!(h_total, h.len());
    }
}
