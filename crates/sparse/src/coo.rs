//! Coordinate-format (triplet) sparse matrix.
//!
//! COO is the assembly format: graph generators and file readers emit
//! triplets, duplicates are merged, and the result is converted to
//! [`crate::csr::Csr`] for computation.

/// A sparse matrix stored as `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct Coo {
    rows: usize,
    cols: usize,
    /// Unsorted, possibly-duplicated triplets.
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// New empty COO matrix with the given logical dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Build from a triplet list.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<(usize, usize, f64)>) -> Self {
        for &(r, c, _) in &entries {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of {rows}x{cols}");
        }
        Coo {
            rows,
            cols,
            entries,
        }
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "entry ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((r, c, v));
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw triplets (unsorted, may contain duplicates until
    /// [`Coo::sum_duplicates`] is called).
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Number of stored triplets (including duplicates).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sort triplets row-major and sum duplicate coordinates.
    pub fn sum_duplicates(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(usize, usize, f64)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Make the matrix pattern-symmetric by adding the transpose of every
    /// entry (duplicates merged, values of mirrored pairs summed). Requires
    /// a square matrix. This mirrors the undirected-graph case of the paper
    /// where `A = Aᵀ`.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires square");
        let mirrored: Vec<(usize, usize, f64)> = self
            .entries
            .iter()
            .filter(|&&(r, c, _)| r != c)
            .map(|&(r, c, v)| (c, r, v))
            .collect();
        self.entries.extend(mirrored);
        self.sum_duplicates();
        // Collapse any value differences by keeping the max magnitude is not
        // needed: summation already makes (i,j) and (j,i) equal because both
        // received the same pair of contributions.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.0);
        c.push(2, 2, 2.0);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn sum_duplicates_merges() {
        let mut c = Coo::from_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        c.sum_duplicates();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.entries()[0], (0, 0, 3.0));
    }

    #[test]
    fn symmetrize_mirrors_offdiagonal() {
        let mut c = Coo::from_entries(3, 3, vec![(0, 1, 1.0), (2, 2, 5.0)]);
        c.symmetrize();
        let e = c.entries();
        assert!(e.contains(&(0, 1, 1.0)));
        assert!(e.contains(&(1, 0, 1.0)));
        assert!(e.contains(&(2, 2, 5.0)));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn symmetrize_sums_existing_pairs() {
        let mut c = Coo::from_entries(2, 2, vec![(0, 1, 1.0), (1, 0, 2.0)]);
        c.symmetrize();
        // Each direction receives 1.0 + 2.0.
        assert!(c.entries().contains(&(0, 1, 3.0)));
        assert!(c.entries().contains(&(1, 0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_push_panics() {
        let mut c = Coo::new(2, 2);
        c.push(2, 0, 1.0);
    }
}
