//! Seeded random graph generators.
//!
//! Two families, matching the paper's analysis and datasets:
//!
//! * **Erdős–Rényi** `G(n, d/n)` — the model the paper uses for its §IV-A.3
//!   sparsity analysis of 1D outer products ("let us assume we have an
//!   Erdős–Rényi graph G(n, d/n) where each possible directed edge occurs
//!   with probability d/n").
//! * **R-MAT / Kronecker** — scale-free graphs with heavy-tailed degree
//!   distributions, standing in for the paper's Reddit / Amazon / Protein
//!   datasets (§V-A); the power-law structure is what produces the load
//!   imbalance and hypersparsity effects the paper discusses (§VI).
//!
//! All generators take explicit seeds and are deterministic.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Erdős–Rényi digraph `G(n, p)` with `p = avg_degree / n`; expected
/// `avg_degree · n` directed edges, weight 1.0, no self loops.
///
/// Uses geometric skipping, so the cost is O(edges), not O(n²).
pub fn erdos_renyi(n: usize, avg_degree: f64, seed: u64) -> Csr {
    assert!(n > 0, "empty graph");
    let p = (avg_degree / n as f64).clamp(0.0, 1.0);
    let mut coo = Coo::new(n, n);
    if p > 0.0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total = (n as u128) * (n as u128);
        let log1mp = (1.0 - p).ln();
        let mut idx: u128 = 0;
        loop {
            // Geometric gap to the next present edge.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = if p >= 1.0 {
                1
            } else {
                (u.ln() / log1mp).floor() as u128 + 1
            };
            idx = idx.saturating_add(gap);
            if idx > total {
                break;
            }
            let flat = (idx - 1) as usize;
            let r = flat / n;
            let c = flat % n;
            if r != c {
                coo.push(r, c, 1.0);
            }
        }
    }
    Csr::from_coo(coo)
}

/// Parameters of the R-MAT recursive quadrant distribution. The classic
/// "nice" parameters `(0.57, 0.19, 0.19, 0.05)` give a scale-free graph.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// R-MAT (Kronecker) graph on `2^scale` vertices with `edges_per_vertex ·
/// 2^scale` sampled directed edges (duplicates merged, self-loops dropped,
/// weight 1.0). Optionally symmetrized by the caller.
pub fn rmat(scale: u32, edges_per_vertex: usize, params: RmatParams, seed: u64) -> Csr {
    let n = 1usize << scale;
    let m = n * edges_per_vertex;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    // Slight per-level noise decorrelates the quadrant probabilities, the
    // standard trick to avoid exactly-repeating Kronecker structure.
    for _ in 0..m {
        let mut r = 0usize;
        let mut c = 0usize;
        for level in 0..scale {
            let bit = 1usize << (scale - 1 - level);
            let u: f64 = rng.gen();
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let a = params.a * noise;
            let b = params.b * noise;
            let cc = params.c * noise;
            let total = a + b + cc + (1.0 - params.a - params.b - params.c) * noise;
            let u = u * total;
            if u < a {
                // top-left: no bits set
            } else if u < a + b {
                c |= bit;
            } else if u < a + b + cc {
                r |= bit;
            } else {
                r |= bit;
                c |= bit;
            }
        }
        if r != c {
            coo.push(r, c, 1.0);
        }
    }
    Csr::from_coo(coo)
}

/// Undirected (symmetrized) R-MAT graph — the common benchmark shape.
pub fn rmat_symmetric(scale: u32, edges_per_vertex: usize, params: RmatParams, seed: u64) -> Csr {
    let mut coo = rmat(scale, edges_per_vertex, params, seed).to_coo();
    coo.symmetrize();
    Csr::from_coo(coo)
}

/// Parameters for [`planted_partition`].
#[derive(Clone, Copy, Debug)]
pub struct PlantedPartitionParams {
    /// Number of equally-sized communities.
    pub communities: usize,
    /// Average intra-community degree per vertex.
    pub degree_in: f64,
    /// Average inter-community degree per vertex.
    pub degree_out: f64,
    /// Number of global hub vertices, each wired to `hub_degree` random
    /// vertices anywhere in the graph — the scale-free ingredient that
    /// caps how much a partitioner can reduce the *max*-per-part cut.
    pub hubs: usize,
    /// Edges per hub.
    pub hub_degree: usize,
}

/// Planted-partition (stochastic block model) graph with optional hubs,
/// symmetrized. Community `c` owns the contiguous vertex range
/// `[c·n/k, (c+1)·n/k)`; callers typically permute afterwards so block
/// baselines cannot see the planted structure.
///
/// This models graphs like the paper's Reddit where METIS finds real
/// community structure (−72% total edgecut) while hub vertices keep the
/// max-per-process cut high (only −29%), §IV-A.8.
pub fn planted_partition(n: usize, params: PlantedPartitionParams, seed: u64) -> Csr {
    let k = params.communities.max(1);
    assert!(n >= k, "need at least one vertex per community");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    let comm_of = |v: usize| v * k / n; // contiguous equal-ish communities
    let comm_range = |c: usize| ((c * n) / k, ((c + 1) * n) / k);
    for v in 0..n {
        let c = comm_of(v);
        let (lo, hi) = comm_range(c);
        let d_in = params.degree_in / 2.0; // symmetrization doubles
        let d_out = params.degree_out / 2.0;
        let n_in = poisson_like(&mut rng, d_in);
        for _ in 0..n_in {
            let u = rng.gen_range(lo..hi);
            if u != v {
                coo.push(v, u, 1.0);
            }
        }
        let n_out = poisson_like(&mut rng, d_out);
        for _ in 0..n_out {
            let u = rng.gen_range(0..n);
            if u != v && comm_of(u) != c {
                coo.push(v, u, 1.0);
            }
        }
    }
    for h in 0..params.hubs.min(n) {
        for _ in 0..params.hub_degree {
            let u = rng.gen_range(0..n);
            if u != h {
                coo.push(h, u, 1.0);
            }
        }
    }
    coo.symmetrize();
    Csr::from_coo(coo)
}

/// Crude integer sample with the given mean (uniform on `[0, 2·mean]`) —
/// adequate for degree targets in synthetic generators.
fn poisson_like(rng: &mut ChaCha8Rng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    rng.gen_range(0.0..2.0 * mean).round() as usize
}

/// Apply the same random permutation to rows and columns of a square
/// matrix: `P A Pᵀ`. The paper's 2D/3D algorithms rely on "random vertex
/// permutations" for load balance (§I), exactly this operation.
pub fn permute_symmetric(a: &Csr, seed: u64) -> (Csr, Vec<usize>) {
    assert_eq!(a.rows(), a.cols(), "permutation requires square");
    let n = a.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    (apply_permutation(a, &perm), perm)
}

/// Apply a given row+column relabeling: vertex `v` becomes `perm[v]`.
pub fn apply_permutation(a: &Csr, perm: &[usize]) -> Csr {
    assert_eq!(a.rows(), perm.len(), "permutation length mismatch");
    let mut coo = Coo::new(a.rows(), a.cols());
    for i in 0..a.rows() {
        for (j, v) in a.row_entries(i) {
            coo.push(perm[i], perm[j], v);
        }
    }
    Csr::from_coo(coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_expected_density() {
        let n = 2000;
        let d = 8.0;
        let g = erdos_renyi(n, d, 42);
        let got = g.nnz() as f64;
        let expect = d * n as f64;
        assert!(
            (got - expect).abs() < 0.15 * expect,
            "nnz {got} far from expected {expect}"
        );
        assert_eq!(g.rows(), n);
    }

    #[test]
    fn erdos_renyi_no_self_loops_and_deterministic() {
        let g1 = erdos_renyi(500, 4.0, 7);
        let g2 = erdos_renyi(500, 4.0, 7);
        assert_eq!(g1, g2);
        for i in 0..500 {
            assert_eq!(g1.get(i, i), 0.0);
        }
    }

    #[test]
    fn erdos_renyi_zero_degree_is_empty() {
        let g = erdos_renyi(100, 0.0, 1);
        assert_eq!(g.nnz(), 0);
    }

    #[test]
    fn rmat_shape_and_determinism() {
        let g1 = rmat(8, 8, RmatParams::default(), 1);
        let g2 = rmat(8, 8, RmatParams::default(), 1);
        assert_eq!(g1, g2);
        assert_eq!(g1.rows(), 256);
        // Duplicates merged, so nnz <= sampled edges.
        assert!(g1.nnz() <= 256 * 8);
        assert!(g1.nnz() > 256); // but not degenerately few
    }

    #[test]
    fn rmat_is_skewed() {
        // Scale-free: max degree should far exceed the average.
        let g = rmat(10, 16, RmatParams::default(), 3);
        let max_deg = (0..g.rows()).map(|i| g.row_nnz(i)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > 4.0 * avg,
            "max {max_deg} vs avg {avg} — not heavy-tailed"
        );
    }

    #[test]
    fn rmat_symmetric_is_symmetric() {
        let g = rmat_symmetric(7, 4, RmatParams::default(), 9);
        assert_eq!(g, g.transpose());
    }

    #[test]
    fn planted_partition_has_community_structure() {
        let params = PlantedPartitionParams {
            communities: 8,
            degree_in: 10.0,
            degree_out: 1.0,
            hubs: 0,
            hub_degree: 0,
        };
        let g = planted_partition(800, params, 4);
        // Count intra- vs inter-community edges.
        let comm = |v: usize| v * 8 / 800;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for i in 0..g.rows() {
            for (j, _) in g.row_entries(i) {
                if comm(i) == comm(j) {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(
            intra > 5 * inter,
            "planted structure too weak: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn planted_partition_hubs_have_high_degree() {
        let params = PlantedPartitionParams {
            communities: 4,
            degree_in: 4.0,
            degree_out: 1.0,
            hubs: 2,
            hub_degree: 100,
        };
        let g = planted_partition(400, params, 5);
        let avg = g.avg_degree();
        assert!(g.row_nnz(0) as f64 > 5.0 * avg, "hub 0 not hub-like");
        assert!(g.row_nnz(1) as f64 > 5.0 * avg, "hub 1 not hub-like");
        // Symmetric despite hubs.
        assert_eq!(g, g.transpose());
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = rmat_symmetric(6, 4, RmatParams::default(), 11);
        let (pg, perm) = permute_symmetric(&g, 5);
        assert_eq!(pg.nnz(), g.nnz());
        // Spot-check: edge (i,j) maps to (perm[i], perm[j]).
        for i in 0..g.rows() {
            for (j, v) in g.row_entries(i) {
                assert_eq!(pg.get(perm[i], perm[j]), v);
            }
        }
    }

    #[test]
    fn permutation_is_bijection() {
        let g = erdos_renyi(64, 3.0, 2);
        let (_, perm) = permute_symmetric(&g, 13);
        let mut seen = [false; 64];
        for &p in &perm {
            assert!(!seen[p], "duplicate target {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn identity_permutation_is_noop() {
        let g = erdos_renyi(32, 3.0, 4);
        let perm: Vec<usize> = (0..32).collect();
        assert_eq!(apply_permutation(&g, &perm), g);
    }
}
