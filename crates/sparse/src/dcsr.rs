//! Doubly-Compressed Sparse Rows (DCSR) — the hypersparse format of
//! Buluç & Gilbert, cited by the paper (§VI, \[8\]) when explaining why
//! local SpMM degrades under 2D partitioning: a `√P x √P` split divides
//! each block's average degree by `√P`, so at scale most block rows are
//! empty and a CSR row pointer of length `n/√P + 1` dwarfs the nonzeros.
//!
//! DCSR stores only the non-empty rows (`row_ids` + a compressed pointer
//! array), making storage `O(nnz + nzr)` instead of `O(nnz + rows)` and
//! letting SpMM skip empty rows entirely instead of scanning them.

use crate::csr::Csr;
use cagnet_dense::Mat;

/// A hypersparse matrix: CSR over its non-empty rows only.
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsr {
    rows: usize,
    cols: usize,
    /// Global indices of non-empty rows, ascending.
    row_ids: Vec<usize>,
    /// Compressed row pointers, parallel to `row_ids` (length
    /// `row_ids.len() + 1`).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Dcsr {
    /// Compress a CSR matrix (drops the empty-row pointer entries).
    pub fn from_csr(a: &Csr) -> Self {
        let mut row_ids = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        for i in 0..a.rows() {
            if a.row_nnz(i) == 0 {
                continue;
            }
            row_ids.push(i);
            for (c, v) in a.row_entries(i) {
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Dcsr {
            rows: a.rows(),
            cols: a.cols(),
            row_ids,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Expand back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for (k, &r) in self.row_ids.iter().enumerate() {
            row_ptr[r + 1] = self.row_ptr[k + 1] - self.row_ptr[k];
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr::from_raw(
            self.rows,
            self.cols,
            row_ptr,
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of non-empty rows (`nzr`).
    pub fn non_empty_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// Storage footprint in 8-byte words: values + column indices +
    /// compressed pointers + row ids.
    pub fn storage_words(&self) -> usize {
        2 * self.nnz() + self.row_ptr.len() + self.row_ids.len()
    }

    /// CSR storage footprint in words for comparison: values + column
    /// indices + full row pointer.
    pub fn csr_storage_words(&self) -> usize {
        2 * self.nnz() + self.rows + 1
    }

    /// Iterate `(global_row, col, value)` over stored entries.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.row_ids.iter().enumerate().flat_map(move |(k, &r)| {
            (self.row_ptr[k]..self.row_ptr[k + 1]).map(move |j| (r, self.col_idx[j], self.vals[j]))
        })
    }
}

/// `C = A · B` with hypersparse `A`: iterates only non-empty rows, so the
/// cost is `O(nnz·f + nzr)` independent of the logical row count.
pub fn spmm_dcsr(a: &Dcsr, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows(), "spmm_dcsr: inner dims");
    let f = b.cols();
    let mut c = Mat::zeros(a.rows(), f);
    if f == 0 {
        return c;
    }
    let bv = b.as_slice();
    let cv = c.as_mut_slice();
    for k in 0..a.row_ids.len() {
        let r = a.row_ids[k];
        let crow = &mut cv[r * f..(r + 1) * f];
        for j in a.row_ptr[k]..a.row_ptr[k + 1] {
            let aval = a.vals[j];
            let brow = &bv[a.col_idx[j] * f..(a.col_idx[j] + 1) * f];
            for (cj, &bval) in crow.iter_mut().zip(brow) {
                // lint:allow(scalar-hot-loop): hypersparse row stream; the width-specialized Csr kernels do not see Dcsr's row_ids indirection
                *cj += aval * bval;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::generate::erdos_renyi;
    use crate::spmm::spmm;
    use cagnet_dense::init::uniform;

    fn hypersparse() -> Csr {
        // 1000 rows, only 3 non-empty.
        Csr::from_coo(Coo::from_entries(
            1000,
            50,
            vec![(3, 10, 1.0), (3, 20, 2.0), (500, 0, -1.0), (999, 49, 4.0)],
        ))
    }

    #[test]
    fn roundtrip_csr_dcsr_csr() {
        let a = hypersparse();
        let d = Dcsr::from_csr(&a);
        assert_eq!(d.to_csr(), a);
        assert_eq!(d.nnz(), 4);
        assert_eq!(d.non_empty_rows(), 3);
    }

    #[test]
    fn storage_savings_on_hypersparse() {
        let d = Dcsr::from_csr(&hypersparse());
        // DCSR: 8 + 4 + 3 = 15 words; CSR: 8 + 1001 words.
        assert!(d.storage_words() < d.csr_storage_words() / 10);
    }

    #[test]
    fn no_savings_when_dense_rows() {
        // Every row non-empty: DCSR pays the extra row_ids array.
        let a = Csr::identity(100);
        let d = Dcsr::from_csr(&a);
        assert!(d.storage_words() >= d.csr_storage_words());
    }

    #[test]
    fn spmm_matches_csr() {
        let a = hypersparse();
        let d = Dcsr::from_csr(&a);
        let b = uniform(50, 7, -1.0, 1.0, 3);
        let dense = spmm(&a, &b);
        let hyper = spmm_dcsr(&d, &b);
        assert!(dense.approx_eq(&hyper, 1e-14));
    }

    #[test]
    fn spmm_matches_on_random_graph_blocks() {
        // The actual use case: 2D blocks of a sparse graph at high P.
        let g = erdos_renyi(512, 3.0, 9);
        let block = g.block(0, 64, 128, 256); // hypersparse sub-block
        let d = Dcsr::from_csr(&block);
        assert!(d.non_empty_rows() <= block.rows());
        let b = uniform(block.cols(), 5, -1.0, 1.0, 4);
        assert!(spmm(&block, &b).approx_eq(&spmm_dcsr(&d, &b), 1e-12));
    }

    #[test]
    fn entries_iterator_is_complete() {
        let d = Dcsr::from_csr(&hypersparse());
        let got: Vec<_> = d.entries().collect();
        assert_eq!(
            got,
            vec![(3, 10, 1.0), (3, 20, 2.0), (500, 0, -1.0), (999, 49, 4.0)]
        );
    }

    #[test]
    fn empty_matrix() {
        let d = Dcsr::from_csr(&Csr::empty(10, 10));
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.non_empty_rows(), 0);
        let b = uniform(10, 3, -1.0, 1.0, 5);
        assert!(spmm_dcsr(&d, &b).as_slice().iter().all(|&x| x == 0.0));
    }
}
