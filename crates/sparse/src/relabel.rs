//! Vertex relabeling: turn an arbitrary partition into the contiguous
//! block layout the trainers consume.
//!
//! Every trainer distributes rows by [`crate::partition::block_ranges`]:
//! rank `i` owns a contiguous id range. A partitioner's assignment
//! (`part[v]` = owning part) is therefore wired into training by
//! *renumbering* vertices part-major — all of part 0's vertices first,
//! then part 1's, and so on, old-id order preserved within a part — and
//! permuting the adjacency, features, labels, and masks to match. This is
//! the same `P A Pᵀ` operation as [`crate::generate::permute_symmetric`],
//! just with a partition-derived permutation instead of a random one, and
//! the two compose: permute first to hide structure, partition, then
//! relabel.
//!
//! Relabeling changes *nothing* about the computation: training the
//! relabeled problem is bit-identical to training the original after
//! accounting for the id permutation, because every trainer is
//! row-order-agnostic up to the block boundaries. What changes is which
//! rows are remote to each rank — that is the entire point.

use crate::csr::Csr;
use crate::generate::apply_permutation;
use cagnet_dense::Mat;

/// An old↔new vertex id mapping produced from a partition, plus the
/// contiguous new-id range each part occupies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    /// `old_to_new[v]` = new id of old vertex `v` (a permutation).
    pub old_to_new: Vec<usize>,
    /// `new_to_old[i]` = old id of new vertex `i` (the inverse).
    pub new_to_old: Vec<usize>,
    /// `part_ranges[q]` = the half-open new-id range `[lo, hi)` owned by
    /// part `q`. Ranges are contiguous, in order, and cover `0..n`.
    pub part_ranges: Vec<(usize, usize)>,
}

impl Relabeling {
    /// Build the part-major renumbering for `part` (a stable counting
    /// sort by `(part[v], v)`): vertices of part 0 keep their relative
    /// order and occupy new ids `[0, |part 0|)`, and so on. Empty parts
    /// yield empty ranges.
    pub fn from_partition(part: &[usize], num_parts: usize) -> Relabeling {
        assert!(num_parts > 0, "need at least one part");
        let n = part.len();
        let mut counts = vec![0usize; num_parts];
        for &q in part {
            assert!(q < num_parts, "part id {q} out of range");
            counts[q] += 1;
        }
        let mut part_ranges = Vec::with_capacity(num_parts);
        let mut cursor = vec![0usize; num_parts];
        let mut lo = 0usize;
        for q in 0..num_parts {
            cursor[q] = lo;
            part_ranges.push((lo, lo + counts[q]));
            lo += counts[q];
        }
        let mut old_to_new = vec![0usize; n];
        let mut new_to_old = vec![0usize; n];
        for (v, &q) in part.iter().enumerate() {
            let i = cursor[q];
            cursor[q] += 1;
            old_to_new[v] = i;
            new_to_old[i] = v;
        }
        Relabeling {
            old_to_new,
            new_to_old,
            part_ranges,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.old_to_new.len()
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// The partition re-expressed in new ids (`result[i]` = part of new
    /// vertex `i`) — block-shaped by construction.
    pub fn part_of_new(&self) -> Vec<usize> {
        let mut part = vec![0usize; self.len()];
        for (q, &(lo, hi)) in self.part_ranges.iter().enumerate() {
            part[lo..hi].fill(q);
        }
        part
    }

    /// Reorder per-vertex data from old-id order into new-id order.
    pub fn permute<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len(), self.len(), "relabel length mismatch");
        self.new_to_old.iter().map(|&v| xs[v].clone()).collect()
    }

    /// Reorder per-vertex data from new-id order back into old-id order.
    pub fn unpermute<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len(), self.len(), "relabel length mismatch");
        self.old_to_new.iter().map(|&i| xs[i].clone()).collect()
    }

    /// Reorder matrix rows from old-id order into new-id order
    /// (features, labels-as-one-hot, ...).
    pub fn permute_rows(&self, m: &Mat) -> Mat {
        assert_eq!(m.rows(), self.len(), "relabel row-count mismatch");
        Mat::from_fn(m.rows(), m.cols(), |i, j| m.row(self.new_to_old[i])[j])
    }

    /// Reorder matrix rows from new-id order back into old-id order —
    /// the inverse of [`Relabeling::permute_rows`], used to hand
    /// embeddings computed on a relabeled problem back in original ids.
    pub fn unpermute_rows(&self, m: &Mat) -> Mat {
        assert_eq!(m.rows(), self.len(), "relabel row-count mismatch");
        Mat::from_fn(m.rows(), m.cols(), |i, j| m.row(self.old_to_new[i])[j])
    }
}

/// Relabel `a` part-major under `part`: returns `P A Pᵀ` with each part's
/// vertices occupying a contiguous id block, plus the [`Relabeling`] used.
/// Composes with [`crate::generate::permute_symmetric`] — relabeling a
/// permuted graph under a partition of the permuted ids gives the same
/// result as relabeling the original under the composed map.
pub fn apply_partition(a: &Csr, part: &[usize], num_parts: usize) -> (Csr, Relabeling) {
    assert_eq!(a.rows(), part.len(), "partition length mismatch");
    assert_eq!(a.rows(), a.cols(), "relabel requires square adjacency");
    let rl = Relabeling::from_partition(part, num_parts);
    let relabeled = apply_permutation(a, &rl.old_to_new);
    (relabeled, rl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgecut::evaluate_partition;
    use crate::generate::{erdos_renyi, permute_symmetric};
    use crate::partitioner::{partition_greedy_bfs, PartitionConfig, PartitionObjective};

    #[test]
    fn relabeling_is_a_permutation_with_contiguous_parts() {
        let part = vec![2usize, 0, 2, 1, 0, 2, 1, 0];
        let rl = Relabeling::from_partition(&part, 3);
        // Bijection.
        for v in 0..part.len() {
            assert_eq!(rl.new_to_old[rl.old_to_new[v]], v);
        }
        assert_eq!(rl.part_ranges, vec![(0, 3), (3, 5), (5, 8)]);
        // Part-major, old order preserved within a part.
        assert_eq!(rl.part_of_new(), vec![0, 0, 0, 1, 1, 2, 2, 2]);
        assert_eq!(&rl.new_to_old[0..3], &[1, 4, 7]); // part 0's vertices
        assert_eq!(&rl.new_to_old[3..5], &[3, 6]); // part 1's
        assert_eq!(&rl.new_to_old[5..8], &[0, 2, 5]); // part 2's
    }

    #[test]
    fn empty_parts_get_empty_ranges() {
        let part = vec![0usize, 2, 2];
        let rl = Relabeling::from_partition(&part, 4);
        assert_eq!(rl.part_ranges, vec![(0, 1), (1, 1), (1, 3), (3, 3)]);
    }

    #[test]
    fn permute_roundtrips() {
        let part = vec![1usize, 0, 1, 0, 1];
        let rl = Relabeling::from_partition(&part, 2);
        let xs: Vec<usize> = (100..105).collect();
        assert_eq!(rl.unpermute(&rl.permute(&xs)), xs);
        let m = Mat::from_fn(5, 3, |i, j| (10 * i + j) as f64);
        let back = rl.unpermute_rows(&rl.permute_rows(&m));
        for i in 0..5 {
            assert_eq!(back.row(i), m.row(i));
        }
        // permute_rows really moves old row new_to_old[i] into slot i.
        let pm = rl.permute_rows(&m);
        for i in 0..5 {
            assert_eq!(pm.row(i), m.row(rl.new_to_old[i]));
        }
    }

    #[test]
    fn cut_report_invariant_under_relabeling() {
        let g = erdos_renyi(60, 4.0, 17);
        let cfg = PartitionConfig {
            num_parts: 4,
            objective: PartitionObjective::Volume,
            ..Default::default()
        };
        let part = partition_greedy_bfs(&g, &cfg);
        let before = evaluate_partition(&g, &part, 4);
        let (rg, rl) = apply_partition(&g, &part, 4);
        let after = evaluate_partition(&rg, &rl.part_of_new(), 4);
        assert_eq!(before, after);
        assert_eq!(rg.nnz(), g.nnz());
    }

    #[test]
    fn composes_with_permute_symmetric() {
        let g = erdos_renyi(40, 3.0, 23);
        let (pg, perm) = permute_symmetric(&g, 24);
        // Partition the permuted graph, relabel it...
        let part = partition_greedy_bfs(&pg, &PartitionConfig::default());
        let (rg, rl) = apply_partition(&pg, &part, 2);
        // ...equals relabeling the original under the composed map.
        let composed: Vec<usize> = (0..g.rows()).map(|v| rl.old_to_new[perm[v]]).collect();
        let direct = crate::generate::apply_permutation(&g, &composed);
        assert_eq!(direct.nnz(), rg.nnz());
        for i in 0..rg.rows() {
            let a: Vec<_> = direct.row_entries(i).collect();
            let b: Vec<_> = rg.row_entries(i).collect();
            assert_eq!(a, b, "row {i} differs");
        }
    }

    #[test]
    #[should_panic(expected = "part id")]
    fn out_of_range_part_id_panics() {
        let _ = Relabeling::from_partition(&[0, 3], 2);
    }
}
