//! GCN adjacency normalization.
//!
//! The paper (§III-B, following Kipf & Welling) forms the modified
//! adjacency matrix `Â = D^{-1/2} (A + I) D^{-1/2}` where the self-loops
//! "ensure that each node does not forget its embedding" and `D` is the
//! diagonal of modified degrees. All training algorithms operate on `Â`,
//! which the paper continues to call `A`.

use crate::coo::Coo;
use crate::csr::Csr;

/// Add self-loops: `A + I`. Entries already on the diagonal get `+1`.
pub fn add_self_loops(a: &Csr) -> Csr {
    assert_eq!(a.rows(), a.cols(), "self-loops require a square matrix");
    let mut coo = a.to_coo();
    for i in 0..a.rows() {
        coo.push(i, i, 1.0);
    }
    Csr::from_coo(coo)
}

/// Symmetric GCN normalization of an adjacency matrix *that already
/// includes self-loops*: `D^{-1/2} M D^{-1/2}`, with `D[i] = Σ_j M[i,j]`.
///
/// With self-loops present every row sum is ≥ 1, so no division by zero can
/// occur.
pub fn sym_normalize(m: &Csr) -> Csr {
    assert_eq!(m.rows(), m.cols(), "normalization requires square");
    let n = m.rows();
    let mut deg = vec![0.0f64; n];
    for (i, d) in deg.iter_mut().enumerate() {
        for (_, v) in m.row_entries(i) {
            *d += v;
        }
    }
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { d.powf(-0.5) } else { 0.0 })
        .collect();
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        for (j, v) in m.row_entries(i) {
            coo.push(i, j, inv_sqrt[i] * v * inv_sqrt[j]);
        }
    }
    Csr::from_coo(coo)
}

/// The full GCN preprocessing pipeline: `Â = D^{-1/2}(A + I)D^{-1/2}`.
pub fn gcn_normalize(a: &Csr) -> Csr {
    sym_normalize(&add_self_loops(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn path_graph(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn self_loops_add_diagonal() {
        let a = path_graph(3);
        let al = add_self_loops(&a);
        assert_eq!(al.nnz(), a.nnz() + 3);
        for i in 0..3 {
            assert_eq!(al.get(i, i), 1.0);
        }
    }

    #[test]
    fn self_loops_increment_existing_diagonal() {
        let a = Csr::from_coo(Coo::from_entries(2, 2, vec![(0, 0, 2.0)]));
        let al = add_self_loops(&a);
        assert_eq!(al.get(0, 0), 3.0);
        assert_eq!(al.get(1, 1), 1.0);
    }

    #[test]
    fn normalized_matrix_is_symmetric_for_undirected_input() {
        let ahat = gcn_normalize(&path_graph(5));
        let t = ahat.transpose();
        assert!(ahat.to_dense().approx_eq(&t.to_dense(), 1e-14));
    }

    #[test]
    fn normalization_values_on_path() {
        // Path of 2 vertices + self loops: each row sum of A+I is 2, so
        // every entry becomes 1/2.
        let ahat = gcn_normalize(&path_graph(2));
        for i in 0..2 {
            for j in 0..2 {
                assert!((ahat.get(i, j) - 0.5).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn isolated_vertex_is_safe() {
        // Vertex 2 has no edges; with self-loop its degree is 1.
        let a = Csr::from_coo(Coo::from_entries(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0)]));
        let ahat = gcn_normalize(&a);
        assert_eq!(ahat.get(2, 2), 1.0);
        assert!(ahat.vals().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spectral_radius_at_most_one() {
        // Power iteration: ||Âx|| / ||x|| should stay <= 1 for the GCN
        // normalization (its spectrum lies in [-1, 1]).
        let ahat = gcn_normalize(&path_graph(16));
        let mut x = cagnet_dense::Mat::filled(16, 1, 1.0);
        for _ in 0..30 {
            let y = crate::spmm::spmm(&ahat, &x);
            let ny = y.frobenius();
            let nx = x.frobenius();
            assert!(ny <= nx * (1.0 + 1e-12), "norm grew: {ny} > {nx}");
            x = y;
            if x.frobenius() == 0.0 {
                break;
            }
        }
    }
}
