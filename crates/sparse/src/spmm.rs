//! Sparse matrix × tall-skinny dense matrix multiplication (SpMM).
//!
//! This is the paper's dominant computational primitive: "the most time
//! consuming operations are the multiplication of a sparse matrix with a
//! dense matrix (SpMM) and dense matrix multiply" (§III-B). The paper uses
//! cuSPARSE `csrmm2`; this module is the from-scratch CPU equivalent, plus
//! a semiring-generic variant realizing the paper's §I note that the
//! algorithms "can be trivially extended to support arbitrary aggregate
//! operations" via an overloadable (⊕, ⊗) pair.

use crate::csr::Csr;
use cagnet_dense::Mat;
use cagnet_parallel::ParallelCtx;
use core::ops::Range;

/// `C = A · B` where `A` is CSR and `B` dense.
///
/// ```
/// use cagnet_dense::Mat;
/// use cagnet_sparse::{spmm, Csr};
/// let a = Csr::identity(3);
/// let b = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
/// assert_eq!(spmm(&a, &b), b);
/// ```
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn spmm(a: &Csr, b: &Mat) -> Mat {
    spmm_with(ParallelCtx::serial(), a, b)
}

/// `C = A · B`, row chunks forked across `ctx`'s thread budget.
///
/// Chunks are balanced by **nonzero count**, not row count — under the
/// power-law degree distributions of real graphs (and the hypersparse
/// blocks of high-`P` 2D partitions) row-balanced chunks can be wildly
/// work-imbalanced. Each chunk still owns a contiguous, disjoint range
/// of output rows processed by the identical serial row loop, so the
/// result is bit-for-bit equal to serial for every thread count.
pub fn spmm_with(ctx: ParallelCtx, a: &Csr, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    spmm_acc_with(ctx, a, b, &mut c);
    c
}

/// `C += A · B` with accumulation — the SUMMA-stage primitive.
pub fn spmm_acc(a: &Csr, b: &Mat, c: &mut Mat) {
    spmm_acc_with(ParallelCtx::serial(), a, b, c);
}

/// `C += A · B`, nnz-balanced row chunks forked across `ctx`.
///
/// The row loop is **width-specialized** (DESIGN.md §14): for the common
/// GCN feature widths the per-row accumulator is a fixed-size register
/// array — the `C` row is loaded once, all of the row's nonzeros
/// accumulate into registers with fully unrolled `f`-wide inner loops,
/// and the row is stored once. Other widths up to 128 stream the row's
/// nonzeros in a single generic-width pass; wider ones
/// take a column-tiled loop that keeps an L1-resident slice of the
/// skinny `B` operand hot across the whole CSR row range. All paths
/// fold each element's products in
/// stored-entry order with a single accumulator, so results are
/// bit-identical to the historical per-nonzero axpy loop (kept in
/// [`crate::reference`] for benchmarking) and to serial at every thread
/// count.
pub fn spmm_acc_with(ctx: ParallelCtx, a: &Csr, b: &Mat, c: &mut Mat) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm: inner dims {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(c.shape(), (a.rows(), b.cols()), "spmm: output shape");
    let f = b.cols();
    if f == 0 {
        return;
    }
    let bv = b.as_slice();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let vals = a.vals();
    let ranges = nnz_balanced_ranges(row_ptr, spmm_chunks(ctx, a));
    ctx.par_partitions(&ranges, f, c.as_mut_slice(), |rows, panel| {
        // Width dispatch happens per chunk, but every chunk of a given
        // SpMM sees the same `f`, so all chunks run the same kernel.
        match f {
            8 => spmm_rows_fixed::<8>(row_ptr, col_idx, vals, bv, panel, rows),
            16 => spmm_rows_fixed::<16>(row_ptr, col_idx, vals, bv, panel, rows),
            32 => spmm_rows_fixed::<32>(row_ptr, col_idx, vals, bv, panel, rows),
            64 => spmm_rows_fixed::<64>(row_ptr, col_idx, vals, bv, panel, rows),
            128 => spmm_rows_fixed::<128>(row_ptr, col_idx, vals, bv, panel, rows),
            _ if f <= SPMM_BUF_WIDTH => {
                spmm_rows_buffered(row_ptr, col_idx, vals, bv, panel, rows, f)
            }
            _ => spmm_rows_tiled(row_ptr, col_idx, vals, bv, panel, rows, f),
        }
    });
}

/// Width-specialized SpMM over one row chunk: `F` is a compile-time
/// constant, so the accumulator is `[f64; F]` in registers and the inner
/// loops unroll/vectorize with no length checks. The degree-specialized
/// nonzero loop walks four stored entries per step for high-degree rows
/// (four *sequential* accumulator updates — the per-element fold order
/// is exactly stored order, as in the scalar loop) with a short tail for
/// the remainder, so power-law rows and leaf rows both run well.
fn spmm_rows_fixed<const F: usize>(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    bv: &[f64],
    panel: &mut [f64],
    rows: Range<usize>,
) {
    let r0 = rows.start;
    for i in rows {
        let crow = &mut panel[(i - r0) * F..(i - r0 + 1) * F];
        let mut acc = [0.0f64; F];
        acc.copy_from_slice(crow);
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        let mut k = lo;
        while k + 8 <= hi {
            // Eight stored entries per step: the eight B-row gathers are
            // address-independent, so the loads overlap even though the
            // accumulator updates stay sequential (stored-entry order).
            for step in 0..8 {
                let aval = vals[k + step];
                let brow = &bv[col_idx[k + step] * F..col_idx[k + step] * F + F];
                for (cj, &bval) in acc.iter_mut().zip(brow) {
                    *cj += aval * bval;
                }
            }
            k += 8;
        }
        while k + 4 <= hi {
            for step in 0..4 {
                let aval = vals[k + step];
                let brow = &bv[col_idx[k + step] * F..col_idx[k + step] * F + F];
                for (cj, &bval) in acc.iter_mut().zip(brow) {
                    *cj += aval * bval;
                }
            }
            k += 4;
        }
        while k < hi {
            let aval = vals[k];
            let brow = &bv[col_idx[k] * F..col_idx[k] * F + F];
            for (cj, &bval) in acc.iter_mut().zip(brow) {
                *cj += aval * bval;
            }
            k += 1;
        }
        crow.copy_from_slice(&acc);
    }
}

/// Widest generic `f` served by the direct single-pass row loop. Beyond
/// this the active `B` working set outgrows L2 and tiling pays for its
/// repeated nonzero walk.
const SPMM_BUF_WIDTH: usize = 128;

/// Generic-width SpMM for `f ≤ SPMM_BUF_WIDTH` that isn't one of the
/// fixed-width arms: a single pass over the row's nonzeros streaming
/// each neighbor's `B` row against the L1-resident `C` row. With a
/// runtime `f` the accumulator cannot live in a fixed register file, so
/// this is deliberately the same memory scheme as the historical kernel
/// — uncommon widths perform no worse than before, and common widths
/// take the specialized arms above.
fn spmm_rows_buffered(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    bv: &[f64],
    panel: &mut [f64],
    rows: Range<usize>,
    f: usize,
) {
    debug_assert!(f <= SPMM_BUF_WIDTH);
    let r0 = rows.start;
    for i in rows {
        let crow = &mut panel[(i - r0) * f..(i - r0 + 1) * f];
        for k in row_ptr[i]..row_ptr[i + 1] {
            let aval = vals[k];
            let brow = &bv[col_idx[k] * f..(col_idx[k] + 1) * f];
            for (cj, &bval) in crow.iter_mut().zip(brow) {
                *cj += aval * bval;
            }
        }
    }
}

/// Column width of the tiled generic-`f` SpMM path: 64 f64 = 512 bytes
/// per touched `B` row, so a tile of a few hundred distinct neighbor
/// rows stays L1/L2-resident across the chunk.
const SPMM_COL_TILE: usize = 64;

/// Wide-`f` SpMM over one row chunk, column-tiled: each pass covers
/// `SPMM_COL_TILE` columns of `B`/`C` for the whole row range, so the
/// active slice of the skinny dense operand stays cache-resident even
/// when `f` is large. The CSR structure is re-walked per tile (index
/// arrays are small and stay hot); each output element still folds its
/// products in stored-entry order.
#[allow(clippy::too_many_arguments)]
fn spmm_rows_tiled(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    bv: &[f64],
    panel: &mut [f64],
    rows: Range<usize>,
    f: usize,
) {
    let r0 = rows.start;
    for jt in (0..f).step_by(SPMM_COL_TILE) {
        let tw = SPMM_COL_TILE.min(f - jt);
        for i in rows.clone() {
            let crow = &mut panel[(i - r0) * f + jt..(i - r0) * f + jt + tw];
            for k in row_ptr[i]..row_ptr[i + 1] {
                let aval = vals[k];
                let brow = &bv[col_idx[k] * f + jt..col_idx[k] * f + jt + tw];
                for (cj, &bval) in crow.iter_mut().zip(brow) {
                    *cj += aval * bval;
                }
            }
        }
    }
}

/// How many chunks an SpMM over `a` should fork into: one per thread,
/// but never so many that a chunk holds trivial work.
fn spmm_chunks(ctx: ParallelCtx, a: &Csr) -> usize {
    /// Minimum stored entries per forked chunk.
    const MIN_NNZ_PER_CHUNK: usize = 2048;
    let by_work = (a.nnz() / MIN_NNZ_PER_CHUNK).max(1);
    ctx.threads().min(a.rows().max(1)).min(by_work)
}

/// Split CSR rows into `chunks` contiguous ranges with approximately
/// equal nonzero counts. Pure function of `(row_ptr, chunks)`: boundary
/// `c` sits at the first row whose prefix nnz reaches `total·c/chunks`,
/// clamped so every chunk keeps at least one row.
fn nnz_balanced_ranges(row_ptr: &[usize], chunks: usize) -> Vec<Range<usize>> {
    let rows = row_ptr.len() - 1;
    let total = row_ptr[rows];
    let chunks = chunks.clamp(1, rows.max(1));
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 0..chunks {
        let end = if c + 1 == chunks {
            rows
        } else {
            let target = total * (c + 1) / chunks;
            let cut = row_ptr.partition_point(|&p| p < target).saturating_sub(1);
            // Keep at least one row here and one for each later chunk.
            cut.clamp(start + 1, rows - (chunks - 1 - c))
        };
        out.push(start..end);
        start = end;
    }
    out
}

/// A semiring over `f64`: an additive monoid (`add`, `zero`) and a
/// multiplicative operation. `spmm` over the standard `(+, ×, 0)` semiring
/// recovers ordinary SpMM; `(min, +, ∞)` gives shortest-path relaxation,
/// `(max, ×, 0)` a max-pooling aggregation, etc.
///
/// `Sync` is a supertrait so semirings can be shared by the forked row
/// chunks of [`spmm_semiring_acc_with`]; semirings are stateless
/// operation tables, so this costs implementors nothing.
pub trait Semiring: Sync {
    /// Additive identity of the aggregation.
    fn zero(&self) -> f64;
    /// The aggregation ⊕.
    fn add(&self, a: f64, b: f64) -> f64;
    /// The combination ⊗.
    fn mul(&self, a: f64, b: f64) -> f64;
}

/// The standard arithmetic `(+, ×, 0)` semiring.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    fn zero(&self) -> f64 {
        0.0
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(&self, a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The tropical `(min, +, +∞)` semiring.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    fn zero(&self) -> f64 {
        f64::INFINITY
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// The `(max, ×, 0)` semiring — max-aggregation over weighted neighbors
/// (assumes non-negative values, as in normalized adjacency matrices).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxTimes;

impl Semiring for MaxTimes {
    fn zero(&self) -> f64 {
        0.0
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(&self, a: f64, b: f64) -> f64 {
        a * b
    }
}

/// SpMM over an arbitrary semiring: `C[i,j] = ⊕_k A[i,k] ⊗ B[k,j]`, where
/// the ⊕ ranges over the *stored* entries of row `i` (implicit zeros do
/// not participate, matching GraphBLAS semantics).
pub fn spmm_semiring<S: Semiring>(a: &Csr, b: &Mat, s: &S) -> Mat {
    let mut c = Mat::filled(a.rows(), b.cols(), s.zero());
    spmm_semiring_acc(a, b, s, &mut c);
    c
}

/// `C ⊕= A ⊗ B` over a semiring — the accumulating form used by block
/// algorithms (the distributed stages of `cagnet_core::propagate`). `c`
/// must have been initialized with `s.zero()` (or hold a previous
/// partial).
pub fn spmm_semiring_acc<S: Semiring>(a: &Csr, b: &Mat, s: &S, c: &mut Mat) {
    spmm_semiring_acc_with(ParallelCtx::serial(), a, b, s, c);
}

/// `C ⊕= A ⊗ B` over a semiring, nnz-balanced row chunks forked across
/// `ctx`. Disjoint output rows keep the ⊕ fold order per element
/// independent of the thread count, so non-associative-under-rounding
/// aggregations still produce serial-identical bits.
pub fn spmm_semiring_acc_with<S: Semiring>(ctx: ParallelCtx, a: &Csr, b: &Mat, s: &S, c: &mut Mat) {
    assert_eq!(a.cols(), b.rows(), "spmm_semiring: inner dims");
    assert_eq!(
        c.shape(),
        (a.rows(), b.cols()),
        "spmm_semiring: output shape"
    );
    let f = b.cols();
    if f == 0 {
        return;
    }
    let bv = b.as_slice();
    let ranges = nnz_balanced_ranges(a.row_ptr(), spmm_chunks(ctx, a));
    ctx.par_partitions(&ranges, f, c.as_mut_slice(), |rows, panel| {
        let r0 = rows.start;
        for i in rows {
            let crow = &mut panel[(i - r0) * f..(i - r0 + 1) * f];
            for (col, aval) in a.row_entries(i) {
                let brow = &bv[col * f..(col + 1) * f];
                for (cj, &bval) in crow.iter_mut().zip(brow) {
                    *cj = s.add(*cj, s.mul(aval, bval));
                }
            }
        }
    });
}

/// Sparse × dense outer-product style product used by the 1D backward pass:
/// `C = A(:, c0..c1) · B` where the caller holds only a *column block* of
/// `A` stored as the CSR of its transpose (`At_block`, shaped
/// `block_cols x n_rows_of_A`), and `B` has `block_cols` rows. The result is
/// the full-height `n x f` low-rank contribution that is then
/// reduce-scattered (paper §IV-A.3).
pub fn outer_product_from_transposed(at_block: &Csr, b: &Mat) -> Mat {
    assert_eq!(at_block.rows(), b.rows(), "outer product: inner dims");
    let n = at_block.cols();
    let f = b.cols();
    let mut c = Mat::zeros(n, f);
    let cv = c.as_mut_slice();
    let bv = b.as_slice();
    for k in 0..at_block.rows() {
        let brow = &bv[k * f..(k + 1) * f];
        for (dst_row, aval) in at_block.row_entries(k) {
            let crow = &mut cv[dst_row * f..(dst_row + 1) * f];
            for (cj, &bval) in crow.iter_mut().zip(brow) {
                *cj += aval * bval;
            }
        }
    }
    c
}

/// Flop count of `spmm` on this operand pair (2 flops per stored
/// multiply-add).
pub fn spmm_flops(a: &Csr, dense_cols: usize) -> u64 {
    2 * a.nnz() as u64 * dense_cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample_csr() -> Csr {
        Csr::from_coo(Coo::from_entries(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, -1.0),
                (2, 0, 0.5),
                (2, 2, 4.0),
            ],
        ))
    }

    fn sample_dense() -> Mat {
        Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 4.0)
    }

    #[test]
    fn spmm_matches_densified_gemm() {
        let a = sample_csr();
        let b = sample_dense();
        let sparse = spmm(&a, &b);
        let dense = cagnet_dense::matmul(&a.to_dense(), &b);
        assert!(sparse.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn spmm_acc_accumulates() {
        let a = sample_csr();
        let b = sample_dense();
        let mut c = spmm(&a, &b);
        spmm_acc(&a, &b, &mut c);
        let doubled = spmm(&a, &b).map(|x| 2.0 * x);
        assert!(c.approx_eq(&doubled, 1e-12));
    }

    #[test]
    fn empty_rows_produce_zero_rows() {
        let a = Csr::empty(3, 3);
        let b = Mat::filled(3, 2, 7.0);
        let c = spmm(&a, &b);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn plus_times_semiring_matches_plain_spmm() {
        let a = sample_csr();
        let b = sample_dense();
        let plain = spmm(&a, &b);
        let semi = spmm_semiring(&a, &b, &PlusTimes);
        assert!(plain.approx_eq(&semi, 1e-12));
    }

    #[test]
    fn min_plus_semiring_relaxation() {
        // One-step min-plus relaxation from a distance vector.
        let a = Csr::from_coo(Coo::from_entries(2, 2, vec![(0, 1, 1.0), (1, 0, 2.0)]));
        let d = Mat::from_rows(&[&[0.0], &[10.0]]);
        let r = spmm_semiring(&a, &d, &MinPlus);
        // r[0] = min over stored entries: a[0][1] + d[1] = 11
        // r[1] = a[1][0] + d[0] = 2
        assert_eq!(r[(0, 0)], 11.0);
        assert_eq!(r[(1, 0)], 2.0);
    }

    #[test]
    fn max_times_picks_largest_contribution() {
        let a = Csr::from_coo(Coo::from_entries(
            1,
            3,
            vec![(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)],
        ));
        let b = Mat::from_rows(&[&[3.0], &[9.0], &[5.0]]);
        let r = spmm_semiring(&a, &b, &MaxTimes);
        assert_eq!(r[(0, 0)], 9.0);
    }

    #[test]
    fn outer_product_matches_dense() {
        // A is 4x3; we hold the column block A(:, 1..3) as CSR of its
        // transpose, shaped 2x4.
        let a_full = Csr::from_coo(Coo::from_entries(
            4,
            3,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 1, 3.0),
                (3, 0, 4.0),
                (3, 2, 5.0),
            ],
        ));
        let at = a_full.transpose(); // 3x4
        let at_block = at.block(1, 3, 0, 4); // rows 1..3 of Aᵀ = cols 1..3 of A
        let b = Mat::from_fn(2, 2, |i, j| (i + j) as f64 + 1.0);
        let got = outer_product_from_transposed(&at_block, &b);
        let a_cols = a_full.to_dense().block(0, 4, 1, 3);
        let expect = cagnet_dense::matmul(&a_cols, &b);
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn flops_counting() {
        let a = sample_csr();
        assert_eq!(spmm_flops(&a, 3), 2 * 5 * 3);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn spmm_dim_mismatch_panics() {
        let _ = spmm(&sample_csr(), &Mat::zeros(3, 2));
    }

    #[test]
    fn nnz_ranges_tile_rows_exactly() {
        // Skewed nnz: row 0 holds almost everything, plus empty rows.
        let row_ptr = vec![0usize, 90, 90, 95, 95, 100];
        for chunks in 1..=5 {
            let ranges = nnz_balanced_ranges(&row_ptr, chunks);
            assert_eq!(ranges.len(), chunks);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 5);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        // Empty matrix.
        assert_eq!(nnz_balanced_ranges(&[0], 3), vec![0..0]);
    }

    #[test]
    fn specialized_kernels_match_reference_bits() {
        // Every dispatch arm — the fixed-width register kernels, and the
        // column-tiled generic path on either side of the tile width —
        // must be bit-identical to the historical scalar loop: same
        // stored-entry fold order per output element.
        let a = crate::generate::erdos_renyi(300, 6.0, 91);
        for f in [1usize, 3, 8, 16, 32, 63, 64, 65, 128, 130] {
            let b = Mat::from_fn(300, f, |i, j| {
                ((i * 37 + j * 101) % 17) as f64 * 0.125 - 1.0
            });
            let fast = spmm(&a, &b);
            let slow = crate::reference::spmm_reference(&a, &b);
            assert_eq!(fast, slow, "f={f} diverged from the reference kernel");
        }
    }

    #[test]
    fn parallel_spmm_is_bit_identical_to_serial() {
        let a = crate::generate::erdos_renyi(200, 5.0, 17);
        let b = Mat::from_fn(200, 7, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let serial = spmm(&a, &b);
        for threads in [2usize, 3, 4, 8] {
            let got = spmm_with(ParallelCtx::new(threads), &a, &b);
            assert_eq!(got, serial, "{threads} threads diverged");
        }
    }

    #[test]
    fn parallel_semiring_bit_identical() {
        let a = crate::generate::erdos_renyi(150, 4.0, 23);
        let b = Mat::from_fn(150, 5, |i, j| (i + j) as f64 * 0.25);
        let mut serial = Mat::filled(150, 5, MinPlus.zero());
        spmm_semiring_acc(&a, &b, &MinPlus, &mut serial);
        for threads in [2usize, 5] {
            let mut par = Mat::filled(150, 5, MinPlus.zero());
            spmm_semiring_acc_with(ParallelCtx::new(threads), &a, &b, &MinPlus, &mut par);
            assert_eq!(par, serial);
        }
    }
}
