//! Graph and matrix I/O: Matrix Market (`.mtx`) coordinate files and
//! plain edge lists.
//!
//! The paper's datasets (Reddit/Amazon/Protein — the latter from the
//! HipMCL repository) ship in exactly these formats; this module is what
//! lets a user run the reproduction on the real files instead of the
//! seeded stand-ins. Supports the `matrix coordinate
//! real|integer|pattern general|symmetric` subset of the Matrix Market
//! spec, which covers the graph repositories (SuiteSparse, IMG/HipMCL).

use crate::coo::Coo;
use crate::csr::Csr;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from graph/matrix parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural/parse failure with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a Matrix Market coordinate file from any reader.
///
/// Supported header: `%%MatrixMarket matrix coordinate
/// {real|integer|pattern} {general|symmetric}`. Symmetric inputs are
/// expanded (mirrored off-diagonal entries). Pattern inputs get weight
/// 1.0. Indices are 1-based per the spec.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, IoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (hline_no, header) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (no + 1, line);
                }
            }
            None => return Err(parse_err(0, "empty file")),
        }
    };
    let tokens: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(hline_no, "missing %%MatrixMarket matrix header"));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err(hline_no, "only coordinate format is supported"));
    }
    let field = tokens[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(parse_err(hline_no, format!("unsupported field '{field}'")));
    }
    let symmetry = tokens[4].as_str();
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(
            hline_no,
            format!("unsupported symmetry '{symmetry}'"),
        ));
    }

    // Size line (first non-comment line).
    let (sline_no, size_line) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (no + 1, line);
                }
            }
            None => return Err(parse_err(0, "missing size line")),
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(parse_err(sline_no, "size line must be 'rows cols nnz'"));
    }
    let rows: usize = dims[0]
        .parse()
        .map_err(|_| parse_err(sline_no, "bad row count"))?;
    let cols: usize = dims[1]
        .parse()
        .map_err(|_| parse_err(sline_no, "bad col count"))?;
    let nnz: usize = dims[2]
        .parse()
        .map_err(|_| parse_err(sline_no, "bad nnz count"))?;

    let mut coo = Coo::new(rows, cols);
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let expect_vals = field != "pattern";
        if parts.len() < 2 + usize::from(expect_vals) {
            return Err(parse_err(no + 1, "entry needs 'row col [value]'"));
        }
        let r: usize = parts[0]
            .parse()
            .map_err(|_| parse_err(no + 1, "bad row index"))?;
        let c: usize = parts[1]
            .parse()
            .map_err(|_| parse_err(no + 1, "bad col index"))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(no + 1, format!("index ({r},{c}) out of bounds")));
        }
        let v: f64 = if expect_vals {
            parts[2]
                .parse()
                .map_err(|_| parse_err(no + 1, "bad value"))?
        } else {
            1.0
        };
        coo.push(r - 1, c - 1, v);
        if symmetry == "symmetric" && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            format!("size line promised {nnz} entries, file had {seen}"),
        ));
    }
    Ok(Csr::from_coo(coo))
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<Csr, IoError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix as Matrix Market `coordinate real general`.
pub fn write_matrix_market<W: Write>(writer: W, a: &Csr) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by cagnet-sparse")?;
    writeln!(w, "{} {} {}", a.rows(), a.cols(), a.nnz())?;
    for i in 0..a.rows() {
        for (j, v) in a.row_entries(i) {
            writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a Matrix Market file to disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(path: P, a: &Csr) -> Result<(), IoError> {
    write_matrix_market(std::fs::File::create(path)?, a)
}

/// Read a whitespace-separated edge list (`src dst [weight]` per line,
/// `#`-comments allowed). Vertex ids are 0-based; the vertex count is
/// `max id + 1` unless `num_vertices` pins it.
pub fn read_edge_list<R: Read>(reader: R, num_vertices: Option<usize>) -> Result<Csr, IoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_id = 0usize;
    for (no, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() < 2 {
            return Err(parse_err(no + 1, "edge needs 'src dst [weight]'"));
        }
        let s: usize = parts[0]
            .parse()
            .map_err(|_| parse_err(no + 1, "bad source id"))?;
        let d: usize = parts[1]
            .parse()
            .map_err(|_| parse_err(no + 1, "bad destination id"))?;
        let wgt: f64 = match parts.get(2) {
            Some(x) => x.parse().map_err(|_| parse_err(no + 1, "bad weight"))?,
            None => 1.0,
        };
        max_id = max_id.max(s).max(d);
        edges.push((s, d, wgt));
    }
    let n = match num_vertices {
        Some(n) => {
            if max_id >= n && !edges.is_empty() {
                return Err(parse_err(0, format!("vertex id {max_id} >= n = {n}")));
            }
            n
        }
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id + 1
            }
        }
    };
    let mut coo = Coo::new(n, n);
    for (s, d, w) in edges {
        coo.push(s, d, w);
    }
    Ok(Csr::from_coo(coo))
}

/// Read an edge list from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    num_vertices: Option<usize>,
) -> Result<Csr, IoError> {
    read_edge_list(std::fs::File::open(path)?, num_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;

    #[test]
    fn matrix_market_roundtrip() {
        let a = erdos_renyi(50, 4.0, 1);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn parses_symmetric_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a triangle\n\
                    3 3 3\n\
                    2 1\n\
                    3 1\n\
                    3 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 6); // mirrored
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn parses_real_general_with_comments() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    \n\
                    2 3 2\n\
                    1 2 0.5\n\
                    % interior comment\n\
                    2 3 -1.25\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.get(0, 1), 0.5);
        assert_eq!(a.get(1, 2), -1.25);
    }

    #[test]
    fn rejects_bad_headers_and_indices() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(count.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_basics() {
        let text = "# a comment\n0 1\n1 2 2.5\n\n2 0\n";
        let a = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 2.5);
        assert_eq!(a.get(2, 0), 1.0);
    }

    #[test]
    fn edge_list_pinned_vertex_count() {
        let a = read_edge_list("0 1\n".as_bytes(), Some(5)).unwrap();
        assert_eq!(a.rows(), 5);
        assert!(read_edge_list("0 9\n".as_bytes(), Some(5)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cagnet_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        let a = erdos_renyi(30, 3.0, 2);
        write_matrix_market_file(&path, &a).unwrap();
        let back = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let a = read_edge_list("# nothing\n".as_bytes(), None).unwrap();
        assert_eq!(a.rows(), 0);
        assert_eq!(a.nnz(), 0);
    }
}
