//! Synthetic stand-ins for the paper's datasets (Table VI).
//!
//! | Name    | Vertices  | Edges         | Features | Labels |
//! |---------|-----------|---------------|----------|--------|
//! | Reddit  | 232,965   | 114,848,857   | 602      | 41     |
//! | Amazon  | 9,430,088 | 231,594,310   | 300      | 24     |
//! | Protein | 8,745,542 | 1,058,120,062 | 128      | 256    |
//!
//! We cannot ship the original data, and this substrate is a single-node
//! simulator, so each dataset is realized as a seeded symmetric R-MAT graph
//! whose **average degree, feature length, and label count match the paper**
//! while the vertex count is scaled down by a configurable factor. The
//! paper itself replaces Amazon/Protein feature values with random numbers
//! (§V-C), so random features lose nothing. What the relative-cost results
//! depend on — `n`, `nnz = d·n`, `f`, `L`, `P` — is preserved in ratio.

use crate::csr::Csr;
use crate::generate::{permute_symmetric, rmat_symmetric, RmatParams};
use crate::normalize::gcn_normalize;

/// Shape parameters of a dataset in the paper's Table VI sense.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Paper's vertex count.
    pub paper_vertices: usize,
    /// Paper's (directed) edge count.
    pub paper_edges: usize,
    /// Input feature length `f⁰`.
    pub features: usize,
    /// Output label count.
    pub labels: usize,
    /// Hidden-layer width of the 3-layer GCN used in the paper's runs
    /// (16, the Kipf–Welling default).
    pub hidden: usize,
}

impl DatasetSpec {
    /// Paper average degree `d = nnz / n`.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_vertices as f64
    }
}

/// Reddit (Table VI row 1): 232,965 vertices, 114.8M edges, d ≈ 493,
/// f = 602, 41 labels.
pub const REDDIT: DatasetSpec = DatasetSpec {
    name: "reddit",
    paper_vertices: 232_965,
    paper_edges: 114_848_857,
    features: 602,
    labels: 41,
    hidden: 16,
};

/// Amazon (Table VI row 2): 9,430,088 vertices, 231.6M edges, d ≈ 24.6,
/// f = 300, 24 labels.
pub const AMAZON: DatasetSpec = DatasetSpec {
    name: "amazon",
    paper_vertices: 9_430_088,
    paper_edges: 231_594_310,
    features: 300,
    labels: 24,
    hidden: 16,
};

/// Protein (Table VI row 3): 8,745,542 vertices, 1.058B edges, d ≈ 121,
/// f = 128, 256 labels.
pub const PROTEIN: DatasetSpec = DatasetSpec {
    name: "protein",
    paper_vertices: 8_745_542,
    paper_edges: 1_058_120_062,
    features: 128,
    labels: 256,
    hidden: 16,
};

/// All three paper datasets.
pub const ALL: [DatasetSpec; 3] = [REDDIT, AMAZON, PROTEIN];

/// A generated dataset instance: normalized adjacency plus its shape
/// metadata.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which spec this instance realizes.
    pub spec: DatasetSpec,
    /// GCN-normalized adjacency `Â = D^{-1/2}(A+I)D^{-1/2}`, randomly
    /// vertex-permuted (the paper's load-balancing step).
    pub adj: Csr,
    /// Actual vertex count of this (possibly scaled) instance.
    pub vertices: usize,
    /// Average degree of the *raw* generated graph (before self loops).
    pub avg_degree: f64,
}

/// Generate a scaled instance of a dataset spec.
///
/// `scale_down` divides the paper vertex count; the vertex count is then
/// rounded to the nearest power of two for R-MAT, and the edges-per-vertex
/// target is the paper's average degree (capped by `max_degree` to keep
/// single-node instances tractable for Reddit's d≈493).
pub fn generate(spec: &DatasetSpec, scale_down: usize, max_degree: usize, seed: u64) -> Dataset {
    assert!(scale_down >= 1, "scale_down must be >= 1");
    let target_n = (spec.paper_vertices / scale_down).max(64);
    let scale = (usize::BITS - 1 - target_n.leading_zeros()).max(6);
    let d = (spec.paper_avg_degree().round() as usize)
        .clamp(1, max_degree)
        // Symmetrization roughly doubles edges; halve the per-vertex target
        // so the realized average degree tracks the paper's d.
        .div_ceil(2)
        .max(1);
    let raw = rmat_symmetric(scale, d, RmatParams::default(), seed);
    let (permuted, _) = permute_symmetric(&raw, seed ^ 0x5eed);
    let avg_degree = permuted.avg_degree();
    let adj = gcn_normalize(&permuted);
    Dataset {
        spec: *spec,
        vertices: adj.rows(),
        adj,
        avg_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table6() {
        assert_eq!(REDDIT.paper_vertices, 232_965);
        assert_eq!(AMAZON.paper_edges, 231_594_310);
        assert_eq!(PROTEIN.labels, 256);
        assert!((REDDIT.paper_avg_degree() - 493.0).abs() < 1.0);
        assert!((AMAZON.paper_avg_degree() - 24.6).abs() < 0.1);
        assert!((PROTEIN.paper_avg_degree() - 121.0).abs() < 1.0);
    }

    #[test]
    fn generate_scaled_amazon() {
        let ds = generate(&AMAZON, 1024, 64, 1);
        assert_eq!(ds.adj.rows(), ds.vertices);
        assert!(ds.vertices >= 4096, "vertices {} too small", ds.vertices);
        // Average degree in the right ballpark (R-MAT dedup loses some).
        assert!(
            ds.avg_degree > 5.0 && ds.avg_degree < 50.0,
            "avg degree {} out of range",
            ds.avg_degree
        );
        // Normalized adjacency is symmetric with self loops.
        assert!(ds.adj.get(0, 0) > 0.0);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = generate(&REDDIT, 4096, 32, 9);
        let b = generate(&REDDIT, 4096, 32, 9);
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    fn degree_cap_respected_in_target() {
        // Reddit's paper degree is ~493; the cap keeps instance tractable.
        let ds = generate(&REDDIT, 4096, 16, 2);
        // Post-symmetrization realized degree stays within a small factor
        // of the cap.
        assert!(ds.avg_degree <= 2.5 * 16.0);
    }
}
