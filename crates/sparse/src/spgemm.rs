//! Sparse × sparse matrix multiplication (SpGEMM), Gustavson row-wise
//! with a dense accumulator.
//!
//! The paper's 3D algorithm descends from Split-3D-SpGEMM (Azad et al.
//! \[3\], §IV-D); SpGEMM itself is the substrate for multi-hop
//! neighborhoods: `A²` is the 2-hop adjacency, so a "2-hop GCN" layer
//! aggregates over `gcn_normalize(A ⊕ A²)` — one way around shallow
//! receptive fields without extra layers.

use crate::coo::Coo;
use crate::csr::Csr;

/// `C = A · B`, both sparse. Gustavson's algorithm: for each row of `A`,
/// merge the scaled rows of `B` through a dense accumulator (O(cols)
/// scratch reused across rows).
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn spgemm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spgemm: inner dims {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    let mut acc = vec![0.0f64; n];
    let mut mark = vec![false; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<usize> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for i in 0..a.rows() {
        for (k, av) in a.row_entries(i) {
            for (j, bv) in b.row_entries(k) {
                if !mark[j] {
                    mark[j] = true;
                    touched.push(j);
                }
                // lint:allow(scalar-hot-loop): sparse-accumulator SpGEMM; the dense row kernels cannot exploit B's sparsity
                acc[j] += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            // Keep numerical zeros out of the pattern only when exactly
            // cancelled.
            if acc[j] != 0.0 {
                col_idx.push(j);
                vals.push(acc[j]);
            }
            acc[j] = 0.0;
            mark[j] = false;
        }
        touched.clear();
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(a.rows(), n, row_ptr, col_idx, vals)
}

/// Boolean-pattern SpGEMM: `C = pattern(A · B)` with all stored values
/// 1.0 — reachability composition without value growth.
pub fn spgemm_pattern(a: &Csr, b: &Csr) -> Csr {
    let mut c = spgemm(a, b);
    for v in c.vals_mut() {
        *v = 1.0;
    }
    c
}

/// `A ⊕ A² ⊕ ... ⊕ A^k` as a pattern (all weights 1.0): the `k`-hop
/// neighborhood adjacency. `k = 1` returns `pattern(A)`.
pub fn k_hop_pattern(a: &Csr, k: usize) -> Csr {
    assert!(k >= 1, "need at least one hop");
    assert_eq!(a.rows(), a.cols(), "k-hop needs a square adjacency");
    let base = {
        let mut p = a.clone();
        for v in p.vals_mut() {
            *v = 1.0;
        }
        p
    };
    let mut acc = base.clone();
    let mut power = base.clone();
    for _ in 1..k {
        power = spgemm_pattern(&power, &base);
        // Union of patterns via COO merge.
        let mut coo = Coo::new(a.rows(), a.cols());
        for i in 0..acc.rows() {
            for (j, _) in acc.row_entries(i) {
                coo.push(i, j, 1.0);
            }
            for (j, _) in power.row_entries(i) {
                coo.push(i, j, 1.0);
            }
        }
        acc = Csr::from_coo(coo);
        // Clamp merged duplicates back to 1.0.
        for v in acc.vals_mut() {
            *v = 1.0;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;

    #[test]
    fn matches_densified_matmul() {
        for seed in 0..3 {
            let a = erdos_renyi(20, 3.0, seed);
            let b = erdos_renyi(20, 3.0, seed + 10);
            let c = spgemm(&a, &b);
            let dense = cagnet_dense::matmul(&a.to_dense(), &b.to_dense());
            assert!(c.to_dense().approx_eq(&dense, 1e-12), "seed {seed}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = erdos_renyi(15, 2.0, 4);
        let i = Csr::identity(15);
        assert_eq!(spgemm(&a, &i), a);
        assert_eq!(spgemm(&i, &a), a);
    }

    #[test]
    fn rectangular_shapes() {
        let a = erdos_renyi(12, 2.0, 5).block(0, 8, 0, 12); // 8x12
        let b = erdos_renyi(12, 2.0, 6).block(0, 12, 0, 5); // 12x5
        let c = spgemm(&a, &b);
        assert_eq!(c.rows(), 8);
        assert_eq!(c.cols(), 5);
        let dense = cagnet_dense::matmul(&a.to_dense(), &b.to_dense());
        assert!(c.to_dense().approx_eq(&dense, 1e-12));
    }

    #[test]
    fn associativity_on_small_matrices() {
        let a = erdos_renyi(10, 2.0, 7);
        let b = erdos_renyi(10, 2.0, 8);
        let c = erdos_renyi(10, 2.0, 9);
        let left = spgemm(&spgemm(&a, &b), &c);
        let right = spgemm(&a, &spgemm(&b, &c));
        assert!(left.to_dense().approx_eq(&right.to_dense(), 1e-10));
    }

    #[test]
    fn two_hop_pattern_is_path_reachability() {
        // Path 0 -> 1 -> 2 -> 3: 2-hop closure adds 0->2 and 1->3.
        let mut coo = Coo::new(4, 4);
        for i in 0..3 {
            coo.push(i, i + 1, 1.0);
        }
        let a = Csr::from_coo(coo);
        let h2 = k_hop_pattern(&a, 2);
        assert_eq!(h2.get(0, 1), 1.0);
        assert_eq!(h2.get(0, 2), 1.0);
        assert_eq!(h2.get(1, 3), 1.0);
        assert_eq!(h2.get(0, 3), 0.0); // 3 hops away
        let h3 = k_hop_pattern(&a, 3);
        assert_eq!(h3.get(0, 3), 1.0);
    }

    #[test]
    fn k_hop_saturates_on_connected_components() {
        // A ring: with enough hops, every vertex reaches every other.
        let mut coo = Coo::new(6, 6);
        for i in 0..6 {
            coo.push(i, (i + 1) % 6, 1.0);
            coo.push((i + 1) % 6, i, 1.0);
        }
        let a = Csr::from_coo(coo);
        let h = k_hop_pattern(&a, 5);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert_eq!(h.get(i, j), 1.0, "({i},{j}) unreachable");
                }
            }
        }
    }

    #[test]
    fn empty_operands() {
        let a = Csr::empty(4, 6);
        let b = Csr::empty(6, 3);
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 3);
    }
}
