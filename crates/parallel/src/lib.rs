//! Deterministic intra-rank fork-join parallelism.
//!
//! CAGNET's ranks are GPUs driving cuBLAS/cuSPARSE kernels; this
//! simulator's ranks are OS threads driving Rust kernels. A
//! [`ParallelCtx`] gives each rank a *thread budget* for its local
//! compute, mirroring the intra-device parallelism of the real system
//! while keeping the simulation's defining property: **bit-for-bit
//! deterministic results**.
//!
//! Determinism comes from the decomposition, not from synchronization:
//! work is split into contiguous chunks of *output rows*, every chunk is
//! written by exactly one worker, and each worker runs the identical
//! serial per-row code over its chunk. No worker ever accumulates into
//! another worker's rows, so there are no atomics, no reduction trees,
//! and no dependence of floating-point summation order on the thread
//! count. `threads = 1` and `threads = N` produce the same bits.
//!
//! The entry point is [`ParallelCtx::par_rows`]: hand it a flat
//! row-major output buffer and a kernel over a row range, and it splits
//! the buffer into disjoint `&mut` panels via `split_at_mut` (safe
//! Rust, no aliasing) and runs the kernel on scoped threads.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Per-rank thread budget for local compute kernels.
///
/// Cheap to copy; plumb it by value. A budget of 1 (the default) makes
/// every kernel run serially on the calling thread with zero overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelCtx {
    threads: NonZeroUsize,
}

impl Default for ParallelCtx {
    fn default() -> Self {
        ParallelCtx::serial()
    }
}

impl ParallelCtx {
    /// A budget of `threads` (values below 1 are clamped to 1).
    pub fn new(threads: usize) -> Self {
        ParallelCtx {
            threads: NonZeroUsize::new(threads).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The serial context: one thread, no spawning ever.
    pub fn serial() -> Self {
        ParallelCtx::new(1)
    }

    /// A budget matching the machine's available parallelism (1 if it
    /// cannot be queried).
    pub fn available() -> Self {
        ParallelCtx::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Whether kernels will actually fork.
    pub fn is_parallel(&self) -> bool {
        self.threads.get() > 1
    }

    /// Run `kernel` over `rows` rows of a row-major buffer `out`
    /// (`rows * row_len` elements), splitting the rows into at most
    /// `threads` contiguous chunks of at least `min_rows` rows each.
    ///
    /// The kernel receives the *global* row range of its chunk and the
    /// mutable sub-slice of `out` holding exactly those rows. Chunk
    /// boundaries depend only on `(rows, threads, min_rows)` — never on
    /// timing — and each output element is written by exactly one
    /// chunk, so results are identical to `kernel(0..rows, out)` as
    /// long as the kernel computes each row independently of the chunk
    /// it lands in.
    pub fn par_rows<F>(
        &self,
        rows: usize,
        row_len: usize,
        out: &mut [f64],
        min_rows: usize,
        kernel: F,
    ) where
        F: Fn(Range<usize>, &mut [f64]) + Sync,
    {
        assert_eq!(
            out.len(),
            rows * row_len,
            "par_rows: buffer is {} elements, expected {rows} x {row_len}",
            out.len()
        );
        if rows == 0 {
            return;
        }
        let chunks = self.chunk_count(rows, min_rows);
        if chunks <= 1 {
            kernel(0..rows, out);
            return;
        }
        let ranges = split_rows(rows, chunks);
        std::thread::scope(|scope| {
            let kernel = &kernel;
            let mut rest = out;
            let mut panels = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (panel, tail) = rest.split_at_mut((r.end - r.start) * row_len);
                rest = tail;
                panels.push(panel);
            }
            let mut iter = ranges.into_iter().zip(panels);
            // Keep one chunk for the calling thread; fork the rest.
            let Some(local) = iter.next() else {
                return; // chunks > 1 guarantees a first chunk
            };
            for (r, panel) in iter {
                scope.spawn(move || kernel(r, panel));
            }
            kernel(local.0, local.1);
        });
    }

    /// Like [`ParallelCtx::par_rows`], but with caller-chosen chunk
    /// boundaries: `ranges` must be contiguous, ascending, and cover
    /// `0..rows` exactly. This lets kernels balance chunks by *work*
    /// (e.g. CSR nonzeros per row) instead of row count while keeping
    /// the same disjoint-output-rows determinism guarantee — results
    /// never depend on the boundaries, only performance does.
    pub fn par_partitions<F>(
        &self,
        ranges: &[Range<usize>],
        row_len: usize,
        out: &mut [f64],
        kernel: F,
    ) where
        F: Fn(Range<usize>, &mut [f64]) + Sync,
    {
        let rows = ranges.last().map(|r| r.end).unwrap_or(0);
        assert_eq!(
            out.len(),
            rows * row_len,
            "par_partitions: buffer is {} elements, expected {rows} x {row_len}",
            out.len()
        );
        let mut expect = 0;
        for r in ranges {
            assert_eq!(r.start, expect, "par_partitions: ranges must tile 0..rows");
            assert!(r.end >= r.start, "par_partitions: descending range");
            expect = r.end;
        }
        if rows == 0 {
            return;
        }
        if ranges.len() <= 1 {
            kernel(0..rows, out);
            return;
        }
        std::thread::scope(|scope| {
            let kernel = &kernel;
            let mut rest = out;
            let mut panels = Vec::with_capacity(ranges.len());
            for r in ranges {
                let (panel, tail) = rest.split_at_mut((r.end - r.start) * row_len);
                rest = tail;
                panels.push(panel);
            }
            let mut iter = ranges.iter().cloned().zip(panels);
            let Some(local) = iter.next() else {
                return; // ranges.len() > 1 guarantees a first chunk
            };
            for (r, panel) in iter {
                scope.spawn(move || kernel(r, panel));
            }
            kernel(local.0, local.1);
        });
    }

    /// Run `task` once per chunk of `0..n` (no output buffer to split);
    /// chunking is identical to [`ParallelCtx::par_rows`]. Useful when
    /// the kernel owns its outputs some other way (e.g. writes into
    /// per-chunk locals returned via channels is *not* provided — this
    /// is strictly for side-effect-free-per-range work such as
    /// read-only scans).
    pub fn par_ranges<F>(&self, n: usize, min_per_chunk: usize, task: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let chunks = self.chunk_count(n, min_per_chunk);
        if chunks <= 1 {
            task(0..n);
            return;
        }
        let ranges = split_rows(n, chunks);
        std::thread::scope(|scope| {
            let task = &task;
            let mut iter = ranges.into_iter();
            let Some(local) = iter.next() else {
                return; // chunks > 1 guarantees a first chunk
            };
            for r in iter {
                scope.spawn(move || task(r));
            }
            task(local);
        });
    }

    fn chunk_count(&self, rows: usize, min_rows: usize) -> usize {
        if rows == 0 {
            return 0;
        }
        let by_min = if min_rows <= 1 {
            rows
        } else {
            rows.div_ceil(min_rows)
        };
        self.threads.get().min(rows).min(by_min.max(1))
    }
}

/// Split `rows` into `chunks` contiguous balanced ranges (first
/// `rows % chunks` ranges get one extra row). Pure function of its
/// arguments — this is what makes chunking reproducible.
pub fn split_rows(rows: usize, chunks: usize) -> Vec<Range<usize>> {
    assert!(chunks >= 1 && chunks <= rows.max(1));
    let base = rows / chunks;
    let extra = rows % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_is_balanced_and_exhaustive() {
        for rows in [1usize, 2, 7, 64, 1000] {
            for chunks in 1..=rows.min(9) {
                let ranges = split_rows(rows, chunks);
                assert_eq!(ranges.len(), chunks);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, rows);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1, "unbalanced: {ranges:?}");
            }
        }
    }

    #[test]
    fn par_rows_covers_every_row_once() {
        for threads in [1usize, 2, 3, 8] {
            let ctx = ParallelCtx::new(threads);
            let rows = 37;
            let row_len = 5;
            let mut out = vec![0.0f64; rows * row_len];
            ctx.par_rows(rows, row_len, &mut out, 1, |range, panel| {
                assert_eq!(panel.len(), range.len() * row_len);
                for (local, global) in range.enumerate() {
                    for j in 0..row_len {
                        panel[local * row_len + j] += (global * row_len + j) as f64;
                    }
                }
            });
            let expect: Vec<f64> = (0..rows * row_len).map(|x| x as f64).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_rows_empty_is_a_noop() {
        let ctx = ParallelCtx::new(4);
        let mut out: Vec<f64> = vec![];
        ctx.par_rows(0, 7, &mut out, 1, |_r, _p| panic!("no chunks expected"));
    }

    #[test]
    fn min_rows_limits_forking() {
        // 10 rows with min_rows 8 → at most 2 chunks even with 8 threads.
        let ranges = split_rows(10, ParallelCtx::new(8).chunk_count(10, 8));
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn par_ranges_partitions() {
        use std::sync::Mutex;
        let ctx = ParallelCtx::new(3);
        let seen = Mutex::new(vec![0u32; 20]);
        ctx.par_ranges(20, 1, |r| {
            let mut s = seen.lock().unwrap();
            for i in r {
                s[i] += 1;
            }
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn clamps_zero_threads() {
        assert_eq!(ParallelCtx::new(0).threads(), 1);
        assert!(!ParallelCtx::new(0).is_parallel());
        assert!(ParallelCtx::new(2).is_parallel());
    }
}
