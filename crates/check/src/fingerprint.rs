//! Collective fingerprints: what each rank claims it is doing at a
//! rendezvous, and the matching rules that decide whether the
//! participants agree.
//!
//! A fingerprint rides along with the payload deposit, so verification
//! needs no extra synchronization: once the rendezvous is full, every
//! rank sees all fingerprints and checks them against its own. The rules
//! are collective-specific — an all-reduce must agree on the matrix
//! shape, an all-gather legitimately mixes contribution sizes, a
//! send/recv pair must name each other.

use std::fmt;

/// The collective a rank is entering. One variant per public collective
/// of the communicator, plus [`CollectiveKind::Split`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// `barrier()`.
    Barrier,
    /// `bcast(root, data, cat)`.
    Bcast,
    /// `allgather(data, cat)`.
    Allgather,
    /// `allreduce_mat(m, cat)`.
    AllreduceMat,
    /// `allreduce_scalar(x, cat)`.
    AllreduceScalar,
    /// `reduce_scatter_rows(m, cat)`.
    ReduceScatterRows,
    /// `alltoall(parts, cat)`.
    Alltoall,
    /// `gather(root, data, cat)`.
    Gather,
    /// `scatter(root, parts, cat)`.
    Scatter,
    /// `sendrecv(partner, outgoing, cat)`.
    Sendrecv,
    /// `gather_rows(root, data, needed, cat)` — the sparsity-aware
    /// variable-sized row exchange.
    GatherRows,
    /// `split(color)`.
    Split,
    /// `ibcast(root, data, cat)` / `ibcast_shared(...)` — the
    /// nonblocking broadcast (deposit at issue, payload at `wait()`).
    IBcast,
    /// `igather_rows(root, data, needed, cat)` — nonblocking
    /// sparsity-aware row exchange.
    IGatherRows,
    /// `iallreduce_mat(m, cat)` — nonblocking matrix all-reduce.
    IAllreduceMat,
    /// `gather_rows_refresh(...)` — the cached-mode refresh-epoch
    /// variant of [`CollectiveKind::GatherRows`]. A distinct kind so a
    /// rank serving stale cache while a peer refreshes is a fingerprint
    /// mismatch, not a silent divergence.
    GatherRowsRefresh,
    /// `igather_rows_refresh(...)` — nonblocking cached-mode refresh.
    IGatherRowsRefresh,
}

impl CollectiveKind {
    /// Short label used in diagnostics and histories.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::AllreduceMat => "allreduce_mat",
            CollectiveKind::AllreduceScalar => "allreduce_scalar",
            CollectiveKind::ReduceScatterRows => "reduce_scatter_rows",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Sendrecv => "sendrecv",
            CollectiveKind::GatherRows => "gather_rows",
            CollectiveKind::Split => "split",
            CollectiveKind::IBcast => "ibcast",
            CollectiveKind::IGatherRows => "igather_rows",
            CollectiveKind::IAllreduceMat => "iallreduce_mat",
            CollectiveKind::GatherRowsRefresh => "gather_rows_refresh",
            CollectiveKind::IGatherRowsRefresh => "igather_rows_refresh",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Payload geometry a rank declares for a collective. `Unknown` is a
/// wildcard: ranks that cannot know the geometry (a non-root in a
/// broadcast, contributors to a variable-size all-gather) declare it and
/// are exempt from the shape comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Geometry unknown to this rank, or legitimately rank-dependent.
    Unknown,
    /// Total wire words of the payload.
    Words(u64),
    /// Dense matrix dimensions (rows, cols).
    Dims(usize, usize),
    /// Element count (e.g. parts in a scatter/all-to-all).
    Count(usize),
}

impl Shape {
    /// Two declared shapes agree when either is a wildcard or both are
    /// identical.
    pub fn compatible(self, other: Shape) -> bool {
        matches!(self, Shape::Unknown) || matches!(other, Shape::Unknown) || self == other
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Unknown => write!(f, "?"),
            Shape::Words(w) => write!(f, "{w} words"),
            Shape::Dims(r, c) => write!(f, "{r}x{c}"),
            Shape::Count(n) => write!(f, "{n} parts"),
        }
    }
}

/// What one rank claims about the collective it is entering. Roots and
/// partners are **world** ranks so diagnostics across sub-communicators
/// name globally meaningful ids.
#[derive(Clone, Debug, PartialEq)]
pub struct Fingerprint {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Root (world rank) for rooted collectives.
    pub root: Option<usize>,
    /// Send/recv partner (world rank); `None` for bystanders.
    pub partner: Option<usize>,
    /// `std::any::type_name` of the payload element type.
    pub dtype: &'static str,
    /// Declared payload geometry.
    pub shape: Shape,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        let mut sep = "";
        if let Some(r) = self.root {
            write!(f, "root=rank {r}")?;
            sep = ", ";
        }
        if let Some(p) = self.partner {
            write!(f, "{sep}partner=rank {p}")?;
            sep = ", ";
        }
        write!(
            f,
            "{sep}shape={}, dtype={})",
            self.shape,
            short_type(self.dtype)
        )
    }
}

/// Trim a `std::any::type_name` to its final path segments for readable
/// diagnostics (`alloc::vec::Vec<f64>` → `Vec<f64>`).
fn short_type(full: &str) -> String {
    // Drop module paths segment by segment, but keep generic arguments:
    // split on '<' first so we only strip paths outside/inside brackets.
    let mut out = String::with_capacity(full.len());
    let mut segment = String::new();
    for ch in full.chars() {
        match ch {
            ':' => segment.clear(),
            '<' | '>' | ',' | ' ' | '(' | ')' | '[' | ']' | ';' | '&' => {
                out.push_str(&segment);
                segment.clear();
                out.push(ch);
            }
            _ => segment.push(ch),
        }
    }
    out.push_str(&segment);
    out
}

/// A verification failure: which world ranks deviate from the consensus,
/// and a rendered diagnostic listing every participant's claim.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// World ranks whose fingerprints deviate from the majority view.
    pub offenders: Vec<usize>,
    /// Human-readable diagnostic naming each rank and its collective.
    pub message: String,
}

/// Verify that all participants of one rendezvous agree. `participants`
/// pairs each member's **world rank** with its fingerprint, in member
/// order. Returns `Ok(())` when the collective is consistent.
pub fn verify(participants: &[(usize, Fingerprint)]) -> Result<(), Mismatch> {
    if participants.len() <= 1 {
        return Ok(());
    }
    let mut offenders: Vec<usize> = Vec::new();

    // Majority signature over (kind, root, dtype): each rank votes; the
    // most common signature (lowest-rank tiebreak) is the reference.
    type Signature = (CollectiveKind, Option<usize>, &'static str);
    let signature = |fp: &Fingerprint| -> Signature { (fp.kind, fp.root, fp.dtype) };
    let mut best: Option<(Signature, usize)> = None;
    for (_, fp) in participants {
        let sig = signature(fp);
        let count = participants
            .iter()
            .filter(|(_, other)| signature(other) == sig)
            .count();
        let better = match &best {
            None => true,
            Some((_, best_count)) => count > *best_count,
        };
        if better {
            best = Some((sig, count));
        }
    }
    let Some((ref_sig, _)) = best else {
        return Ok(());
    };
    for (rank, fp) in participants {
        if signature(fp) != ref_sig {
            offenders.push(*rank);
        }
    }

    // Shape consensus among ranks that declared one (wildcards exempt).
    let known: Vec<(usize, Shape)> = participants
        .iter()
        .filter(|(_, fp)| fp.shape != Shape::Unknown)
        .map(|(r, fp)| (*r, fp.shape))
        .collect();
    if let Some((_, ref_shape)) = known.first() {
        let majority = known
            .iter()
            .map(|(_, s)| *s)
            .max_by_key(|s| known.iter().filter(|(_, o)| o == s).count())
            .unwrap_or(*ref_shape);
        for (rank, shape) in &known {
            if !shape.compatible(majority) && !offenders.contains(rank) {
                offenders.push(*rank);
            }
        }
    }

    // Send/recv reciprocity: my partner must name me back.
    for (rank, fp) in participants {
        if fp.kind != CollectiveKind::Sendrecv {
            continue;
        }
        let Some(partner) = fp.partner else { continue };
        let reciprocal = participants
            .iter()
            .find(|(r, _)| *r == partner)
            .is_some_and(|(_, pfp)| pfp.partner == Some(*rank));
        if (partner == *rank || !reciprocal) && !offenders.contains(rank) {
            offenders.push(*rank);
        }
    }

    if offenders.is_empty() {
        return Ok(());
    }
    offenders.sort_unstable();
    let mut message = String::from("collective fingerprint mismatch:\n");
    for (rank, fp) in participants {
        let marker = if offenders.contains(rank) {
            "  !! "
        } else {
            "     "
        };
        message.push_str(&format!("{marker}rank {rank} called {fp}\n"));
    }
    message.push_str(&format!(
        "  offending rank(s): {}",
        offenders
            .iter()
            .map(|r| format!("rank {r}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    Err(Mismatch { offenders, message })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(kind: CollectiveKind, root: Option<usize>, shape: Shape) -> Fingerprint {
        Fingerprint {
            kind,
            root,
            partner: None,
            dtype: "f64",
            shape,
        }
    }

    #[test]
    fn matching_collective_passes() {
        let parts = vec![
            (0, fp(CollectiveKind::AllreduceMat, None, Shape::Dims(4, 2))),
            (1, fp(CollectiveKind::AllreduceMat, None, Shape::Dims(4, 2))),
        ];
        assert!(verify(&parts).is_ok());
    }

    #[test]
    fn root_mismatch_names_minority() {
        let parts = vec![
            (0, fp(CollectiveKind::Bcast, Some(0), Shape::Words(10))),
            (1, fp(CollectiveKind::Bcast, Some(0), Shape::Unknown)),
            (2, fp(CollectiveKind::Bcast, Some(2), Shape::Words(10))),
        ];
        let err = verify(&parts).unwrap_err();
        assert_eq!(err.offenders, vec![2]);
        assert!(err.message.contains("rank 2"));
        assert!(err.message.contains("bcast"));
    }

    #[test]
    fn kind_mismatch_detected() {
        let parts = vec![
            (0, fp(CollectiveKind::Barrier, None, Shape::Words(0))),
            (1, fp(CollectiveKind::Barrier, None, Shape::Words(0))),
            (3, fp(CollectiveKind::Allgather, None, Shape::Unknown)),
        ];
        let err = verify(&parts).unwrap_err();
        assert_eq!(err.offenders, vec![3]);
        assert!(err.message.contains("allgather"));
    }

    #[test]
    fn shape_mismatch_detected() {
        let parts = vec![
            (0, fp(CollectiveKind::AllreduceMat, None, Shape::Dims(2, 3))),
            (1, fp(CollectiveKind::AllreduceMat, None, Shape::Dims(3, 2))),
            (2, fp(CollectiveKind::AllreduceMat, None, Shape::Dims(2, 3))),
        ];
        let err = verify(&parts).unwrap_err();
        assert_eq!(err.offenders, vec![1]);
        assert!(err.message.contains("3x2"));
    }

    #[test]
    fn wildcard_shapes_are_exempt() {
        let parts = vec![
            (0, fp(CollectiveKind::Bcast, Some(0), Shape::Words(64))),
            (1, fp(CollectiveKind::Bcast, Some(0), Shape::Unknown)),
        ];
        assert!(verify(&parts).is_ok());
    }

    #[test]
    fn sendrecv_reciprocity_enforced() {
        let sr = |partner: Option<usize>| Fingerprint {
            kind: CollectiveKind::Sendrecv,
            root: None,
            partner,
            dtype: "f64",
            shape: Shape::Unknown,
        };
        // 0 names 1, 1 names 0: fine; 2 and 3 sit out.
        let ok = vec![
            (0, sr(Some(1))),
            (1, sr(Some(0))),
            (2, sr(None)),
            (3, sr(None)),
        ];
        assert!(verify(&ok).is_ok());
        // 0 names 1, but 1 names 3.
        let bad = vec![(0, sr(Some(1))), (1, sr(Some(3))), (3, sr(None))];
        let err = verify(&bad).unwrap_err();
        assert!(err.offenders.contains(&0) || err.offenders.contains(&1));
    }

    #[test]
    fn single_participant_trivially_ok() {
        let parts = vec![(0, fp(CollectiveKind::Barrier, None, Shape::Words(0)))];
        assert!(verify(&parts).is_ok());
    }

    #[test]
    fn short_type_trims_paths() {
        assert_eq!(short_type("alloc::vec::Vec<f64>"), "Vec<f64>");
        assert_eq!(short_type("f64"), "f64");
        assert_eq!(short_type("cagnet_dense::matrix::Mat"), "Mat".to_string());
    }
}
