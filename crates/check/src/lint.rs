//! The repo's custom source-level lint pass, run via
//! `cargo run -p xtask -- lint`.
//!
//! Plain token/line scanning over `crates/*/src` — no `syn`, no rustc
//! plumbing — enforcing five invariants the compiler cannot:
//!
//! * **`unwrap`**: no `.unwrap()` / `.expect(` in library code outside
//!   `#[cfg(test)]` modules and `src/bin/` entrypoints. A panic in a
//!   rank thread poisons the collective state for every peer, so library
//!   code must fail with a named diagnostic (or carry an explicit
//!   `lint:allow(unwrap)` marker with a reason).
//! * **`serial-kernel`**: no direct serial `gemm`/`spmm` calls in
//!   `crates/core/src/dist/` where a `_with` [`ParallelCtx`] variant
//!   exists — otherwise a trainer silently ignores the per-rank thread
//!   budget and the modeled compute times drift from the executed work.
//! * **`uncategorized-collective`**: every collective call site in
//!   `crates/core/src/` — blocking or nonblocking — must name a `Cat::`
//!   cost category in the same call, so the α–β accounting behind every
//!   figure cannot drift.
//! * **`unwaited-pending`**: every function in `crates/core/src/dist/`
//!   that issues a nonblocking collective (`.ibcast(` et al.) must also
//!   `.wait(` on it (or return the `PendingOp` to its caller), and must
//!   never discard one into `let _`. A dropped pending op aborts the run
//!   at runtime; this catches it statically.
//! * **`raw-socket-io`**: comm-layer code (`crates/comm/src/`) never
//!   reads or writes a raw byte stream outside `frame.rs`. Every byte
//!   on the wire must pass through the framed codec — its header
//!   validation (magic, version, length-before-allocation) is the only
//!   defense against truncated or hostile peers, and a bare
//!   `.read_exact(`/`.write_all(` elsewhere would bypass it.
//!
//! Suppress a finding by appending
//! `// lint:allow(<rule>): <reason>` on the offending line or the line
//! above it.
//!
//! [`ParallelCtx`]: https://docs.rs/cagnet-parallel

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which invariant a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in library code outside tests.
    UnwrapInLib,
    /// Serial kernel call in `dist/` where a `_with` variant exists.
    SerialKernelInDist,
    /// Collective call without a `Cat::` cost category.
    UncategorizedCollective,
    /// Nonblocking collective issued in `dist/` but never `.wait(`ed in
    /// the same function (and not returned to the caller), or discarded
    /// into `let _`.
    UnwaitedPending,
    /// Raw byte-stream read/write in `comm/src/` outside `frame.rs`.
    RawSocketIo,
}

impl Rule {
    /// The marker name used in `lint:allow(<name>)` suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapInLib => "unwrap",
            Rule::SerialKernelInDist => "serial-kernel",
            Rule::UncategorizedCollective => "uncategorized-collective",
            Rule::UnwaitedPending => "unwaited-pending",
            Rule::RawSocketIo => "raw-socket-io",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// File the finding is in (as passed to the linter).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Serial kernels that have `_with` ParallelCtx variants; calling these
/// bare inside `dist/` bypasses the per-rank thread budget.
const SERIAL_KERNELS: [&str; 8] = [
    "matmul",
    "matmul_acc",
    "matmul_tn",
    "matmul_tn_acc",
    "matmul_nt",
    "spmm",
    "spmm_acc",
    "spmm_semiring_acc",
];

/// Collective methods that take a `Cat` cost category; `barrier` is
/// exempt (it moves no payload words).
const CATEGORIZED_COLLECTIVES: [&str; 16] = [
    ".bcast(",
    ".bcast_shared(",
    ".gather_rows(",
    ".allgather(",
    ".allgather_shared(",
    ".allreduce_mat(",
    ".allreduce_scalar(",
    ".reduce_scatter_rows(",
    ".alltoall(",
    ".gather(",
    ".scatter(",
    ".sendrecv(",
    ".ibcast(",
    ".ibcast_shared(",
    ".igather_rows(",
    ".iallreduce_mat(",
];

/// Nonblocking collective issue sites — each returns a `PendingOp` that
/// must be `.wait(`ed on every control-flow path.
const PENDING_ISSUERS: [&str; 4] = [
    ".ibcast(",
    ".ibcast_shared(",
    ".igather_rows(",
    ".iallreduce_mat(",
];

/// Raw byte-stream calls that belong only in `frame.rs` — anywhere
/// else in `comm/src/` they would move wire bytes around the framed
/// codec's header validation.
const RAW_STREAM_CALLS: [&str; 7] = [
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".write(",
    ".write_all(",
    ".write_vectored(",
];

/// Strip line comments and blank out string-literal contents so needle
/// matching never fires on comments, doc text, or message strings.
fn sanitize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    let mut escaped = false;
    while let Some(c) = chars.next() {
        if in_string {
            if escaped {
                escaped = false;
                out.push(' ');
            } else if c == '\\' {
                escaped = true;
                out.push(' ');
            } else if c == '"' {
                in_string = false;
                out.push('"');
            } else {
                out.push(' ');
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Does `line` (raw, comments included) carry a suppression marker for
/// `rule`?
fn has_allow(line: &str, rule: Rule) -> bool {
    line.contains(&format!("lint:allow({})", rule.name()))
}

/// Find a bare call of `name(` in sanitized code: the character before
/// the name must not be part of an identifier (so `charge_spmm(` does
/// not match `spmm`), and the name must be followed directly by `(`
/// (so `spmm_with(` does not match either).
fn finds_bare_call(code: &str, name: &str) -> bool {
    let needle = format!("{name}(");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let at = from + pos;
        let bounded = at == 0 || {
            let prev = bytes[at - 1] as char;
            !(prev.is_ascii_alphanumeric() || prev == '_')
        };
        if bounded {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Scan forward from the `(` opening a call for a balanced close,
/// checking whether the call text mentions `Cat::`. `lines` are the
/// sanitized lines of the file; the call starts in `lines[start]` at
/// byte `open`.
fn call_mentions_cat(lines: &[String], start: usize, open: usize) -> bool {
    let mut depth = 0i32;
    let mut text = String::new();
    for (i, line) in lines.iter().enumerate().skip(start).take(30) {
        let slice = if i == start {
            &line[open..]
        } else {
            line.as_str()
        };
        for c in slice.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return text.contains("Cat::");
                    }
                }
                _ => {}
            }
            text.push(c);
        }
        text.push('\n');
    }
    // Unbalanced within the window: be conservative and accept.
    true
}

/// Lint a single file's content. `path` is used for scoping decisions
/// (library vs binary, `dist/`, `core/src/`) and for reporting.
pub fn lint_file(path: &Path, content: &str) -> Vec<Violation> {
    let norm = path.to_string_lossy().replace('\\', "/");
    if !norm.ends_with(".rs") {
        return Vec::new();
    }
    let is_bin = norm.contains("/src/bin/");
    let is_dist = norm.contains("core/src/dist/");
    let is_core = norm.contains("core/src/");
    let is_comm_nonframe = norm.contains("comm/src/") && !norm.ends_with("frame.rs");

    let raw: Vec<&str> = content.lines().collect();
    let sanitized: Vec<String> = raw.iter().map(|l| sanitize(l)).collect();

    // Mark lines belonging to #[cfg(test)] items (trailing test mods).
    let mut in_test = vec![false; raw.len()];
    let mut i = 0;
    while i < raw.len() {
        if raw[i].trim_start().starts_with("#[cfg(test)]") {
            // Skip until the braces opened after this attribute close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < raw.len() {
                in_test[j] = true;
                for c in sanitized[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    let mut out = Vec::new();
    let allowed = |idx: usize, rule: Rule| {
        has_allow(raw[idx], rule) || (idx > 0 && has_allow(raw[idx - 1], rule))
    };
    for (idx, code) in sanitized.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let report = |rule: Rule| Violation {
            file: path.to_path_buf(),
            line: idx + 1,
            rule,
            excerpt: raw[idx].trim().to_string(),
        };

        // Rule 1: unwrap/expect in library code.
        if !is_bin
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(idx, Rule::UnwrapInLib)
        {
            out.push(report(Rule::UnwrapInLib));
        }

        // Rule 2: serial kernels in dist/.
        if is_dist
            && SERIAL_KERNELS.iter().any(|k| finds_bare_call(code, k))
            && !allowed(idx, Rule::SerialKernelInDist)
        {
            out.push(report(Rule::SerialKernelInDist));
        }

        // Rule 3: collectives must carry a Cat:: category.
        if is_core && !allowed(idx, Rule::UncategorizedCollective) {
            for needle in CATEGORIZED_COLLECTIVES {
                let mut from = 0;
                while let Some(pos) = code[from..].find(needle) {
                    let open = from + pos + needle.len() - 1;
                    if !call_mentions_cat(&sanitized, idx, open) {
                        out.push(report(Rule::UncategorizedCollective));
                    }
                    from = from + pos + needle.len();
                }
            }
        }

        // Rule 5: raw stream I/O in comm/ outside the framed codec.
        if is_comm_nonframe
            && RAW_STREAM_CALLS.iter().any(|n| code.contains(n))
            && !allowed(idx, Rule::RawSocketIo)
        {
            out.push(report(Rule::RawSocketIo));
        }

        // Rule 4 (statement form): a PendingOp bound to `_` is dropped
        // immediately and aborts the run; catch it statically.
        if is_dist
            && PENDING_ISSUERS.iter().any(|n| code.contains(n))
            && !code.contains(".wait(")
            && {
                let t = code.trim_start();
                t.starts_with("let _ =") || t.starts_with("let _=")
            }
            && !allowed(idx, Rule::UnwaitedPending)
        {
            out.push(report(Rule::UnwaitedPending));
        }
    }

    // Rule 4 (function form): a function that issues a nonblocking
    // collective must `.wait(` on it somewhere in its body, unless it
    // hands the `PendingOp` back to its caller (the signature mentions
    // `PendingOp`).
    if is_dist {
        let mut i = 0;
        while i < sanitized.len() {
            let t = sanitized[i].trim_start();
            if in_test[i] || !(t.starts_with("fn ") || sanitized[i].contains(" fn ")) {
                i += 1;
                continue;
            }
            // Header runs to the opening brace (or `;` for a bodyless
            // declaration).
            let mut header = String::new();
            let mut open_line = None;
            let mut j = i;
            while j < sanitized.len() {
                header.push_str(&sanitized[j]);
                header.push('\n');
                if sanitized[j].contains('{') {
                    open_line = Some(j);
                    break;
                }
                if sanitized[j].contains(';') {
                    break;
                }
                j += 1;
            }
            let Some(start) = open_line else {
                i = j + 1;
                continue;
            };
            // Body span via brace counting from the opening line.
            let mut depth = 0i32;
            let mut end = start;
            'scan: for (k, line) in sanitized.iter().enumerate().skip(start) {
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = k;
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                end = k;
            }
            // `Fetch` wraps a `PendingOp` (dense or sparse stage fetch)
            // and forwards `.wait(` — returning it hands the obligation
            // to the caller just like returning the op itself.
            let returns_pending = header.contains("PendingOp") || header.contains("Fetch<");
            let mut first_issue = None;
            let mut has_wait = false;
            for (k, body_line) in sanitized.iter().enumerate().take(end + 1).skip(start) {
                if first_issue.is_none() && PENDING_ISSUERS.iter().any(|n| body_line.contains(n)) {
                    first_issue = Some(k);
                }
                if body_line.contains(".wait(") {
                    has_wait = true;
                }
            }
            if let Some(k) = first_issue {
                if !returns_pending && !has_wait && !allowed(k, Rule::UnwaitedPending) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: k + 1,
                        rule: Rule::UnwaitedPending,
                        excerpt: raw[k].trim().to_string(),
                    });
                }
            }
            i = end + 1;
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under `repo_root`. Paths in the
/// returned violations are relative to `repo_root`.
pub fn lint_tree(repo_root: &Path) -> io::Result<Vec<Violation>> {
    let crates_dir = repo_root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let content = fs::read_to_string(&file)?;
        let rel = file.strip_prefix(repo_root).unwrap_or(&file).to_path_buf();
        out.extend(lint_file(&rel, &content));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, content: &str) -> Vec<Violation> {
        lint_file(Path::new(path), content)
    }

    const LIB: &str = "crates/foo/src/lib.rs";

    #[test]
    fn flags_unwrap_in_lib() {
        let v = lint(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn flags_expect_in_lib() {
        let v = lint(LIB, "let g = m.lock().expect(\"poisoned\");\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn allow_marker_suppresses() {
        let same = "let x = o.unwrap(); // lint:allow(unwrap): infallible here\n";
        assert!(lint(LIB, same).is_empty());
        let above = "// lint:allow(unwrap): checked by caller\nlet x = o.unwrap();\n";
        assert!(lint(LIB, above).is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let src = "fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint(LIB, src).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_linted() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn bins_are_exempt_from_unwrap() {
        assert!(lint(
            "crates/bench/src/bin/runner.rs",
            "let p: usize = arg.parse().unwrap();\n"
        )
        .is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_count() {
        assert!(lint(LIB, "// don't .unwrap() in lib code\n").is_empty());
        assert!(lint(LIB, "let s = \"never .unwrap() it\";\n").is_empty());
        assert!(lint(LIB, "/// docs about .expect( behavior\n").is_empty());
    }

    #[test]
    fn flags_serial_kernel_in_dist() {
        let path = "crates/core/src/dist/onedim.rs";
        let v = lint(path, "let z = matmul(&t, &w);\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SerialKernelInDist);
        // _with variants and prefixed names are fine.
        assert!(lint(path, "let z = matmul_with(ctx.parallel(), &t, &w);\n").is_empty());
        assert!(lint(path, "spmm_acc_with(ctx.parallel(), &a, &h, &mut t);\n").is_empty());
        assert!(lint(path, "ctx.charge_spmm(a.nnz(), a.rows(), f);\n").is_empty());
    }

    #[test]
    fn serial_kernel_outside_dist_is_fine() {
        assert!(lint("crates/core/src/serial.rs", "let z = matmul(&t, &w);\n").is_empty());
    }

    #[test]
    fn flags_uncategorized_collective() {
        let path = "crates/core/src/dist/onedim.rs";
        let v = lint(path, "let hj = ctx.world.bcast(j, payload);\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
    }

    #[test]
    fn categorized_collective_passes_across_lines() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "let hj = ctx.world.bcast(\n    j,\n    payload,\n    Cat::DenseComm,\n);\n";
        assert!(lint(path, src).is_empty());
        assert!(lint(path, "ctx.world.allreduce_scalar(x, Cat::DenseComm);\n").is_empty());
    }

    #[test]
    fn flags_uncategorized_shared_and_row_collectives() {
        let path = "crates/core/src/dist/onedim.rs";
        let v = lint(path, "let hj = ctx.world.bcast_shared(j, payload);\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        let v = lint(
            path,
            "let hj = ctx.world.gather_rows(j, payload, &needed);\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        // Categorized call sites pass.
        assert!(lint(
            path,
            "let hj = ctx.world.bcast_shared(j, payload, Cat::DenseComm);\n"
        )
        .is_empty());
        assert!(lint(
            path,
            "let hj = ctx.world.gather_rows(j, payload, &needed, Cat::DenseComm);\n"
        )
        .is_empty());
    }

    #[test]
    fn barrier_needs_no_category() {
        assert!(lint("crates/core/src/dist/onedim.rs", "ctx.world.barrier();\n").is_empty());
    }

    #[test]
    fn collectives_outside_core_are_fine() {
        assert!(lint("crates/comm/src/comm.rs", "self.bcast(root, data);\n").is_empty());
    }

    #[test]
    fn flags_uncategorized_nonblocking_collectives() {
        let path = "crates/core/src/dist/onedim.rs";
        for call in [
            "let op = ctx.world.ibcast(j, payload);\n",
            "let op = ctx.world.ibcast_shared(j, payload);\n",
            "let op = ctx.world.igather_rows(j, payload, &needed);\n",
            "let op = ctx.world.iallreduce_mat(&m);\n",
        ] {
            // Wrap in a fn with a wait so only the Cat rule fires.
            let src = format!("fn f() {{\n{call}op.wait();\n}}\n");
            let v = lint(path, &src);
            assert_eq!(v.len(), 1, "for {call}");
            assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        }
        assert!(lint(
            path,
            "fn f() {\nlet op = ctx.world.ibcast_shared(j, payload, Cat::DenseComm);\nop.wait();\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn ibcast_needle_does_not_match_ibcast_shared() {
        // `.ibcast(` must not fire on `.ibcast_shared(` call sites.
        let path = "crates/core/src/dist/onedim.rs";
        let src =
            "fn f() {\nlet op = w.ibcast_shared(j, p, Cat::DenseComm);\nlet x = op.wait();\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn flags_issue_without_wait_in_fn() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn forward(&self) {\n    let op = ctx.world.ibcast_shared(j, p, Cat::DenseComm);\n    compute();\n}\n";
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwaitedPending);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn issue_with_wait_in_fn_passes() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn forward(&self) {\n    let op = ctx.world.ibcast_shared(j, p, Cat::DenseComm);\n    compute();\n    let h = op.wait();\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn issue_helper_returning_pending_is_exempt() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn issue_fetch<'c>(&self, ctx: &'c Ctx) -> PendingOp<'c, Arc<Mat>> {\n    ctx.world.ibcast_shared(j, p, Cat::DenseComm)\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn issue_helper_returning_fetch_is_exempt() {
        // Stage-fetch helpers wrap the op in a `Fetch` enum; returning it
        // hands the wait obligation to the caller.
        let path = "crates/core/src/dist/twodim.rs";
        let src = "fn issue_fetch<'c>(&self, ctx: &'c Ctx) -> super::Fetch<'c> {\n    super::Fetch::Sparse(ctx.world.igather_rows(j, p, &needed, e, Cat::DenseComm))\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn allgather_shared_requires_cat() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() {\n    let parts = self.grid.row.allgather_shared(z.clone());\n}\n";
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        assert!(lint(
            path,
            "fn f() {\n    let parts = self.grid.row.allgather_shared(z.clone(), Cat::DenseComm);\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_pending_discarded_into_underscore() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() {\n    let _ = ctx.world.iallreduce_mat(&m, Cat::DenseComm);\n    other.wait();\n}\n";
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwaitedPending);
        // Immediately waiting makes the discard fine.
        assert!(lint(
            path,
            "fn f() {\n    let _ = ctx.world.iallreduce_mat(&m, Cat::DenseComm).wait();\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn unwaited_pending_outside_dist_is_fine() {
        let src = "fn f() {\n    let op = self.ibcast_shared(j, p, Cat::DenseComm);\n}\n";
        assert!(lint("crates/comm/src/comm.rs", src).is_empty());
    }

    #[test]
    fn flags_raw_socket_io_in_comm() {
        let path = "crates/comm/src/proc.rs";
        for call in [
            "stream.read_exact(&mut header)?;\n",
            "let n = stream.read(&mut buf)?;\n",
            "stream.read_to_end(&mut body)?;\n",
            "writer.write_all(&bytes)?;\n",
            "let n = writer.write(&bytes)?;\n",
        ] {
            let v = lint(path, call);
            assert_eq!(v.len(), 1, "for {call}");
            assert_eq!(v[0].rule, Rule::RawSocketIo);
        }
    }

    #[test]
    fn frame_rs_may_do_raw_io() {
        let src = "r.read_exact(&mut header)?;\nw.write_all(&body)?;\n";
        assert!(lint("crates/comm/src/frame.rs", src).is_empty());
    }

    #[test]
    fn raw_io_outside_comm_is_fine() {
        assert!(lint(
            "crates/bench/src/lib.rs",
            "file.write_all(json.as_bytes())?;\n"
        )
        .is_empty());
    }

    #[test]
    fn framed_calls_in_comm_pass() {
        let path = "crates/comm/src/proc.rs";
        let src = "let frame = frame::read_frame(&mut stream)?;\nframe::write_frame(&mut w, kind, &body)?;\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn raw_socket_io_allow_marker_suppresses() {
        let path = "crates/comm/src/proc.rs";
        let src =
            "// lint:allow(raw-socket-io): probing liveness, no payload\nstream.read(&mut [0u8; 1])?;\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn raw_socket_io_in_comm_tests_is_exempt() {
        let path = "crates/comm/src/proc.rs";
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { s.read_exact(&mut b).unwrap(); }\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn unwaited_pending_allow_marker_suppresses() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() {\n    // lint:allow(unwaited-pending): waited by caller via handle registry\n    let op = ctx.world.ibcast_shared(j, p, Cat::DenseComm);\n    stash(op);\n}\n";
        assert!(lint(path, src).is_empty());
    }
}
