//! Wait-for-graph deadlock analysis over blocked ranks.
//!
//! The runtime reports, per world rank, whether it is running, blocked
//! at a collective rendezvous (and on which communicator slot), done, or
//! panicked. This module is the pure half: given that snapshot it
//! decides whether the system is deadlocked (no rank can ever make
//! progress), extracts the wait-for edges and any cycle, and renders a
//! report that names every blocked rank's collective and dumps each
//! rank's last-N collective history.

use crate::fingerprint::CollectiveKind;
use std::fmt;

/// Identity of one rendezvous: communicator id plus per-communicator
/// call sequence number (the "epoch" of the collective).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId {
    /// Communicator id.
    pub comm: u64,
    /// Call sequence number on that communicator.
    pub seq: u64,
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comm {} seq {}", self.comm, self.seq)
    }
}

/// Where a blocked rank is waiting.
#[derive(Clone, Debug, PartialEq)]
pub struct WaitSlot {
    /// The rendezvous it is parked on.
    pub slot: SlotId,
    /// The collective it called.
    pub kind: CollectiveKind,
    /// World ranks of all members of that communicator.
    pub members: Vec<usize>,
}

/// Lifecycle phase of one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankPhase {
    /// Executing user code between collectives.
    Running,
    /// Parked at a collective rendezvous.
    Blocked,
    /// Rank closure returned normally.
    Done,
    /// Rank closure panicked.
    Panicked,
}

/// One rank's state as seen by the watchdog.
#[derive(Clone, Debug, PartialEq)]
pub struct RankSnapshot {
    /// Lifecycle phase.
    pub phase: RankPhase,
    /// Present iff `phase == Blocked`.
    pub wait: Option<WaitSlot>,
}

impl RankSnapshot {
    /// A running rank (initial state).
    pub fn running() -> Self {
        RankSnapshot {
            phase: RankPhase::Running,
            wait: None,
        }
    }
}

/// One entry of a rank's collective history ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistoryEntry {
    /// The rendezvous.
    pub slot: SlotId,
    /// The collective called.
    pub kind: CollectiveKind,
    /// The rank's modeled clock at entry (seconds).
    pub clock: f64,
}

impl fmt::Display for HistoryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} (t={:.3e}s)", self.kind, self.slot, self.clock)
    }
}

fn blocked_on(snap: &RankSnapshot, slot: SlotId) -> bool {
    snap.phase == RankPhase::Blocked && snap.wait.as_ref().is_some_and(|w| w.slot == slot)
}

/// True when the system can never make progress again: every rank is
/// done or blocked, at least one is blocked, and no blocked rendezvous
/// can still complete (each is missing at least one member that is done
/// or parked on a *different* rendezvous).
///
/// The caller is responsible for sampling this over a *stable* snapshot
/// (unchanged across a few polls) so momentary states — a rank between
/// registering and depositing, or a completed slot whose waiters have
/// not woken yet — are never misread as deadlock.
pub fn is_quiescent_deadlock(snapshot: &[RankSnapshot]) -> bool {
    let mut any_blocked = false;
    for s in snapshot {
        match s.phase {
            RankPhase::Blocked => any_blocked = true,
            RankPhase::Done => {}
            RankPhase::Running | RankPhase::Panicked => return false,
        }
    }
    if !any_blocked {
        return false;
    }
    // No blocked slot may be completable: a slot with every member
    // parked on it is about to complete, so the system is not stuck.
    for s in snapshot {
        let Some(wait) = &s.wait else { continue };
        let completable = wait.members.iter().all(|&m| {
            snapshot
                .get(m)
                .is_some_and(|other| blocked_on(other, wait.slot))
        });
        if completable {
            return false;
        }
    }
    true
}

/// Wait-for edges: each blocked rank paired with the sorted member ranks
/// it is still waiting on (members not parked on the same rendezvous).
pub fn wait_edges(snapshot: &[RankSnapshot]) -> Vec<(usize, Vec<usize>)> {
    let mut edges = Vec::new();
    for (rank, s) in snapshot.iter().enumerate() {
        let Some(wait) = &s.wait else { continue };
        if s.phase != RankPhase::Blocked {
            continue;
        }
        let mut missing: Vec<usize> = wait
            .members
            .iter()
            .copied()
            .filter(|&m| {
                m != rank
                    && !snapshot
                        .get(m)
                        .is_some_and(|other| blocked_on(other, wait.slot))
            })
            .collect();
        missing.sort_unstable();
        edges.push((rank, missing));
    }
    edges
}

/// Find one cycle in the wait-for graph, as a rank sequence with the
/// start repeated at the end (`[0, 1, 3, 0]`). `None` for pure stalls
/// (e.g. an orphaned barrier waiting on a rank that already exited).
pub fn find_cycle(edges: &[(usize, Vec<usize>)]) -> Option<Vec<usize>> {
    let successor = |r: usize| -> &[usize] {
        edges
            .iter()
            .find(|(rank, _)| *rank == r)
            .map(|(_, m)| m.as_slice())
            .unwrap_or(&[])
    };
    for &(start, _) in edges {
        // Walk successors depth-first, tracking the path for cycle
        // extraction.
        let mut path = vec![start];
        let mut stack = vec![(start, 0usize)];
        let mut visited = vec![start];
        while let Some((node, child)) = stack.pop() {
            let succ = successor(node);
            if child >= succ.len() {
                path.pop();
                continue;
            }
            stack.push((node, child + 1));
            let next = succ[child];
            if let Some(pos) = path.iter().position(|&p| p == next) {
                let mut cycle: Vec<usize> = path[pos..].to_vec();
                cycle.push(next);
                return Some(cycle);
            }
            if !visited.contains(&next) {
                visited.push(next);
                path.push(next);
                stack.push((next, 0));
            }
        }
    }
    None
}

/// Render the full deadlock report: per-rank wait states, the wait-for
/// edges, any cycle, and each rank's last-N collective history.
pub fn deadlock_report(snapshot: &[RankSnapshot], histories: &[Vec<HistoryEntry>]) -> String {
    let blocked = snapshot
        .iter()
        .filter(|s| s.phase == RankPhase::Blocked)
        .count();
    let mut out = format!(
        "deadlock detected: {blocked}/{} rank(s) blocked with no possible progress\n",
        snapshot.len()
    );
    let edges = wait_edges(snapshot);
    for (rank, s) in snapshot.iter().enumerate() {
        match (&s.phase, &s.wait) {
            (RankPhase::Blocked, Some(w)) => {
                let missing = edges
                    .iter()
                    .find(|(r, _)| *r == rank)
                    .map(|(_, m)| m.as_slice())
                    .unwrap_or(&[]);
                out.push_str(&format!(
                    "  rank {rank}: blocked in {} on {} (members {:?}), waiting on rank(s) {:?}\n",
                    w.kind, w.slot, w.members, missing
                ));
            }
            (RankPhase::Done, _) => out.push_str(&format!("  rank {rank}: done\n")),
            (RankPhase::Panicked, _) => out.push_str(&format!("  rank {rank}: panicked\n")),
            _ => out.push_str(&format!("  rank {rank}: running\n")),
        }
    }
    if let Some(cycle) = find_cycle(&edges) {
        let rendered: Vec<String> = cycle.iter().map(|r| format!("rank {r}")).collect();
        out.push_str(&format!("  wait cycle: {}\n", rendered.join(" -> ")));
    }
    if histories.iter().any(|h| !h.is_empty()) {
        out.push_str("  recent collectives per rank (oldest first):\n");
        for (rank, h) in histories.iter().enumerate() {
            if h.is_empty() {
                continue;
            }
            let entries: Vec<String> = h.iter().map(|e| e.to_string()).collect();
            out.push_str(&format!("    rank {rank}: {}\n", entries.join(" -> ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked(slot: SlotId, kind: CollectiveKind, members: Vec<usize>) -> RankSnapshot {
        RankSnapshot {
            phase: RankPhase::Blocked,
            wait: Some(WaitSlot {
                slot,
                kind,
                members,
            }),
        }
    }

    fn done() -> RankSnapshot {
        RankSnapshot {
            phase: RankPhase::Done,
            wait: None,
        }
    }

    const A: SlotId = SlotId { comm: 1, seq: 0 };
    const B: SlotId = SlotId { comm: 2, seq: 0 };

    #[test]
    fn completable_slot_is_not_deadlock() {
        // Both ranks parked on the same slot: it is about to complete.
        let snap = vec![
            blocked(A, CollectiveKind::Barrier, vec![0, 1]),
            blocked(A, CollectiveKind::Barrier, vec![0, 1]),
        ];
        assert!(!is_quiescent_deadlock(&snap));
    }

    #[test]
    fn running_rank_means_no_deadlock() {
        let snap = vec![
            blocked(A, CollectiveKind::Barrier, vec![0, 1]),
            RankSnapshot::running(),
        ];
        assert!(!is_quiescent_deadlock(&snap));
    }

    #[test]
    fn orphaned_barrier_is_deadlock() {
        let snap = vec![blocked(A, CollectiveKind::Barrier, vec![0, 1]), done()];
        assert!(is_quiescent_deadlock(&snap));
        let edges = wait_edges(&snap);
        assert_eq!(edges, vec![(0, vec![1])]);
        assert!(find_cycle(&edges).is_none());
        let report = deadlock_report(&snap, &[vec![], vec![]]);
        assert!(report.contains("rank 0: blocked in barrier"));
        assert!(report.contains("rank 1: done"));
    }

    #[test]
    fn cross_communicator_cycle_detected() {
        // 0 waits for 1 on slot A; 1 waits for 0 on slot B.
        let snap = vec![
            blocked(A, CollectiveKind::Barrier, vec![0, 1]),
            blocked(B, CollectiveKind::Bcast, vec![0, 1]),
        ];
        assert!(is_quiescent_deadlock(&snap));
        let edges = wait_edges(&snap);
        let cycle = find_cycle(&edges).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        let report = deadlock_report(&snap, &[vec![], vec![]]);
        assert!(report.contains("wait cycle"));
    }

    #[test]
    fn four_rank_ring_cycle() {
        // rows {0,1} comm 10, {2,3} comm 11; cols {0,2} comm 20, {1,3}
        // comm 21. 0 in row, 1 in col, 2 in col, 3 in row: 4-cycle.
        let row0 = SlotId { comm: 10, seq: 0 };
        let row1 = SlotId { comm: 11, seq: 0 };
        let col0 = SlotId { comm: 20, seq: 0 };
        let col1 = SlotId { comm: 21, seq: 0 };
        let snap = vec![
            blocked(row0, CollectiveKind::Barrier, vec![0, 1]),
            blocked(col1, CollectiveKind::Barrier, vec![1, 3]),
            blocked(col0, CollectiveKind::Barrier, vec![0, 2]),
            blocked(row1, CollectiveKind::Barrier, vec![2, 3]),
        ];
        assert!(is_quiescent_deadlock(&snap));
        let cycle = find_cycle(&wait_edges(&snap)).expect("ring cycle");
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn history_appears_in_report() {
        let snap = vec![blocked(A, CollectiveKind::Allgather, vec![0, 1]), done()];
        let hist = vec![
            vec![HistoryEntry {
                slot: A,
                kind: CollectiveKind::Bcast,
                clock: 1.5e-5,
            }],
            vec![],
        ];
        let report = deadlock_report(&snap, &hist);
        assert!(report.contains("recent collectives"));
        assert!(report.contains("bcast@comm 1 seq 0"));
    }
}
