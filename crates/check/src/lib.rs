//! # cagnet-check
//!
//! Verification subsystem for the simulated distributed runtime, in the
//! spirit of MPI correctness checkers like MUST but built into our own
//! simulator. Three layers:
//!
//! 1. **Checked collectives** ([`fingerprint`]): every rank publishes a
//!    fingerprint of the collective it is entering (kind, root, payload
//!    type, shape); the communicator verifies all participants agree
//!    before proceeding, turning silent corruption (e.g. two ranks
//!    broadcasting with different roots) into an immediate per-rank
//!    diagnostic.
//! 2. **Deadlock detection** ([`waitgraph`]): pure analysis of a wait-for
//!    graph over blocked ranks — cycle/stall detection plus a report that
//!    dumps each rank's last-N collective history, so cross-communicator
//!    ordering bugs are caught in milliseconds instead of by CI timeout.
//! 3. **Static analysis** ([`lint`]): a token-level source analyzer
//!    (own lexer + brace-aware item model, no rustc plumbing) enforcing
//!    repo invariants clippy cannot express: no `unwrap`/`expect` in
//!    library code outside tests, no serial kernel calls where a
//!    `_with` ParallelCtx variant exists, every collective call site
//!    paired with a cost-model category — plus three semantic analyses
//!    (sibling branches issue identical collective sequences, Mutex
//!    acquisition orders are acyclic, every `FrameKind` variant is
//!    dispatched). Findings carry severities and byte spans, render to
//!    JSON, and gate against a committed baseline file.
//!
//! This crate is dependency-free and is depended on *by* `cagnet-comm`
//! (never the reverse): the runtime feeds it plain data, it returns
//! verdicts and diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod lint;
pub mod waitgraph;

pub use fingerprint::{CollectiveKind, Fingerprint, Mismatch, Shape};
pub use waitgraph::{HistoryEntry, RankPhase, RankSnapshot, SlotId, WaitSlot};

/// Whether the runtime verifies collectives and runs the deadlock
/// watchdog. Off by default; [`CheckMode::from_env`] reads the
/// `CAGNET_CHECK` environment variable so CI can run the whole test suite
/// checked without code changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckMode {
    /// No fingerprint verification, no watchdog. Collective mismatches
    /// surface only through downcast panics or the wait timeout.
    #[default]
    Off,
    /// Fingerprint every collective, verify participants match, and run
    /// the wait-for-graph watchdog. Modeled costs, traces, and results
    /// are bit-identical to [`CheckMode::Off`] on correct programs.
    On,
}

impl CheckMode {
    /// True when checking is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, CheckMode::On)
    }

    /// Read the mode from the `CAGNET_CHECK` environment variable:
    /// `1`, `true`, or `on` (case-insensitive) enable it.
    pub fn from_env() -> Self {
        match std::env::var("CAGNET_CHECK") {
            Ok(v) if matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on") => {
                CheckMode::On
            }
            _ => CheckMode::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert_eq!(CheckMode::default(), CheckMode::Off);
        assert!(!CheckMode::Off.is_on());
        assert!(CheckMode::On.is_on());
    }
}
