//! Lock-order analysis over `crates/comm/src`.
//!
//! Builds the Mutex acquisition graph: which lock is acquired while
//! which other lock is held — across `diag.rs`
//! (states/history/first_panic/abort), `proc.rs` (hub state, writer,
//! rx, pending, children) and the rest of the comm layer — and flags
//!
//! * cyclic acquisition orders (two call paths taking the same pair of
//!   locks in opposite orders can deadlock under the right
//!   interleaving),
//! * re-acquisition of a lock already held (std `Mutex` is not
//!   reentrant — this deadlocks deterministically), and
//! * any `.lock().unwrap()` / `.lock().expect(` — comm locks must go
//!   through the blessed poison-recovering helpers
//!   (`unwrap_or_else(PoisonError::into_inner)` or an explicit
//!   `map_err`), because diagnostic state must stay readable precisely
//!   when some rank has panicked.
//!
//! Locks are identified by field/binding name (`states`, `state`,
//! `children`, …), which is exact for this codebase: every Mutex lives
//! in a distinctly-named field. Function calls within `comm/src` are
//! resolved by name and argument count (same file first, then a unique
//! cross-file match) and splice the callee's acquired-lock set at the
//! call site; helpers whose signature returns a `MutexGuard` (for
//! example `Hub::lock`) acquire *and hold* their lock at the call site
//! under the caller's binding.

use std::collections::{HashMap, HashSet};

use super::lexer::{Span, TokKind};
use super::model::{FileModel, FnItem};
use super::{Finding, Rule, SourceFile};

/// A direct lock acquisition site inside one function body.
#[derive(Clone, Debug)]
struct Acquire {
    lock: String,
    span: Span,
}

/// Flattened function handle: (file index, function index).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct FnId {
    file: usize,
    f: usize,
}

/// One held-lock edge witness.
#[derive(Clone, Debug)]
struct Witness {
    file: usize,
    span: Span,
}

struct Analyzer<'a, 's> {
    files: &'a [SourceFile<'s>],
    comm: Vec<usize>,
    by_name: HashMap<String, Vec<FnId>>,
    params: HashMap<FnId, usize>,
    guard_lock: HashMap<FnId, String>,
    acquires_memo: HashMap<FnId, HashSet<String>>,
    visiting: HashSet<FnId>,
    edges: HashMap<(String, String), Witness>,
    findings: Vec<(usize, Span, String)>,
}

impl<'a, 's> Analyzer<'a, 's> {
    fn new(files: &'a [SourceFile<'s>]) -> Self {
        let comm: Vec<usize> = (0..files.len())
            .filter(|&i| files[i].flags.is_comm)
            .collect();
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut params = HashMap::new();
        let mut guard_lock = HashMap::new();
        for &file in &comm {
            let m = &files[file].model;
            for (fidx, f) in m.functions.iter().enumerate() {
                let id = FnId { file, f: fidx };
                by_name
                    .entry(m.text(f.name_idx).to_string())
                    .or_default()
                    .push(id);
                params.insert(id, param_count(m, f));
                // Guard-returning helper: header mentions MutexGuard and
                // the body has at least one direct acquisition.
                let mentions_guard = (f.header.0..f.header.1)
                    .any(|j| m.code[j].kind == TokKind::Ident && m.text(j) == "MutexGuard");
                if mentions_guard {
                    if let Some((open, close)) = f.body {
                        if let Some(first) = direct_acquires(m, open + 1, close).first() {
                            guard_lock.insert(id, first.lock.clone());
                        }
                    }
                }
            }
        }
        Analyzer {
            files,
            comm,
            by_name,
            params,
            guard_lock,
            acquires_memo: HashMap::new(),
            visiting: HashSet::new(),
            edges: HashMap::new(),
            findings: Vec::new(),
        }
    }

    fn model(&self, file: usize) -> &FileModel<'s> {
        &self.files[file].model
    }

    /// Resolve a call to `name` with `argc` arguments from `from_file`:
    /// same-file candidates first, then a unique cross-file match.
    fn resolve(&self, from_file: usize, name: &str, argc: usize) -> Option<FnId> {
        let cands = self.by_name.get(name)?;
        let fits: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|id| self.params.get(id) == Some(&argc))
            .collect();
        let local: Vec<FnId> = fits
            .iter()
            .copied()
            .filter(|id| id.file == from_file)
            .collect();
        match (local.len(), fits.len()) {
            (1, _) => Some(local[0]),
            (0, 1) => Some(fits[0]),
            _ => None,
        }
    }

    /// Every lock name acquired anywhere inside `id` (transitively).
    fn acquires(&mut self, id: FnId) -> HashSet<String> {
        if let Some(c) = self.acquires_memo.get(&id) {
            return c.clone();
        }
        if !self.visiting.insert(id) {
            return HashSet::new();
        }
        let mut set = HashSet::new();
        let m = self.model(id.file);
        if let Some((open, close)) = m.functions[id.f].body {
            for a in direct_acquires(m, open + 1, close) {
                set.insert(a.lock);
            }
            // Splice callees.
            let calls = call_sites(m, open + 1, close);
            for (name, argc, _span) in calls {
                if let Some(callee) = self.resolve(id.file, &name, argc) {
                    if callee != id {
                        set.extend(self.acquires(callee));
                    }
                }
            }
        }
        self.visiting.remove(&id);
        self.acquires_memo.insert(id, set.clone());
        set
    }

    /// Hold-region walk over one function, recording edges.
    fn walk_fn(&mut self, id: FnId) {
        let m = self.model(id.file);
        let Some((open, close)) = m.functions[id.f].body else {
            return;
        };
        if m.in_test(m.code[m.functions[id.f].kw].span.start) {
            return;
        }
        struct Hold {
            lock: String,
            binding: Option<String>,
            depth: i32,
            semi: bool,
        }
        let mut holds: Vec<Hold> = Vec::new();
        let mut depth = 0i32;
        // The active `let NAME =` binding of the current statement.
        let mut pending_let: Option<(Option<String>, i32)> = None;
        let mut i = open + 1;
        // Collected per-walk actions; applied to self after the loop to
        // avoid borrowing tangles.
        let mut local_edges: Vec<((String, String), Witness)> = Vec::new();
        let mut local_findings: Vec<(usize, Span, String)> = Vec::new();
        // Resolve calls eagerly (resolution is immutable), but acquires()
        // needs &mut self — prefetch the callee sets used in this body.
        let calls = call_sites(m, open + 1, close);
        let mut callee_info: HashMap<usize, (Option<String>, HashSet<String>)> = HashMap::new();
        for (name, argc, span) in &calls {
            if let Some(callee) = self.resolve(id.file, name, *argc) {
                let guard = self.guard_lock.get(&callee).cloned();
                let acq = self.acquires(callee);
                callee_info.insert(span.start, (guard, acq));
            }
        }
        let m = self.model(id.file);
        while i < close {
            let t = m.code[i];
            match t.kind {
                TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b'}') => {
                    depth -= 1;
                    holds.retain(|h| h.depth <= depth);
                }
                TokKind::Punct(b';') => {
                    if let Some((_, d)) = pending_let {
                        if depth <= d {
                            pending_let = None;
                        }
                    }
                    holds.retain(|h| !(h.semi && depth <= h.depth));
                }
                TokKind::Ident => {
                    let text = m.text(i);
                    // `let [mut] NAME =` opens a binding statement.
                    if text == "let" {
                        let mut j = i + 1;
                        if j < close && m.code[j].kind == TokKind::Ident && m.text(j) == "mut" {
                            j += 1;
                        }
                        let name = if j < close && m.code[j].kind == TokKind::Ident {
                            let n = m.text(j);
                            if n == "_" {
                                None
                            } else {
                                Some(n.to_string())
                            }
                        } else {
                            None
                        };
                        pending_let = Some((name, depth));
                        i += 1;
                        continue;
                    }
                    // `drop(NAME)` releases a named guard linearly.
                    if text == "drop"
                        && i + 1 < close
                        && m.code[i + 1].is_punct(b'(')
                        && (i == 0 || !m.code[i - 1].is_punct(b'.'))
                    {
                        let mut j = i + 2;
                        while j < close && (m.code[j].is_punct(b'&') || m.code[j].is_punct(b'*')) {
                            j += 1;
                        }
                        if j < close && m.code[j].kind == TokKind::Ident {
                            let victim = m.text(j);
                            holds.retain(|h| h.binding.as_deref() != Some(victim));
                        }
                        i += 1;
                        continue;
                    }
                    // Direct `.lock()` / free `lock(…)` acquisition.
                    if let Some(acq) = acquire_at(m, i, close) {
                        for h in &holds {
                            if h.lock == acq.lock {
                                local_findings.push((
                                    id.file,
                                    acq.span,
                                    format!(
                                        "lock `{}` acquired while already held — std Mutex \
                                         is not reentrant, this deadlocks",
                                        acq.lock
                                    ),
                                ));
                            } else {
                                local_edges.push((
                                    (h.lock.clone(), acq.lock.clone()),
                                    Witness {
                                        file: id.file,
                                        span: acq.span,
                                    },
                                ));
                            }
                        }
                        let binding = pending_let.as_ref().and_then(|(n, _)| n.clone());
                        let semi = binding.is_none();
                        holds.push(Hold {
                            lock: acq.lock,
                            binding,
                            depth,
                            semi,
                        });
                        i += 1;
                        continue;
                    }
                    // Spliced call: guard-returning helpers acquire and
                    // hold; everything else is transient.
                    if i + 1 < close && m.code[i + 1].is_punct(b'(') {
                        if let Some((guard, acq_set)) = callee_info.get(&t.span.start) {
                            if let Some(g) = guard {
                                for h in &holds {
                                    if &h.lock == g {
                                        local_findings.push((
                                            id.file,
                                            t.span,
                                            format!(
                                                "lock `{g}` acquired (via guard-returning \
                                                 helper) while already held — std Mutex is \
                                                 not reentrant, this deadlocks"
                                            ),
                                        ));
                                    } else {
                                        local_edges.push((
                                            (h.lock.clone(), g.clone()),
                                            Witness {
                                                file: id.file,
                                                span: t.span,
                                            },
                                        ));
                                    }
                                }
                                let binding = pending_let.as_ref().and_then(|(n, _)| n.clone());
                                let semi = binding.is_none();
                                holds.push(Hold {
                                    lock: g.clone(),
                                    binding,
                                    depth,
                                    semi,
                                });
                            } else {
                                for h in &holds {
                                    for l in acq_set {
                                        if &h.lock == l {
                                            local_findings.push((
                                                id.file,
                                                t.span,
                                                format!(
                                                    "call re-acquires lock `{l}` already \
                                                     held by the caller — std Mutex is not \
                                                     reentrant, this deadlocks"
                                                ),
                                            ));
                                        } else {
                                            local_edges.push((
                                                (h.lock.clone(), l.clone()),
                                                Witness {
                                                    file: id.file,
                                                    span: t.span,
                                                },
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        for (key, w) in local_edges {
            self.edges.entry(key).or_insert(w);
        }
        self.findings.extend(local_findings);
    }
}

/// Number of parameters of `f` (excluding any `self` receiver).
fn param_count(m: &FileModel<'_>, f: &FnItem) -> usize {
    let mut open = None;
    for j in f.header.0..f.header.1 {
        if m.code[j].is_punct(b'(') {
            open = Some(j);
            break;
        }
    }
    let Some(open) = open else { return 0 };
    let Some(close) = m.matching_close(open) else {
        return 0;
    };
    if close == open + 1 {
        return 0;
    }
    let mut depth = 0i32;
    let mut segments = 1usize;
    let mut first_has_self = false;
    let mut in_first = true;
    for j in open + 1..close {
        match m.code[j].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'>') => depth -= 1,
            TokKind::Punct(b',') if depth == 0 => {
                // Ignore a trailing comma.
                if j + 1 < close {
                    segments += 1;
                }
                in_first = false;
            }
            TokKind::Ident if in_first && m.text(j) == "self" => first_has_self = true,
            _ => {}
        }
    }
    if first_has_self {
        segments - 1
    } else {
        segments
    }
}

/// Number of arguments in the call whose `(` is at `open`.
fn arg_count(m: &FileModel<'_>, open: usize) -> Option<usize> {
    let close = m.matching_close(open)?;
    if close == open + 1 {
        return Some(0);
    }
    let mut depth = 0i32;
    let mut segments = 1usize;
    for j in open + 1..close {
        match m.code[j].kind {
            TokKind::Punct(b'(')
            | TokKind::Punct(b'[')
            | TokKind::Punct(b'{')
            | TokKind::Punct(b'|') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
            // Ignore a trailing comma.
            TokKind::Punct(b',') if depth == 0 && j + 1 < close => segments += 1,
            _ => {}
        }
    }
    Some(segments)
}

/// The direct lock acquisition at code token `i`, if any: `X.lock()`
/// with an identifier receiver other than `self`, or a free
/// `lock(&…field)` call (the diag-style poison-recovering helper).
fn acquire_at(m: &FileModel<'_>, i: usize, limit: usize) -> Option<Acquire> {
    if m.code[i].kind != TokKind::Ident || m.text(i) != "lock" {
        return None;
    }
    if i + 1 >= limit || !m.code[i + 1].is_punct(b'(') {
        return None;
    }
    let prev_dot = i > 0 && m.code[i - 1].is_punct(b'.');
    if prev_dot {
        // Method form: receiver is the identifier before the dot.
        if i >= 2 && m.code[i - 2].kind == TokKind::Ident {
            let recv = m.text(i - 2);
            if recv != "self" {
                return Some(Acquire {
                    lock: recv.to_string(),
                    span: m.code[i].span,
                });
            }
        }
        return None;
    }
    // Free form `lock(…)`: skip the definition itself, then take the
    // last identifier in the argument list as the lock name.
    if i > 0 && m.code[i - 1].kind == TokKind::Ident && m.text(i - 1) == "fn" {
        return None;
    }
    let close = m.matching_close(i + 1)?;
    let mut last = None;
    for j in i + 2..close {
        if m.code[j].kind == TokKind::Ident && m.text(j) != "self" {
            last = Some(j);
        }
    }
    last.map(|j| Acquire {
        lock: m.text(j).to_string(),
        span: m.code[i].span,
    })
}

/// All direct acquisitions in a token range.
fn direct_acquires(m: &FileModel<'_>, start: usize, end: usize) -> Vec<Acquire> {
    (start..end).filter_map(|i| acquire_at(m, i, end)).collect()
}

/// All resolvable-looking call sites (name, argc, name span) in a
/// range. Skips direct `lock` acquisitions and `drop`.
fn call_sites(m: &FileModel<'_>, start: usize, end: usize) -> Vec<(String, usize, Span)> {
    let mut out = Vec::new();
    for i in start..end {
        if m.code[i].kind != TokKind::Ident {
            continue;
        }
        if i + 1 >= end || !m.code[i + 1].is_punct(b'(') {
            continue;
        }
        let name = m.text(i);
        if name == "drop" {
            continue;
        }
        // Direct acquisitions are handled as lock events, not calls —
        // but `self.lock()` (no receiver field) resolves as a call to a
        // guard-returning helper like `Hub::lock`.
        if name == "lock" && acquire_at(m, i, end).is_some() {
            continue;
        }
        if name == "lock" && !(i > 0 && m.code[i - 1].is_punct(b'.')) {
            // Free `lock(…)` with no extractable lock name: skip.
            continue;
        }
        if i > 0 && m.code[i - 1].kind == TokKind::Ident && m.text(i - 1) == "fn" {
            continue;
        }
        if let Some(argc) = arg_count(m, i + 1) {
            out.push((name.to_string(), argc, m.code[i].span));
        }
    }
    out
}

/// Find one representative of each distinct cycle in the edge graph.
fn find_cycles(edges: &HashMap<(String, String), Witness>) -> Vec<Vec<String>> {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut nodes: Vec<&str> = adj.keys().copied().collect();
    nodes.sort_unstable();
    let mut seen_cycles: HashSet<Vec<String>> = HashSet::new();
    let mut out = Vec::new();
    for &root in &nodes {
        let mut on_path: Vec<&str> = Vec::new();
        // Depth-first with an explicit path; small graphs, so a simple
        // recursive search expressed iteratively is plenty.
        fn dfs<'g>(
            node: &'g str,
            adj: &HashMap<&'g str, Vec<&'g str>>,
            on_path: &mut Vec<&'g str>,
            seen: &mut HashSet<Vec<String>>,
            out: &mut Vec<Vec<String>>,
        ) {
            if let Some(pos) = on_path.iter().position(|&n| n == node) {
                let cycle: Vec<String> = on_path[pos..].iter().map(|s| s.to_string()).collect();
                // Canonicalize: rotate so the smallest element leads.
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mut canon = cycle[min..].to_vec();
                canon.extend_from_slice(&cycle[..min]);
                if seen.insert(canon.clone()) {
                    out.push(canon);
                }
                return;
            }
            if on_path.len() > 32 {
                return;
            }
            on_path.push(node);
            if let Some(nexts) = adj.get(node) {
                for &nx in nexts {
                    dfs(nx, adj, on_path, seen, out);
                }
            }
            on_path.pop();
        }
        dfs(root, &adj, &mut on_path, &mut seen_cycles, &mut out);
    }
    out
}

/// Run the lock-order analysis over the full source set.
pub(super) fn run(files: &[SourceFile<'_>], out: &mut Vec<Finding>) {
    if !files.iter().any(|f| f.flags.is_comm) {
        return;
    }
    let mut an = Analyzer::new(files);

    // Blessed-helper check: `.lock().unwrap()` / `.lock().expect(`.
    for &file in &an.comm.clone() {
        let m = an.model(file);
        let mut lints: Vec<(Span, String)> = Vec::new();
        for i in 0..m.code.len() {
            if m.code[i].kind != TokKind::Ident || m.text(i) != "lock" {
                continue;
            }
            if i == 0 || !m.code[i - 1].is_punct(b'.') {
                continue;
            }
            if i + 1 >= m.code.len() || !m.code[i + 1].is_punct(b'(') {
                continue;
            }
            if m.in_test(m.code[i].span.start) {
                continue;
            }
            let Some(close) = m.matching_close(i + 1) else {
                continue;
            };
            if close + 2 < m.code.len()
                && m.code[close + 1].is_punct(b'.')
                && m.code[close + 2].kind == TokKind::Ident
            {
                let next = m.text(close + 2);
                if next == "unwrap" || next == "expect" {
                    lints.push((
                        m.code[i].span,
                        format!(
                            "`.lock().{next}(` — comm locks must recover from poisoning \
                             via the blessed helpers, not panic"
                        ),
                    ));
                }
            }
        }
        for (span, msg) in lints {
            let m = an.model(file);
            let line = m.line_of(span.start);
            if !m.allow_on(line, Rule::LockOrder.name()) {
                out.push(super::finding(
                    m,
                    &files[file].flags,
                    span,
                    Rule::LockOrder,
                    msg,
                ));
            }
        }
    }

    // Acquisition-graph walk.
    for &file in &an.comm.clone() {
        for f in 0..an.model(file).functions.len() {
            an.walk_fn(FnId { file, f });
        }
    }
    for (file, span, msg) in an.findings.clone() {
        let m = an.model(file);
        let line = m.line_of(span.start);
        if !m.allow_on(line, Rule::LockOrder.name()) {
            out.push(super::finding(
                m,
                &files[file].flags,
                span,
                Rule::LockOrder,
                msg,
            ));
        }
    }
    for cycle in find_cycles(&an.edges) {
        let mut ring = cycle.clone();
        ring.push(cycle[0].clone());
        let witness_key = (
            cycle[0].clone(),
            cycle.get(1).cloned().unwrap_or_else(|| cycle[0].clone()),
        );
        let (file, span) = match an.edges.get(&witness_key) {
            Some(w) => (w.file, w.span),
            None => continue,
        };
        let m = an.model(file);
        let line = m.line_of(span.start);
        if !m.allow_on(line, Rule::LockOrder.name()) {
            out.push(super::finding(
                m,
                &files[file].flags,
                span,
                Rule::LockOrder,
                format!(
                    "cyclic lock acquisition order: {} — opposite-order paths can deadlock",
                    ring.join(" -> ")
                ),
            ));
        }
    }
}
