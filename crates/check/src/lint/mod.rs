//! The repo's static-analysis pass, run via
//! `cargo run -p xtask -- lint`.
//!
//! A small Rust lexer ([`lexer`]) feeds a brace-aware item model
//! ([`model`]: function spans, `#[cfg(test)]` scoping, match-arm
//! segmentation), on which two layers run:
//!
//! **Token rules** (`rules`) — the five source-level invariants the
//! compiler cannot see:
//!
//! * **`unwrap`**: no `.unwrap()` / `.expect(` in library code outside
//!   `#[cfg(test)]` modules and `src/bin/` entrypoints. A panic in a
//!   rank thread poisons the collective state for every peer.
//! * **`serial-kernel`**: no direct serial `gemm`/`spmm` calls in
//!   `crates/core/src/dist/` where a `_with` ParallelCtx variant
//!   exists.
//! * **`uncategorized-collective`**: every collective call site in
//!   `crates/core/src/` must name a `Cat::` cost category in the same
//!   call, so the α–β accounting behind every figure cannot drift.
//!   A call that never closes its parenthesis is an
//!   **`unbalanced-call`** finding, not a silent pass.
//! * **`unwaited-pending`**: every function in `crates/core/src/dist/`
//!   that issues a nonblocking collective must `.wait(` on it, return
//!   the `PendingOp`/`Fetch` to its caller, and never discard one into
//!   `let _`.
//! * **`raw-socket-io`**: comm-layer code never reads or writes a raw
//!   byte stream outside `frame.rs` — every wire byte passes through
//!   the framed codec's header validation.
//! * **`scalar-hot-loop`**: no raw per-element multiply-accumulate
//!   loops in `dense/src/` or `sparse/src/` outside the blessed
//!   microkernel modules (`gemm.rs`, `spmm.rs`, the `reference.rs`
//!   oracles). Scalar MAC loops silently forfeit the register-blocked
//!   kernels' throughput; route the math through them instead.
//!
//! **Semantic analyses** — the invariants behind the runtime
//! bit-identity and deadlock tests, checked statically:
//!
//! * **`collective-order`** ([`order`]): sibling branches in
//!   `crates/core/src/dist/` (CommMode arms, overlap Some/None arms)
//!   must issue identical normalized collective kind-sequences.
//! * **`lock-order`** ([`locks`]): the Mutex acquisition graph over
//!   `comm/src` must be acyclic, locks are never re-acquired while
//!   held, and `.lock().unwrap()` never bypasses the blessed
//!   poison-recovering helpers.
//! * **`frame-exhaustiveness`** ([`frames`]): every `FrameKind`
//!   variant is handled in a dispatch match in `proc.rs`, and every
//!   wire-precision tag (`Precision` variant) declared in `frame.rs`
//!   is handled by the pack/widen/codec matches in `frame.rs` itself.
//!
//! Suppress a finding with `// lint:allow(<rule>): <reason>` on the
//! offending line or the line above it. Markers only count inside
//! comments, and a marker naming an unknown rule is itself an
//! **`unknown-allow`** finding. Accepted findings can also live in a
//! committed baseline file (see [`apply_baseline`]); `xtask lint`
//! fails only on findings not covered by it.

pub mod lexer;
pub mod model;

mod frames;
mod locks;
mod order;
mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::Span;
use model::FileModel;

/// How serious a finding is. `Error` findings fail the lint gate;
/// `Warning` findings are reported (and baselineable) but still fail
/// the gate when fresh — they are warnings in the sense of "likely but
/// not certainly a defect".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Invariant violation.
    Error,
    /// Suspicious construct (typo'd suppression, unbalanced call).
    Warning,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Which invariant a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in library code outside tests.
    UnwrapInLib,
    /// Serial kernel call in `dist/` where a `_with` variant exists.
    SerialKernelInDist,
    /// Collective call without a `Cat::` cost category.
    UncategorizedCollective,
    /// Nonblocking collective issued but never waited/returned, or
    /// discarded into `let _`.
    UnwaitedPending,
    /// Raw byte-stream read/write in `comm/src/` outside `frame.rs`.
    RawSocketIo,
    /// A collective call whose parentheses never balance — the
    /// category check cannot run on it.
    UnbalancedCall,
    /// A `lint:allow(...)` marker naming a rule that does not exist.
    UnknownAllow,
    /// Sibling branches issue different collective kind-sequences.
    CollectiveOrder,
    /// Cyclic or re-entrant Mutex acquisition, or an unblessed
    /// `.lock().unwrap()`.
    LockOrder,
    /// A `FrameKind` variant with no dispatch match arm in `proc.rs`,
    /// or a `Precision` wire tag with no codec match arm in `frame.rs`.
    FrameExhaustiveness,
    /// Raw per-element multiply-accumulate loop in `dense/src/` or
    /// `sparse/src/` outside the blessed microkernel modules.
    ScalarHotLoop,
}

impl Rule {
    /// The marker name used in `lint:allow(<name>)` suppressions and
    /// baseline entries.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapInLib => "unwrap",
            Rule::SerialKernelInDist => "serial-kernel",
            Rule::UncategorizedCollective => "uncategorized-collective",
            Rule::UnwaitedPending => "unwaited-pending",
            Rule::RawSocketIo => "raw-socket-io",
            Rule::UnbalancedCall => "unbalanced-call",
            Rule::UnknownAllow => "unknown-allow",
            Rule::CollectiveOrder => "collective-order",
            Rule::LockOrder => "lock-order",
            Rule::FrameExhaustiveness => "frame-exhaustiveness",
            Rule::ScalarHotLoop => "scalar-hot-loop",
        }
    }

    /// Default severity.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UnbalancedCall | Rule::UnknownAllow => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// All rules, for marker validation and docs.
    pub fn all() -> [Rule; 11] {
        [
            Rule::UnwrapInLib,
            Rule::SerialKernelInDist,
            Rule::UncategorizedCollective,
            Rule::UnwaitedPending,
            Rule::RawSocketIo,
            Rule::UnbalancedCall,
            Rule::UnknownAllow,
            Rule::CollectiveOrder,
            Rule::LockOrder,
            Rule::FrameExhaustiveness,
            Rule::ScalarHotLoop,
        ]
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the finding is in (as passed to the linter).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based (byte) column number.
    pub col: usize,
    /// Byte span of the offending token(s).
    pub span: (usize, usize),
    /// Violated rule.
    pub rule: Rule,
    /// Severity of this finding.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.severity.name(),
            self.rule.name(),
            self.message
        )
    }
}

/// Backwards-compatible alias: the pre-token-engine name for a finding.
pub type Violation = Finding;

/// Path-derived scoping decisions for one file.
pub(crate) struct PathFlags {
    /// The path as given.
    pub path: PathBuf,
    /// Forward-slash normalized path string.
    pub norm: String,
    /// Under `src/bin/` — binaries may unwrap.
    pub is_bin: bool,
    /// Under `core/src/dist/` — trainer rules apply.
    pub is_dist: bool,
    /// Under `core/src/` — collective-category rule applies.
    pub is_core: bool,
    /// Under `comm/src/` — lock-order analysis applies.
    pub is_comm: bool,
    /// Under `comm/src/` but not `frame.rs` — raw-I/O rule applies.
    pub is_comm_nonframe: bool,
    /// Under `dense/src/` or `sparse/src/` but outside the blessed
    /// microkernel modules — the scalar-hot-loop rule applies.
    pub is_kernel_hot: bool,
}

/// The modules allowed to spell out per-element multiply-accumulate
/// loops: the register-blocked kernels themselves and the
/// transparently-slow reference oracles they are tested against.
const BLESSED_KERNEL_MODULES: [&str; 4] = [
    "dense/src/gemm.rs",
    "dense/src/reference.rs",
    "sparse/src/spmm.rs",
    "sparse/src/reference.rs",
];

impl PathFlags {
    fn new(path: &Path) -> PathFlags {
        let norm = path.to_string_lossy().replace('\\', "/");
        let is_kernel_crate = norm.contains("dense/src/") || norm.contains("sparse/src/");
        let is_blessed = BLESSED_KERNEL_MODULES.iter().any(|b| norm.ends_with(b));
        PathFlags {
            path: path.to_path_buf(),
            is_bin: norm.contains("/src/bin/"),
            is_dist: norm.contains("core/src/dist/"),
            is_core: norm.contains("core/src/"),
            is_comm: norm.contains("comm/src/"),
            is_comm_nonframe: norm.contains("comm/src/") && !norm.ends_with("frame.rs"),
            is_kernel_hot: is_kernel_crate && !is_blessed,
            norm,
        }
    }
}

/// One parsed source file plus its path scoping, as consumed by the
/// cross-file analyses.
pub(crate) struct SourceFile<'s> {
    pub flags: PathFlags,
    pub model: FileModel<'s>,
}

/// Build a finding at `span`.
pub(crate) fn finding(
    m: &FileModel<'_>,
    flags: &PathFlags,
    span: Span,
    rule: Rule,
    message: String,
) -> Finding {
    Finding {
        file: flags.path.clone(),
        line: m.line_of(span.start),
        col: m.col_of(span.start),
        span: (span.start, span.end),
        rule,
        severity: rule.severity(),
        message,
        excerpt: m.line_text(span.start).to_string(),
    }
}

/// Unknown `lint:allow` names are findings themselves: a typo'd marker
/// silently suppresses nothing.
fn check_allow_markers(m: &FileModel<'_>, flags: &PathFlags, out: &mut Vec<Finding>) {
    for a in &m.allows {
        if Rule::all().iter().any(|r| r.name() == a.name) {
            continue;
        }
        if m.in_test(a.span.start) {
            continue;
        }
        if m.allow_on(a.line, Rule::UnknownAllow.name()) {
            continue;
        }
        out.push(finding(
            m,
            flags,
            a.span,
            Rule::UnknownAllow,
            format!(
                "`lint:allow({})` names an unknown rule — this marker suppresses nothing",
                a.name
            ),
        ));
    }
}

/// Lint a set of sources as one unit. Cross-file analyses (lock-order,
/// frame-exhaustiveness) see the whole set; per-file rules run on each
/// file. Findings come back sorted by (file, line, col) and deduplicated
/// by (rule, file, span).
pub fn lint_sources(files: &[(PathBuf, String)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile<'_>> = files
        .iter()
        .filter(|(p, _)| p.to_string_lossy().ends_with(".rs"))
        .map(|(p, content)| SourceFile {
            flags: PathFlags::new(p),
            model: FileModel::new(content),
        })
        .collect();
    let mut out = Vec::new();
    for sf in &parsed {
        rules::run(&sf.model, &sf.flags, &mut out);
        order::run(&sf.model, &sf.flags, &mut out);
        check_allow_markers(&sf.model, &sf.flags, &mut out);
    }
    locks::run(&parsed, &mut out);
    frames::run(&parsed, &mut out);

    out.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    out.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.span.0 == b.span.0);
    out
}

/// Lint a single file's content. `path` is used for scoping decisions
/// (library vs binary, `dist/`, `core/src/`) and for reporting.
pub fn lint_file(path: &Path, content: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_path_buf(), content.to_string())])
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under `repo_root`. Paths in the
/// returned findings are relative to `repo_root`.
pub fn lint_tree(repo_root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = repo_root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::new();
    for file in files {
        let content = fs::read_to_string(&file)?;
        let rel = file.strip_prefix(repo_root).unwrap_or(&file).to_path_buf();
        sources.push((rel, content));
    }
    Ok(lint_sources(&sources))
}

/// The outcome of matching findings against a baseline file.
pub struct BaselinedReport {
    /// Findings not covered by the baseline — these fail the gate.
    pub fresh: Vec<Finding>,
    /// Findings covered by a baseline entry.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched no finding (fixed or moved);
    /// rendered as `rule<TAB>file<TAB>excerpt` lines.
    pub stale: Vec<String>,
}

/// Match `findings` against a baseline file's text. Baseline lines are
/// `rule<TAB>file<TAB>excerpt` (`#` comments and blank lines ignored);
/// matching is by multiset on exactly those three fields, so findings
/// survive unrelated line-number drift but not content changes.
pub fn apply_baseline(findings: Vec<Finding>, baseline_text: &str) -> BaselinedReport {
    let mut budget: Vec<(String, usize)> = Vec::new();
    for line in baseline_text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(slot) = budget.iter_mut().find(|(k, _)| k == t) {
            slot.1 += 1;
        } else {
            budget.push((t.to_string(), 1));
        }
    }
    let mut fresh = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        let key = baseline_key(&f);
        match budget.iter_mut().find(|(k, n)| *n > 0 && *k == key) {
            Some(slot) => {
                slot.1 -= 1;
                baselined.push(f);
            }
            None => fresh.push(f),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .flat_map(|(k, n)| std::iter::repeat_n(k, n))
        .collect();
    BaselinedReport {
        fresh,
        baselined,
        stale,
    }
}

/// The baseline line for one finding.
pub fn baseline_key(f: &Finding) -> String {
    format!(
        "{}\t{}\t{}",
        f.rule.name(),
        f.file.to_string_lossy().replace('\\', "/"),
        f.excerpt
    )
}

/// Render findings as a baseline file body.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# Accepted lint findings (rule<TAB>file<TAB>excerpt).\n\
         # Regenerate with: cargo run -p xtask -- lint --write-baseline\n",
    );
    for f in findings {
        out.push_str(&baseline_key(f));
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_finding(f: &Finding, baselined: bool) -> String {
    format!(
        "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"column\":{},\"span\":[{},{}],\"message\":\"{}\",\"excerpt\":\"{}\",\"baselined\":{}}}",
        f.rule.name(),
        f.severity.name(),
        json_escape(&f.file.to_string_lossy().replace('\\', "/")),
        f.line,
        f.col,
        f.span.0,
        f.span.1,
        json_escape(&f.message),
        json_escape(&f.excerpt),
        baselined
    )
}

/// Render a machine-readable report. Schema (version 1):
///
/// ```json
/// {
///   "version": 1,
///   "tool": "cagnet-xtask-lint",
///   "root": "<repo root as given>",
///   "counts": {"total": N, "fresh": N, "baselined": N,
///              "error": N, "warning": N},
///   "findings": [{"rule", "severity", "file", "line", "column",
///                 "span": [start, end], "message", "excerpt",
///                 "baselined"}],
///   "stale_baseline": ["rule\tfile\texcerpt", …]
/// }
/// ```
pub fn render_json(root: &str, rep: &BaselinedReport) -> String {
    let total = rep.fresh.len() + rep.baselined.len();
    let all = rep
        .fresh
        .iter()
        .map(|f| (f, false))
        .chain(rep.baselined.iter().map(|f| (f, true)));
    let errors = rep
        .fresh
        .iter()
        .chain(rep.baselined.iter())
        .filter(|f| f.severity == Severity::Error)
        .count();
    let findings: Vec<String> = all.map(|(f, b)| json_finding(f, b)).collect();
    let stale: Vec<String> = rep
        .stale
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "{{\"version\":1,\"tool\":\"cagnet-xtask-lint\",\"root\":\"{}\",\"counts\":{{\"total\":{},\"fresh\":{},\"baselined\":{},\"error\":{},\"warning\":{}}},\"findings\":[{}],\"stale_baseline\":[{}]}}\n",
        json_escape(root),
        total,
        rep.fresh.len(),
        rep.baselined.len(),
        errors,
        total - errors,
        findings.join(","),
        stale.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, content: &str) -> Vec<Finding> {
        lint_file(Path::new(path), content)
    }

    const LIB: &str = "crates/foo/src/lib.rs";

    // ---- Rule 1: unwrap -------------------------------------------------

    #[test]
    fn flags_unwrap_in_lib() {
        let v = lint(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].severity, Severity::Error);
    }

    #[test]
    fn flags_expect_in_lib() {
        let v = lint(
            LIB,
            "fn f() { let g = m.recover().expect(\"poisoned\"); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn allow_marker_suppresses() {
        let same = "fn f() { let x = o.unwrap(); } // lint:allow(unwrap): infallible here\n";
        assert!(lint(LIB, same).is_empty());
        let above = "// lint:allow(unwrap): checked by caller\nfn f() { let x = o.unwrap(); }\n";
        assert!(lint(LIB, above).is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let src = "fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint(LIB, src).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_linted() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn bins_are_exempt_from_unwrap() {
        assert!(lint(
            "crates/bench/src/bin/runner.rs",
            "fn main() { let p: usize = arg.parse().unwrap(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_count() {
        assert!(lint(LIB, "// don't .unwrap() in lib code\n").is_empty());
        assert!(lint(LIB, "fn f() { let s = \"never .unwrap() it\"; }\n").is_empty());
        assert!(lint(LIB, "/// docs about .expect( behavior\nfn g() {}\n").is_empty());
    }

    // ---- Satellite pins: the old sanitize() false states ---------------

    #[test]
    fn char_literal_quote_does_not_poison_line() {
        // `'"'` used to open string-tracking for the rest of the line,
        // hiding the `.unwrap()` after it.
        let src = "fn f() { let c = '\"'; x.unwrap(); }\n";
        let v = lint(LIB, src);
        assert_eq!(v.len(), 1, "unwrap after '\"' char literal must be seen");
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn raw_strings_are_not_scanned_as_code() {
        let src = "fn f() { let s = r\"x.unwrap()\"; let t = r#\"y.expect(\"oops\")\"#; }\n";
        assert!(lint(LIB, src).is_empty());
    }

    #[test]
    fn block_comments_are_not_code() {
        let src = "fn f() { /* a.unwrap() inside /* nested */ comment */ }\n";
        assert!(lint(LIB, src).is_empty());
    }

    // ---- Satellite: allow-marker validation ----------------------------

    #[test]
    fn unknown_allow_name_is_a_finding() {
        let src = "fn f() {} // lint:allow(unwrp): typo'd\n";
        let v = lint(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnknownAllow);
        assert_eq!(v[0].severity, Severity::Warning);
    }

    #[test]
    fn marker_inside_string_does_not_suppress() {
        let src = "fn f() { let s = \"lint:allow(unwrap)\"; x.unwrap(); }\n";
        let v = lint(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn doc_placeholder_is_not_an_unknown_allow() {
        // `lint:allow(<rule>)` in docs is not marker syntax at all.
        let src = "//! Suppress with `lint:allow(<rule>): reason`.\nfn f() {}\n";
        assert!(lint(LIB, src).is_empty());
    }

    // ---- Rule 2: serial kernels ----------------------------------------

    #[test]
    fn flags_serial_kernel_in_dist() {
        let path = "crates/core/src/dist/onedim.rs";
        let v = lint(path, "fn f() { let z = matmul(&t, &w); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SerialKernelInDist);
        assert!(lint(
            path,
            "fn f() { let z = matmul_with(ctx.parallel(), &t, &w); }\n"
        )
        .is_empty());
        assert!(lint(
            path,
            "fn f() { spmm_acc_with(ctx.parallel(), &a, &h, &mut t); }\n"
        )
        .is_empty());
        assert!(lint(path, "fn f() { ctx.charge_spmm(a.nnz(), a.rows(), f); }\n").is_empty());
    }

    #[test]
    fn serial_kernel_outside_dist_is_fine() {
        assert!(lint(
            "crates/core/src/serial.rs",
            "fn f() { let z = matmul(&t, &w); }\n"
        )
        .is_empty());
    }

    // ---- Rule 3: collective categories ---------------------------------

    #[test]
    fn flags_uncategorized_collective() {
        let path = "crates/core/src/dist/onedim.rs";
        let v = lint(path, "fn f() { let hj = ctx.world.bcast(j, payload); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
    }

    #[test]
    fn categorized_collective_passes_across_lines() {
        let path = "crates/core/src/dist/onedim.rs";
        let src =
            "fn f() { let hj = ctx.world.bcast(\n    j,\n    payload,\n    Cat::DenseComm,\n); }\n";
        assert!(lint(path, src).is_empty());
        assert!(lint(
            path,
            "fn f() { ctx.world.allreduce_scalar(x, Cat::DenseComm); }\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_uncategorized_shared_and_row_collectives() {
        let path = "crates/core/src/dist/onedim.rs";
        let v = lint(
            path,
            "fn f() { let hj = ctx.world.bcast_shared(j, payload); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        let v = lint(
            path,
            "fn f() { let hj = ctx.world.gather_rows(j, payload, &needed); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        assert!(lint(
            path,
            "fn f() { let hj = ctx.world.bcast_shared(j, payload, Cat::DenseComm); }\n"
        )
        .is_empty());
        assert!(lint(
            path,
            "fn f() { let hj = ctx.world.gather_rows(j, payload, &needed, Cat::DenseComm); }\n"
        )
        .is_empty());
    }

    #[test]
    fn barrier_needs_no_category() {
        assert!(lint(
            "crates/core/src/dist/onedim.rs",
            "fn f() { ctx.world.barrier(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn collectives_outside_core_are_fine() {
        assert!(lint(
            "crates/bench/src/lib.rs",
            "fn f() { w.bcast(root, data); }\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_uncategorized_nonblocking_collectives() {
        let path = "crates/core/src/dist/onedim.rs";
        for call in [
            "let op = ctx.world.ibcast(j, payload);",
            "let op = ctx.world.ibcast_shared(j, payload);",
            "let op = ctx.world.igather_rows(j, payload, &needed);",
            "let op = ctx.world.iallreduce_mat(&m);",
        ] {
            let src = format!("fn f() {{\n{call}\nop.wait();\n}}\n");
            let v = lint(path, &src);
            assert_eq!(v.len(), 1, "for {call}");
            assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        }
        assert!(lint(
            path,
            "fn f() {\nlet op = ctx.world.ibcast_shared(j, payload, Cat::DenseComm);\nop.wait();\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn ibcast_needle_does_not_match_ibcast_shared() {
        let path = "crates/core/src/dist/onedim.rs";
        let src =
            "fn f() {\nlet op = w.ibcast_shared(j, p, Cat::DenseComm);\nlet x = op.wait();\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn allgather_shared_requires_cat() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() {\n    let parts = self.grid.row.allgather_shared(z.clone());\n}\n";
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
        assert!(lint(
            path,
            "fn f() {\n    let parts = self.grid.row.allgather_shared(z.clone(), Cat::DenseComm);\n}\n"
        )
        .is_empty());
    }

    // ---- Satellite: unbalanced calls are findings, not silent passes ---

    #[test]
    fn unbalanced_collective_call_is_a_finding() {
        // The old scanner's 30-line window *accepted* on overflow; the
        // token engine reports the truncated call explicitly.
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() { ctx.world.bcast(j, payload\n"; // EOF inside the call
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnbalancedCall);
        assert_eq!(v[0].severity, Severity::Warning);
    }

    #[test]
    fn call_longer_than_thirty_lines_is_still_checked() {
        // Regression for the window overflow: a categorized call spread
        // over >30 lines passes, an uncategorized one fails.
        let path = "crates/core/src/dist/onedim.rs";
        let filler = "    // filler\n".repeat(35);
        let good =
            format!("fn f() {{ ctx.world.bcast(\n{filler}    j, payload, Cat::DenseComm,\n); }}\n");
        assert!(lint(path, &good).is_empty());
        let bad = format!("fn f() {{ ctx.world.bcast(\n{filler}    j, payload,\n); }}\n");
        let v = lint(path, &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UncategorizedCollective);
    }

    // ---- Rule 4: unwaited pending --------------------------------------

    #[test]
    fn flags_issue_without_wait_in_fn() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn forward(&self) {\n    let op = ctx.world.ibcast_shared(j, p, Cat::DenseComm);\n    compute();\n}\n";
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwaitedPending);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn issue_with_wait_in_fn_passes() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn forward(&self) {\n    let op = ctx.world.ibcast_shared(j, p, Cat::DenseComm);\n    compute();\n    let h = op.wait();\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn issue_helper_returning_pending_is_exempt() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn issue_fetch<'c>(&self, ctx: &'c Ctx) -> PendingOp<'c, Arc<Mat>> {\n    ctx.world.ibcast_shared(j, p, Cat::DenseComm)\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn issue_helper_returning_fetch_is_exempt() {
        let path = "crates/core/src/dist/twodim.rs";
        let src = "fn issue_fetch<'c>(&self, ctx: &'c Ctx) -> super::Fetch<'c> {\n    super::Fetch::Sparse(ctx.world.igather_rows(j, p, &needed, e, Cat::DenseComm))\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn flags_pending_discarded_into_underscore() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() {\n    let _ = ctx.world.iallreduce_mat(&m, Cat::DenseComm);\n    other.wait();\n}\n";
        let v = lint(path, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwaitedPending);
        assert!(lint(
            path,
            "fn f() {\n    let _ = ctx.world.iallreduce_mat(&m, Cat::DenseComm).wait();\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn unwaited_pending_outside_dist_is_fine() {
        let src = "fn f() {\n    let op = x.igather_rows(j, p, &n, e, c);\n}\n";
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwaited_pending_allow_marker_suppresses() {
        let path = "crates/core/src/dist/onedim.rs";
        let src = "fn f() {\n    // lint:allow(unwaited-pending): waited by caller via handle registry\n    let op = ctx.world.ibcast_shared(j, p, Cat::DenseComm);\n    stash(op);\n}\n";
        assert!(lint(path, src).is_empty());
    }

    // ---- Rule 5: raw socket I/O ----------------------------------------

    #[test]
    fn flags_raw_socket_io_in_comm() {
        let path = "crates/comm/src/sock.rs";
        for call in [
            "fn f() { stream.read_exact(&mut header); }\n",
            "fn f() { let n = stream.read(&mut buf); }\n",
            "fn f() { stream.read_to_end(&mut body); }\n",
            "fn f() { writer.write_all(&bytes); }\n",
            "fn f() { let n = writer.write(&bytes); }\n",
        ] {
            let v = lint(path, call);
            assert_eq!(v.len(), 1, "for {call}");
            assert_eq!(v[0].rule, Rule::RawSocketIo);
        }
    }

    #[test]
    fn frame_rs_may_do_raw_io() {
        let src = "fn f() { r.read_exact(&mut header); w.write_all(&body); }\n";
        assert!(lint("crates/comm/src/frame.rs", src).is_empty());
    }

    #[test]
    fn raw_io_outside_comm_is_fine() {
        assert!(lint(
            "crates/bench/src/lib.rs",
            "fn f() { file.write_all(json.as_bytes()); }\n"
        )
        .is_empty());
    }

    #[test]
    fn framed_calls_in_comm_pass() {
        let path = "crates/comm/src/sock.rs";
        let src = "fn f() { let frame = frame::read_frame(&mut stream); frame::write_frame(&mut w, kind, &body); }\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn raw_socket_io_allow_marker_suppresses() {
        let path = "crates/comm/src/sock.rs";
        let src =
            "fn f() {\n// lint:allow(raw-socket-io): probing liveness, no payload\nstream.read(&mut probe);\n}\n";
        assert!(lint(path, src).is_empty());
    }

    #[test]
    fn raw_socket_io_in_comm_tests_is_exempt() {
        let path = "crates/comm/src/sock.rs";
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { s.read_exact(&mut b).unwrap(); }\n}\n";
        assert!(lint(path, src).is_empty());
    }

    // ---- Analysis: collective-order ------------------------------------

    const DIST: &str = "crates/core/src/dist/onedim.rs";

    #[test]
    fn reordered_comm_mode_arms_are_flagged() {
        let src = "\
fn step(&self, ctx: &Ctx) {
    match self.comm_mode {
        CommMode::Dense => {
            let h = ctx.world.bcast_shared(j, p, Cat::DenseComm);
            let y = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        }
        CommMode::SparsityAware => {
            let y = ctx.world.allreduce_mat(&m, Cat::SparseComm);
            let h = ctx.world.gather_rows(j, p, &n, e, Cat::SparseComm);
        }
    }
}
";
        let v = lint(DIST, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CollectiveOrder);
        assert!(v[0].message.contains("different collective sequences"));
    }

    #[test]
    fn identical_comm_mode_arms_pass() {
        let src = "\
fn step(&self, ctx: &Ctx) {
    match self.comm_mode {
        CommMode::Dense => {
            let h = ctx.world.bcast_shared(j, p, Cat::DenseComm);
            let y = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        }
        CommMode::SparsityAware => {
            let h = ctx.world.gather_rows(j, p, &n, e, Cat::SparseComm);
            let y = ctx.world.allreduce_mat(&m, Cat::SparseComm);
        }
    }
}
";
        assert!(lint(DIST, src).is_empty());
    }

    #[test]
    fn missing_collective_in_one_arm_is_flagged() {
        let src = "\
fn step(&self, ctx: &Ctx) {
    match self.comm_mode {
        CommMode::Dense => {
            let h = ctx.world.bcast_shared(j, p, Cat::DenseComm);
            let y = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        }
        CommMode::SparsityAware => {
            let h = ctx.world.gather_rows(j, p, &n, e, Cat::SparseComm);
        }
    }
}
";
        let v = lint(DIST, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::CollectiveOrder);
    }

    #[test]
    fn helper_splicing_resolves_issue_fetch() {
        // The dense arm issues directly; the sparse arm goes through a
        // same-file helper. Sequences still compare equal.
        let src = "\
fn issue_fetch<'c>(&self, ctx: &'c Ctx) -> PendingOp<'c> {
    ctx.world.ibcast_shared(j, p, Cat::DenseComm)
}
fn step(&self, ctx: &Ctx) {
    match self.comm_mode {
        CommMode::Dense => { let h = ctx.world.bcast_shared(j, p, Cat::DenseComm); }
        CommMode::SparsityAware => { let op = self.issue_fetch(ctx); let h = op.wait(); }
    }
}
";
        assert!(lint(DIST, src).is_empty());
    }

    #[test]
    fn overlap_blocking_arm_without_counterpart_is_flagged() {
        // None arm issues an allreduce, but nothing nonblocking gates it
        // in the Some path or a `.then(` prologue.
        let src = "\
fn backward(&self, ctx: &Ctx, y_op: Option<Op>) {
    let y = match y_op {
        Some(op) => op.wait(),
        None => ctx.world.allreduce_mat(&y_partial, Cat::DenseComm),
    };
}
";
        let v = lint(DIST, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CollectiveOrder);
        assert!(v[0].message.contains("no nonblocking counterpart"));
    }

    #[test]
    fn overlap_gated_by_then_passes() {
        // The canonical trainer shape: issue-ahead behind
        // `overlap.then(..)`, blocking fallback in the None arm.
        let src = "\
fn backward(&self, ctx: &Ctx) {
    let y_op = self.overlap.then(|| ctx.world.iallreduce_mat(&y_partial, Cat::DenseComm));
    let y = match y_op {
        Some(op) => op.wait(),
        None => ctx.world.allreduce_mat(&y_partial, Cat::DenseComm),
    };
}
";
        assert!(lint(DIST, src).is_empty());
    }

    #[test]
    fn overlap_arm_issuing_extra_collective_is_flagged() {
        let src = "\
fn forward(&self, ctx: &Ctx, pending: Option<Op>) {
    let h = match pending {
        Some(op) => { let extra = ctx.world.allgather(z, Cat::DenseComm); op.wait() }
        None => ctx.world.bcast_shared(j, p, Cat::DenseComm),
    };
}
";
        let v = lint(DIST, src);
        assert!(
            v.iter().any(|f| f.rule == Rule::CollectiveOrder
                && f.message.contains("blocking (None) arm does not")),
            "{v:?}"
        );
    }

    #[test]
    fn cached_arm_with_clean_serve_branch_passes() {
        // The canonical cached-tier shape (DESIGN.md §13): the serve
        // branch issues nothing, the refresh and eval branches each
        // issue the same fetch as the SparsityAware sibling.
        let src = "\
fn issue<'c>(&self, ctx: &'c Ctx, j: usize) -> Fetch<'c> {
    match self.comm_mode {
        CommMode::Dense => Fetch::Dense(ctx.world.ibcast_shared(j, p, Cat::DenseComm)),
        CommMode::SparsityAware => {
            Fetch::Sparse(ctx.world.igather_rows(j, p, &n, e, Cat::DenseComm))
        }
        CommMode::Cached { .. } => {
            if self.cached_serving() {
                Fetch::Cached(self.serve_cached(ctx, l, j))
            } else if self.training {
                Fetch::Sparse(ctx.world.igather_rows_refresh(j, p, &n, e, Cat::DenseComm))
            } else {
                Fetch::Sparse(ctx.world.igather_rows(j, p, &n, e, Cat::DenseComm))
            }
        }
    }
}
";
        assert!(lint(DIST, src).is_empty(), "{:?}", lint(DIST, src));
    }

    #[test]
    fn cached_refresh_branch_missing_fetch_is_flagged() {
        // The refresh branch of the Cached arm drops the gather its
        // SparsityAware sibling issues — a seq-number desync on refresh
        // epochs.
        let src = "\
fn issue<'c>(&self, ctx: &'c Ctx, j: usize) -> Fetch<'c> {
    match self.comm_mode {
        CommMode::SparsityAware => {
            Fetch::Sparse(ctx.world.igather_rows(j, p, &n, e, Cat::DenseComm))
        }
        CommMode::Cached { .. } => {
            if self.cached_serving() {
                Fetch::Cached(self.serve_cached(ctx, l, j))
            } else {
                Fetch::Cached(self.serve_cached(ctx, l, j))
            }
        }
    }
}
";
        let v = lint(DIST, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CollectiveOrder);
        assert!(v[0].message.contains("different collective sequences"));
    }

    #[test]
    fn cached_serve_branch_issuing_collective_is_flagged() {
        // Serving from cache must be collective-free: a gather inside
        // the cached_serving branch defeats the tier and desyncs peers
        // that refresh.
        let src = "\
fn issue<'c>(&self, ctx: &'c Ctx, j: usize) -> Fetch<'c> {
    match self.comm_mode {
        CommMode::SparsityAware => {
            Fetch::Sparse(ctx.world.igather_rows(j, p, &n, e, Cat::DenseComm))
        }
        CommMode::Cached { .. } => {
            if self.cached_serving() {
                Fetch::Sparse(ctx.world.igather_rows(j, p, &n, e, Cat::DenseComm))
            } else {
                Fetch::Sparse(ctx.world.igather_rows_refresh(j, p, &n, e, Cat::DenseComm))
            }
        }
    }
}
";
        let v = lint(DIST, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CollectiveOrder);
        assert!(v[0].message.contains("cache-serve branch"), "{v:?}");
    }

    #[test]
    fn cached_eval_branch_diverging_is_flagged() {
        // The eval (final else) branch issues a different class than the
        // sibling reference: refresh and eval branches are checked
        // independently.
        let src = "\
fn issue<'c>(&self, ctx: &'c Ctx, j: usize) -> Fetch<'c> {
    match self.comm_mode {
        CommMode::SparsityAware => {
            Fetch::Sparse(ctx.world.igather_rows(j, p, &n, e, Cat::DenseComm))
        }
        CommMode::Cached { .. } => {
            if self.cached_serving() {
                Fetch::Cached(self.serve_cached(ctx, l, j))
            } else if self.training {
                Fetch::Sparse(ctx.world.igather_rows_refresh(j, p, &n, e, Cat::DenseComm))
            } else {
                Fetch::Dense(ctx.world.allgather(z, Cat::DenseComm))
            }
        }
    }
}
";
        let v = lint(DIST, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CollectiveOrder);
        assert!(v[0].message.contains("branch 3"), "{v:?}");
    }

    #[test]
    fn pipelined_some_arm_reissue_passes() {
        // Some arm re-issues the next stage's fetch before waiting —
        // the classes still match the None arm's blocking fetch.
        let src = "\
fn issue_fetch<'c>(&self, ctx: &'c Ctx, j: usize) -> PendingOp<'c> {
    ctx.world.ibcast_shared(j, p, Cat::DenseComm)
}
fn forward(&self, ctx: &Ctx) {
    let mut pending = self.overlap.then(|| self.issue_fetch(ctx, 0));
    for j in 0..p {
        let h = match pending.take() {
            Some(op) => {
                if j + 1 < p {
                    pending = Some(self.issue_fetch(ctx, j + 1));
                }
                op.wait()
            }
            None => ctx.world.bcast_shared(j, p, Cat::DenseComm),
        };
    }
}
";
        assert!(lint(DIST, src).is_empty());
    }

    #[test]
    fn closure_issue_helpers_are_scoped() {
        // Same closure name in two functions; each resolves within its
        // own function only (the 2D/3D trainers both name theirs
        // `issue`).
        let src = "\
fn a(&self, ctx: &Ctx) {
    let issue = |s: usize| ctx.world.ibcast_shared(s, p, Cat::DenseComm);
    let mut pending = self.overlap.then(|| issue(0));
    let h = match pending.take() {
        Some(op) => op.wait(),
        None => ctx.world.bcast_shared(0, p, Cat::DenseComm),
    };
}
fn b(&self, ctx: &Ctx) {
    let issue = |s: usize| ctx.world.igather_rows(s, p, &n, e, Cat::SparseComm);
    let mut pending = self.overlap.then(|| issue(0));
    let h = match pending.take() {
        Some(op) => op.wait(),
        None => ctx.world.gather_rows(0, p, &n, e, Cat::SparseComm),
    };
}
";
        assert!(lint(DIST, src).is_empty());
    }

    #[test]
    fn wait_only_fetch_match_is_skipped() {
        // `Fetch::wait`-style matches issue nothing in any arm: no
        // finding even though the patterns are enum paths.
        let src = "\
fn wait(self, needed: &Needed) -> Out {
    match self {
        Fetch::Dense(op) => Out::Dense(op.wait()),
        Fetch::Sparse(op) => Out::Sparse(op.wait()),
    }
}
";
        assert!(lint(DIST, src).is_empty());
    }

    #[test]
    fn collective_order_allow_marker_suppresses() {
        let src = "\
fn step(&self, ctx: &Ctx) {
    // lint:allow(collective-order): dense path intentionally richer here
    match self.comm_mode {
        CommMode::Dense => { let y = ctx.world.allreduce_mat(&m, Cat::DenseComm); }
        CommMode::SparsityAware => { let h = ctx.world.gather_rows(j, p, &n, e, Cat::SparseComm); }
    }
}
";
        assert!(lint(DIST, src).is_empty());
    }

    // ---- Analysis: lock-order ------------------------------------------

    const COMM: &str = "crates/comm/src/hub.rs";

    #[test]
    fn inverted_lock_pair_is_a_cycle() {
        let src = "\
impl Hub {
    fn a(&self) {
        let g = lock(&self.states);
        let h = lock(&self.history);
    }
    fn b(&self) {
        let g = lock(&self.history);
        let h = lock(&self.states);
    }
}
";
        let v = lint(COMM, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::LockOrder);
        assert!(v[0].message.contains("cyclic"), "{}", v[0].message);
    }

    #[test]
    fn consistent_lock_order_passes() {
        let src = "\
impl Hub {
    fn a(&self) {
        let g = lock(&self.states);
        let h = lock(&self.history);
    }
    fn b(&self) {
        let g = lock(&self.states);
        let h = lock(&self.history);
    }
}
";
        assert!(lint(COMM, src).is_empty());
    }

    #[test]
    fn drop_releases_before_second_acquire() {
        // a: states then (after drop) history; b: history then states.
        // Without the drop this would be a cycle; with it there is no
        // states→history edge.
        let src = "\
impl Hub {
    fn a(&self) {
        let g = lock(&self.states);
        drop(g);
        let h = lock(&self.history);
    }
    fn b(&self) {
        let g = lock(&self.history);
        let h = lock(&self.states);
    }
}
";
        assert!(lint(COMM, src).is_empty());
    }

    #[test]
    fn block_scope_releases_guard() {
        let src = "\
impl Hub {
    fn a(&self) {
        {
            let g = lock(&self.states);
        }
        let h = lock(&self.history);
    }
    fn b(&self) {
        let g = lock(&self.history);
        let h = lock(&self.states);
    }
}
";
        assert!(lint(COMM, src).is_empty());
    }

    #[test]
    fn reacquire_via_callee_is_flagged() {
        let src = "\
impl Hub {
    fn outer(&self) {
        let g = self.state.lock().unwrap_or_else(recover);
        self.helper();
    }
    fn helper(&self) {
        let g = self.state.lock().unwrap_or_else(recover);
    }
}
";
        let v = lint(COMM, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::LockOrder);
        assert!(v[0].message.contains("re-acquires"), "{}", v[0].message);
    }

    #[test]
    fn guard_returning_helper_holds_at_call_site() {
        // `self.lock()` returns a MutexGuard over `state`; calling it
        // twice without dropping is a deterministic deadlock.
        let src = "\
impl Hub {
    fn lock(&self) -> MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(recover)
    }
    fn double(&self) {
        let a = self.lock();
        let b = self.lock();
    }
}
";
        let v = lint(COMM, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::LockOrder);
        assert!(v[0].message.contains("already held"), "{}", v[0].message);
    }

    #[test]
    fn lock_unwrap_outside_blessed_helpers_is_flagged() {
        let src = "fn f(&self) { let g = self.state.lock().unwrap(); }\n";
        let v = lint(COMM, src);
        assert!(
            v.iter()
                .any(|f| f.rule == Rule::LockOrder && f.message.contains("poisoning")),
            "{v:?}"
        );
        // Poison-recovering forms pass the lock-order rule.
        let ok =
            "fn f(&self) { let g = self.state.lock().unwrap_or_else(PoisonError::into_inner); }\n";
        assert!(lint(COMM, ok).iter().all(|f| f.rule != Rule::LockOrder));
    }

    #[test]
    fn lock_order_outside_comm_is_not_analyzed() {
        let src = "\
fn a(&self) { let g = lock(&self.x); let h = lock(&self.y); }
fn b(&self) { let g = lock(&self.y); let h = lock(&self.x); }
";
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }

    // ---- Analysis: frame-exhaustiveness --------------------------------

    fn frame_sources(frame: &str, proc_: &str) -> Vec<Finding> {
        lint_sources(&[
            (PathBuf::from("crates/comm/src/frame.rs"), frame.to_string()),
            (PathBuf::from("crates/comm/src/proc.rs"), proc_.to_string()),
        ])
    }

    #[test]
    fn unhandled_frame_kind_is_flagged() {
        let frame = "pub enum FrameKind { Hello = 1, Deposit = 2, Goodbye = 3 }\n";
        let proc_ = "\
fn on_frame(&self, fr: Frame) {
    match fr.kind {
        FrameKind::Hello => self.on_hello(fr),
        FrameKind::Deposit => self.on_deposit(fr),
        other => self.protocol_error(other),
    }
}
";
        let v = frame_sources(frame, proc_);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FrameExhaustiveness);
        assert!(v[0].message.contains("Goodbye"));
        assert!(v[0].file.to_string_lossy().ends_with("frame.rs"));
    }

    #[test]
    fn fully_dispatched_frame_kinds_pass() {
        let frame = "pub enum FrameKind { Hello = 1, Deposit = 2 }\n";
        let proc_ = "\
fn accept(&self, r: Result<Frame, E>) {
    match r {
        Ok(fr) if fr.kind == FrameKind::Hello => self.register(fr),
        other => self.reject(other),
    }
}
fn on_frame(&self, fr: Frame) {
    match fr.kind {
        FrameKind::Deposit => self.on_deposit(fr),
        other => self.protocol_error(other),
    }
}
";
        assert!(frame_sources(frame, proc_).is_empty());
    }

    #[test]
    fn send_sites_do_not_count_as_dispatch() {
        // Constructing/sending a variant is not handling it.
        let frame = "pub enum FrameKind { Hello = 1, Deposit = 2 }\n";
        let proc_ = "\
fn send_all(&self) {
    self.send(FrameKind::Hello, &hello);
    self.send(FrameKind::Deposit, &bytes);
}
fn on_frame(&self, fr: Frame) {
    match fr.kind {
        FrameKind::Hello => self.on_hello(fr),
        other => self.protocol_error(other),
    }
}
";
        let v = frame_sources(frame, proc_);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Deposit"));
    }

    #[test]
    fn frame_analysis_needs_both_files() {
        let frame = "pub enum FrameKind { Hello = 1, Orphan = 2 }\n";
        let v = lint_sources(&[(PathBuf::from("crates/comm/src/frame.rs"), frame.to_string())]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn uncovered_precision_tag_is_flagged() {
        // The Precision obligation is self-contained to frame.rs: a
        // variant without a codec match arm rides a wildcard.
        let frame = "\
pub enum Precision { F64, F32, Bf16 }
impl Precision {
    fn bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            _ => 4,
        }
    }
}
";
        let v = lint_sources(&[(PathBuf::from("crates/comm/src/frame.rs"), frame.to_string())]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|f| f.rule == Rule::FrameExhaustiveness));
        assert!(v.iter().any(|f| f.message.contains("Precision::F32")));
        assert!(v.iter().any(|f| f.message.contains("Precision::Bf16")));
    }

    #[test]
    fn fully_matched_precision_tags_pass() {
        let frame = "\
pub enum Precision { F64, F32 }
impl Precision {
    fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
        }
    }
}
";
        let v = lint_sources(&[(PathBuf::from("crates/comm/src/frame.rs"), frame.to_string())]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn precision_construction_sites_do_not_count_as_coverage() {
        let frame = "\
pub enum Precision { F64, F32 }
fn default_precision() -> Precision { Precision::F64 }
fn narrow() -> Precision { Precision::F32 }
";
        let v = lint_sources(&[(PathBuf::from("crates/comm/src/frame.rs"), frame.to_string())]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no codec match over it"));
    }

    #[test]
    fn precision_outside_frame_rs_is_not_checked() {
        // Only frame.rs declares wire tags; a Precision enum elsewhere
        // (e.g. a fixture or an unrelated crate) is out of scope.
        let v = lint(LIB, "pub enum Precision { F64, F32 }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- Rule: scalar-hot-loop -----------------------------------------

    const KERNEL_HOT: &str = "crates/dense/src/ops.rs";

    #[test]
    fn flags_indexed_mac_loop_outside_blessed_modules() {
        let src = "\
fn naive(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] += a[i] * b[j];
        }
    }
}
";
        let v = lint(KERNEL_HOT, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ScalarHotLoop);
        assert_eq!(v[0].severity, Severity::Error);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn flags_deref_store_mac_loop() {
        let src = "\
fn axpy_rows(crow: &mut [f64], brow: &[f64], aval: f64) {
    for (cj, &bval) in crow.iter_mut().zip(brow) {
        *cj += aval * bval;
    }
}
";
        let v = lint(KERNEL_HOT, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ScalarHotLoop);
    }

    #[test]
    fn blessed_microkernel_modules_are_exempt() {
        let src = "\
fn micro(c: &mut [f64], a: &[f64], b: &[f64]) {
    for j in 0..8 {
        c[j] += a[j] * b[j];
    }
}
";
        for blessed in [
            "crates/dense/src/gemm.rs",
            "crates/dense/src/reference.rs",
            "crates/sparse/src/spmm.rs",
            "crates/sparse/src/reference.rs",
        ] {
            assert!(lint(blessed, src).is_empty(), "{blessed} must be blessed");
        }
        // The same loop in a non-kernel crate is also out of scope.
        assert!(lint("crates/core/src/gcn.rs", src).is_empty());
    }

    #[test]
    fn scalar_offset_arithmetic_passes() {
        // No element access on either side: index bookkeeping, not a
        // per-element MAC.
        let src = "\
fn walk(rows: usize, stride: usize) -> usize {
    let mut off = 0;
    for i in 0..rows {
        off += i * stride;
    }
    off
}
";
        assert!(lint(KERNEL_HOT, src).is_empty());
    }

    #[test]
    fn mac_outside_any_loop_passes() {
        let src = "fn fma1(c: &mut [f64], a: f64, b: f64) { c[0] += a * b; }\n";
        assert!(lint(KERNEL_HOT, src).is_empty());
    }

    #[test]
    fn deref_rhs_without_multiply_passes() {
        let src = "\
fn accumulate(c: &mut [f64], parts: &[f64]) {
    for (i, p) in parts.iter().enumerate() {
        c[i] += *p;
    }
}
";
        assert!(lint(KERNEL_HOT, src).is_empty());
    }

    #[test]
    fn impl_for_blocks_are_not_loops() {
        // `impl … for T { … }` and HRTB `for<'a>` must not be mistaken
        // for loop bodies.
        let src = "\
impl AddMul for Acc {
    fn step(&mut self, c: &mut [f64], a: f64, b: f64) {
        c[0] += a * b;
    }
}
";
        assert!(lint(KERNEL_HOT, src).is_empty());
    }

    #[test]
    fn scalar_hot_loop_allow_marker_and_tests_are_exempt() {
        let allowed = "\
fn special(c: &mut [f64], a: &[f64], b: &[f64]) {
    for j in 0..c.len() {
        // lint:allow(scalar-hot-loop): pattern-dependent fold order
        c[j] += a[j] * b[j];
    }
}
";
        assert!(lint(KERNEL_HOT, allowed).is_empty());
        let in_test = "\
#[cfg(test)]
mod tests {
    fn oracle(c: &mut [f64], a: &[f64], b: &[f64]) {
        for j in 0..c.len() {
            c[j] += a[j] * b[j];
        }
    }
}
";
        assert!(lint(KERNEL_HOT, in_test).is_empty());
    }

    #[test]
    fn sparse_crate_is_covered_by_scalar_hot_loop() {
        let src = "\
fn scatter(c: &mut [f64], vals: &[f64], idx: &[usize], x: f64) {
    for (k, &j) in idx.iter().enumerate() {
        c[j] += vals[k] * x;
    }
}
";
        let v = lint("crates/sparse/src/coo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ScalarHotLoop);
    }

    // ---- Baseline and JSON ---------------------------------------------

    fn sample_finding() -> Finding {
        Finding {
            file: PathBuf::from("crates/foo/src/lib.rs"),
            line: 3,
            col: 7,
            span: (40, 46),
            rule: Rule::UnwrapInLib,
            severity: Severity::Error,
            message: "`.unwrap(` in library code outside tests".to_string(),
            excerpt: "x.unwrap()".to_string(),
        }
    }

    #[test]
    fn baseline_roundtrip() {
        let f = sample_finding();
        let text = render_baseline(std::slice::from_ref(&f));
        let rep = apply_baseline(vec![f], &text);
        assert!(rep.fresh.is_empty());
        assert_eq!(rep.baselined.len(), 1);
        assert!(rep.stale.is_empty());
    }

    #[test]
    fn baseline_is_line_number_independent() {
        let mut f = sample_finding();
        let text = render_baseline(std::slice::from_ref(&f));
        f.line = 99;
        let rep = apply_baseline(vec![f], &text);
        assert!(rep.fresh.is_empty());
        assert_eq!(rep.baselined.len(), 1);
    }

    #[test]
    fn stale_and_fresh_are_reported() {
        let f = sample_finding();
        let text = render_baseline(std::slice::from_ref(&f));
        let mut other = f.clone();
        other.excerpt = "y.unwrap()".to_string();
        let rep = apply_baseline(vec![other], &text);
        assert_eq!(rep.fresh.len(), 1);
        assert!(rep.baselined.is_empty());
        assert_eq!(rep.stale.len(), 1);
    }

    #[test]
    fn baseline_multiset_counts() {
        let f = sample_finding();
        let text = render_baseline(std::slice::from_ref(&f));
        // Two identical findings, one baseline entry: one stays fresh.
        let rep = apply_baseline(vec![f.clone(), f], &text);
        assert_eq!(rep.baselined.len(), 1);
        assert_eq!(rep.fresh.len(), 1);
    }

    #[test]
    fn json_report_shape() {
        let f = sample_finding();
        let rep = apply_baseline(vec![f], "");
        let json = render_json("/repo", &rep);
        assert!(json.starts_with("{\"version\":1,\"tool\":\"cagnet-xtask-lint\""));
        assert!(json.contains(
            "\"counts\":{\"total\":1,\"fresh\":1,\"baselined\":0,\"error\":1,\"warning\":0}"
        ));
        assert!(json.contains("\"rule\":\"unwrap\""));
        assert!(json.contains("\"span\":[40,46]"));
        assert!(json.contains("\"baselined\":false"));
        assert!(json.ends_with("\n"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let mut f = sample_finding();
        f.excerpt = "say \"hi\" \\ tab\there".to_string();
        let rep = apply_baseline(vec![f], "");
        let json = render_json("/repo", &rep);
        assert!(json.contains("say \\\"hi\\\" \\\\ tab\\there"));
    }
}
