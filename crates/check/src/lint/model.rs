//! Brace-aware file model built on the token stream: line table,
//! `#[cfg(test)]` ranges, function/closure spans, match-arm
//! segmentation, and validated `lint:allow(...)` markers.
//!
//! Everything here works on *code token indices* (comments filtered
//! out) so the rules and analyses never see comment or string interior
//! text as code.

use super::lexer::{self, Span, TokKind, Token};

/// A function item: `fn name … { body }` (or a bodyless declaration).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Code-token index of the `fn` keyword.
    pub kw: usize,
    /// Code-token index of the function's name identifier.
    pub name_idx: usize,
    /// Half-open code-token range of the header: `[kw, body-open)` (or
    /// through the terminating `;` for declarations).
    pub header: (usize, usize),
    /// Inclusive code-token range `[open-brace, close-brace]` of the
    /// body, when the function has one.
    pub body: Option<(usize, usize)>,
}

/// A named local closure: `let [mut] name = [move] |…| body`. Recorded
/// so analyses can resolve `name(args)` calls within the enclosing
/// function (the trainers use these for stage-issue helpers).
#[derive(Clone, Debug)]
pub struct ClosureItem {
    /// Code-token index of the closure's binding name.
    pub name_idx: usize,
    /// Inclusive code-token range of the closure body (braces included
    /// for block bodies).
    pub body: (usize, usize),
    /// Index into [`FileModel::functions`] of the enclosing function,
    /// when there is one. Closure resolution is scoped to it.
    pub owner: Option<usize>,
}

/// One `pattern [if guard] => body` arm of a match.
#[derive(Clone, Debug)]
pub struct MatchArm {
    /// Half-open code-token range of the pattern *including* any `if`
    /// guard (everything before `=>`).
    pub pattern: (usize, usize),
    /// Half-open code-token range of the arm body.
    pub body: (usize, usize),
}

/// A `match scrutinee { arms }` expression.
#[derive(Clone, Debug)]
pub struct MatchItem {
    /// Code-token index of the `match` keyword.
    pub kw: usize,
    /// Half-open code-token range of the scrutinee expression.
    pub scrutinee: (usize, usize),
    /// The arms, in source order.
    pub arms: Vec<MatchArm>,
}

/// A `lint:allow(<name>)` marker found in a comment token.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// 1-based line the marker sits on.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub name: String,
    /// Byte span of the name, for unknown-rule findings.
    pub span: Span,
}

/// Token-level model of one source file.
pub struct FileModel<'s> {
    /// The file's source text.
    pub src: &'s str,
    /// Code tokens only (comments stripped).
    pub code: Vec<Token>,
    /// Comment tokens, for marker scanning.
    pub comments: Vec<Token>,
    /// Byte offsets of line starts, for byte → line/col mapping.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// All function items, in source order (nested fns included).
    pub functions: Vec<FnItem>,
    /// Named local closures, in source order.
    pub closures: Vec<ClosureItem>,
    /// All match expressions, in source order.
    pub matches: Vec<MatchItem>,
    /// All `lint:allow` markers (valid and unknown alike).
    pub allows: Vec<AllowMarker>,
}

impl<'s> FileModel<'s> {
    /// Lex and segment `src`.
    pub fn new(src: &'s str) -> FileModel<'s> {
        let tokens = lexer::lex(src);
        let mut code = Vec::with_capacity(tokens.len());
        let mut comments = Vec::new();
        for t in tokens {
            if t.is_comment() {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut m = FileModel {
            src,
            code,
            comments,
            line_starts,
            test_ranges: Vec::new(),
            functions: Vec::new(),
            closures: Vec::new(),
            matches: Vec::new(),
            allows: Vec::new(),
        };
        m.find_test_ranges();
        m.find_functions();
        m.find_closures();
        m.find_matches();
        m.find_allows();
        m
    }

    /// The text of code token `i`.
    pub fn text(&self, i: usize) -> &'s str {
        self.code[i].text(self.src)
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// 1-based column (byte-based) of a byte offset.
    pub fn col_of(&self, byte: usize) -> usize {
        let line = self.line_of(byte);
        byte - self.line_starts[line - 1] + 1
    }

    /// The source line containing `byte`, trimmed.
    pub fn line_text(&self, byte: usize) -> &'s str {
        let line = self.line_of(byte);
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.src.len());
        self.src[start..end].trim()
    }

    /// Is this byte inside a `#[cfg(test)]` item?
    pub fn in_test(&self, byte: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| byte >= s && byte < e)
    }

    /// Is there a `lint:allow(<name>)` marker on `line` or the line
    /// directly above it?
    pub fn allow_on(&self, line: usize, name: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.name == name && (a.line == line || a.line + 1 == line))
    }

    /// Code-token index of the matching close for the open delimiter at
    /// `open` (`{`/`}`, `(`/`)`, `[`/`]`). Returns `None` when the file
    /// ends unbalanced.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.code[open].kind {
            TokKind::Punct(b'{') => (b'{', b'}'),
            TokKind::Punct(b'(') => (b'(', b')'),
            TokKind::Punct(b'[') => (b'[', b']'),
            _ => return None,
        };
        let mut depth = 0usize;
        for i in open..self.code.len() {
            match self.code[i].kind {
                TokKind::Punct(x) if x == o => depth += 1,
                TokKind::Punct(x) if x == c => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Is code token `i` the first of an adjacent `=>` pair?
    pub fn is_fat_arrow(&self, i: usize) -> bool {
        self.code[i].is_punct(b'=')
            && i + 1 < self.code.len()
            && self.code[i + 1].is_punct(b'>')
            && self.code[i].span.end == self.code[i + 1].span.start
    }

    /// Is code token `i` the first of an adjacent `::` pair?
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.code[i].is_punct(b':')
            && i + 1 < self.code.len()
            && self.code[i + 1].is_punct(b':')
            && self.code[i].span.end == self.code[i + 1].span.start
    }

    /// The innermost function whose body contains code token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (fi, f) in self.functions.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if i >= open && i <= close {
                    let better = match best {
                        Some(b) => {
                            let (bo, _) = self.functions[b].body.unwrap_or((0, usize::MAX));
                            open > bo
                        }
                        None => true,
                    };
                    if better {
                        best = Some(fi);
                    }
                }
            }
        }
        best
    }

    /// `#[cfg(test)]` attribute → mark through the following item.
    fn find_test_ranges(&mut self) {
        let n = self.code.len();
        let mut i = 0;
        while i < n {
            if !self.code[i].is_punct(b'#') || i + 1 >= n || !self.code[i + 1].is_punct(b'[') {
                i += 1;
                continue;
            }
            let Some(close) = self.matching_close(i + 1) else {
                break;
            };
            let has_cfg_test = {
                let mut cfg = false;
                let mut test = false;
                for j in i + 2..close {
                    if self.code[j].kind == TokKind::Ident {
                        match self.text(j) {
                            "cfg" => cfg = true,
                            "test" => test = true,
                            _ => {}
                        }
                    }
                }
                cfg && test
            };
            if !has_cfg_test {
                i = close + 1;
                continue;
            }
            // Mark from the `#` through the end of the following item:
            // the first `;` before any `{`, else the matching `}` of the
            // first `{`.
            let start_byte = self.code[i].span.start;
            let mut j = close + 1;
            let mut end_byte = self.src.len();
            while j < n {
                if self.code[j].is_punct(b';') {
                    end_byte = self.code[j].span.end;
                    break;
                }
                if self.code[j].is_punct(b'{') {
                    if let Some(c) = self.matching_close(j) {
                        end_byte = self.code[c].span.end;
                        j = c;
                    }
                    break;
                }
                j += 1;
            }
            self.test_ranges.push((start_byte, end_byte));
            i = j + 1;
        }
    }

    fn find_functions(&mut self) {
        let n = self.code.len();
        let mut i = 0;
        while i < n {
            if !(self.code[i].kind == TokKind::Ident && self.text(i) == "fn") {
                i += 1;
                continue;
            }
            // `fn` as a type (`fn(usize) -> u8`) has no name ident next.
            if i + 1 >= n || self.code[i + 1].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name_idx = i + 1;
            // Header runs to the first `{` or `;` at ()/[] depth 0.
            let mut depth = 0i32;
            let mut j = name_idx + 1;
            let mut open = None;
            while j < n {
                match self.code[j].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                    TokKind::Punct(b'{') if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(b';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let body = open.and_then(|o| self.matching_close(o).map(|c| (o, c)));
            self.functions.push(FnItem {
                kw: i,
                name_idx,
                header: (i, open.unwrap_or(j.min(n))),
                body,
            });
            i = name_idx + 1;
        }
    }

    fn find_closures(&mut self) {
        let n = self.code.len();
        let mut i = 0;
        while i + 3 < n {
            if !(self.code[i].kind == TokKind::Ident && self.text(i) == "let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if j < n && self.code[j].kind == TokKind::Ident && self.text(j) == "mut" {
                j += 1;
            }
            if !(j < n && self.code[j].kind == TokKind::Ident) {
                i += 1;
                continue;
            }
            let name_idx = j;
            j += 1;
            if !(j < n && self.code[j].is_punct(b'=')) {
                i += 1;
                continue;
            }
            j += 1;
            if j < n && self.code[j].kind == TokKind::Ident && self.text(j) == "move" {
                j += 1;
            }
            if !(j < n && self.code[j].is_punct(b'|')) {
                i += 1;
                continue;
            }
            // Parameter list: scan to the closing `|` (an immediately
            // adjacent `|` means empty params).
            let mut k = j + 1;
            let mut pdepth = 0i32;
            while k < n {
                match self.code[k].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => {
                        pdepth += 1
                    }
                    TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'>') => {
                        pdepth -= 1
                    }
                    TokKind::Punct(b'|') if pdepth <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= n {
                i += 1;
                continue;
            }
            // Optional `-> Type`, then the body.
            let mut b = k + 1;
            while b < n && !self.code[b].is_punct(b'{') && !self.code[b].is_punct(b';') {
                // Expression body without braces: ends at `;` at depth 0.
                if self.code[b].is_punct(b'-')
                    || self.code[b].kind == TokKind::Ident
                    || self.code[b].is_punct(b'>')
                    || self.code[b].is_punct(b'&')
                    || self.is_path_sep_at(b)
                {
                    b += 1;
                    continue;
                }
                break;
            }
            let body = if b < n && self.code[b].is_punct(b'{') {
                match self.matching_close(b) {
                    Some(c) => (b, c),
                    None => (b, n.saturating_sub(1)),
                }
            } else {
                // Expression body: through the terminating `;` at depth 0.
                let mut depth = 0i32;
                let mut e = k + 1;
                while e < n {
                    match self.code[e].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                            depth += 1
                        }
                        TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        TokKind::Punct(b';') if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                (k + 1, e.min(n.saturating_sub(1)))
            };
            let owner = self.enclosing_fn(name_idx);
            self.closures.push(ClosureItem {
                name_idx,
                body,
                owner,
            });
            i = name_idx + 1;
        }
    }

    fn find_matches(&mut self) {
        let n = self.code.len();
        for kw in 0..n {
            if !(self.code[kw].kind == TokKind::Ident && self.text(kw) == "match") {
                continue;
            }
            // Method position (`x.match`) cannot occur — `match` is a
            // keyword — but guard against field-like uses anyway.
            if kw > 0 && self.code[kw - 1].is_punct(b'.') {
                continue;
            }
            // Scrutinee: to the first `{` at ()/[] depth 0.
            let mut depth = 0i32;
            let mut open = None;
            let mut j = kw + 1;
            while j < n {
                match self.code[j].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                    TokKind::Punct(b'{') if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(b';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let Some(close) = self.matching_close(open) else {
                continue;
            };
            let mut arms = Vec::new();
            let mut a = open + 1;
            while a < close {
                // Pattern (plus guard) to `=>` at depth 0 within the arm.
                let pat_start = a;
                let mut depth = 0i32;
                let mut arrow = None;
                let mut p = a;
                while p < close {
                    match self.code[p].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                            depth += 1
                        }
                        TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                            depth -= 1
                        }
                        TokKind::Punct(b'=') if depth == 0 && self.is_fat_arrow(p) => {
                            arrow = Some(p);
                            break;
                        }
                        _ => {}
                    }
                    p += 1;
                }
                let Some(arrow) = arrow else { break };
                let body_start = arrow + 2;
                let body_end;
                let next_arm;
                if body_start < close && self.code[body_start].is_punct(b'{') {
                    let c = self
                        .matching_close(body_start)
                        .unwrap_or(close.saturating_sub(1))
                        .min(close);
                    body_end = c + 1;
                    next_arm = if c + 1 < close && self.code[c + 1].is_punct(b',') {
                        c + 2
                    } else {
                        c + 1
                    };
                } else {
                    // Expression body: to `,` at depth 0 or the match end.
                    let mut depth = 0i32;
                    let mut e = body_start;
                    while e < close {
                        match self.code[e].kind {
                            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                                depth += 1
                            }
                            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                                depth -= 1
                            }
                            TokKind::Punct(b',') if depth == 0 => break,
                            _ => {}
                        }
                        e += 1;
                    }
                    body_end = e;
                    next_arm = if e < close { e + 1 } else { e };
                }
                arms.push(MatchArm {
                    pattern: (pat_start, arrow),
                    body: (body_start, body_end),
                });
                a = next_arm.max(pat_start + 1);
            }
            self.matches.push(MatchItem {
                kw,
                scrutinee: (kw + 1, open),
                arms,
            });
        }
    }

    fn is_path_sep_at(&self, i: usize) -> bool {
        self.code[i].is_punct(b':')
    }

    /// Scan comment tokens for `lint:allow(<name>)` markers. Names are
    /// runs of `[A-Za-z0-9_-]`; anything else between the parens (for
    /// example the `<rule>` placeholder in docs) is not a marker.
    fn find_allows(&mut self) {
        const NEEDLE: &str = "lint:allow(";
        for c in &self.comments {
            let text = c.text(self.src);
            let mut from = 0;
            while let Some(pos) = text[from..].find(NEEDLE) {
                let name_start = from + pos + NEEDLE.len();
                let rest = &text[name_start..];
                let name_len = rest
                    .bytes()
                    .take_while(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
                    .count();
                if name_len > 0 && rest.as_bytes().get(name_len) == Some(&b')') {
                    let abs = c.span.start + name_start;
                    self.allows.push(AllowMarker {
                        line: self.line_of(abs),
                        name: rest[..name_len].to_string(),
                        span: Span {
                            start: abs,
                            end: abs + name_len,
                        },
                    });
                }
                from = name_start;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_mapping() {
        let m = FileModel::new("ab\ncd\nef");
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(3), 2);
        assert_eq!(m.col_of(4), 2);
        assert_eq!(m.line_text(4), "cd");
    }

    #[test]
    fn cfg_test_range_covers_mod() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let m = FileModel::new(src);
        assert_eq!(m.test_ranges.len(), 1);
        let unwrap_pos = src.find("fn t").expect("present");
        assert!(m.in_test(unwrap_pos));
        assert!(!m.in_test(src.find("fn lib").expect("present")));
        assert!(!m.in_test(src.find("fn after").expect("present")));
    }

    #[test]
    fn functions_and_bodies() {
        let src = "fn a(x: u8) -> u8 { x }\nfn b();\nimpl T { fn c(&self) { inner(); } }\n";
        let m = FileModel::new(src);
        let names: Vec<&str> = m.functions.iter().map(|f| m.text(f.name_idx)).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(m.functions[0].body.is_some());
        assert!(m.functions[1].body.is_none());
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let m = FileModel::new("fn a(cb: fn(usize) -> u8) -> u8 { cb(1) }");
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn closures_are_scoped_to_fns() {
        let src = "fn a() { let issue = |s: usize| { go(s) }; issue(0); }\nfn b() { let issue = |s: usize| { other(s) }; }";
        let m = FileModel::new(src);
        assert_eq!(m.closures.len(), 2);
        assert_eq!(m.closures[0].owner, Some(0));
        assert_eq!(m.closures[1].owner, Some(1));
    }

    #[test]
    fn match_arms_segment() {
        let src = "fn f(x: Option<u8>) -> u8 { match x { Some(v) => v, None => { 0 } } }";
        let m = FileModel::new(src);
        assert_eq!(m.matches.len(), 1);
        let ma = &m.matches[0];
        assert_eq!(ma.arms.len(), 2);
        let pat0: Vec<&str> = (ma.arms[0].pattern.0..ma.arms[0].pattern.1)
            .map(|i| m.text(i))
            .collect();
        assert_eq!(pat0.join(""), "Some(v)");
    }

    #[test]
    fn match_guard_stays_in_pattern() {
        let src = "fn f() { match r { Ok(fr) if fr.kind == FrameKind::Hello => a(), _ => b(), } }";
        let m = FileModel::new(src);
        let ma = &m.matches[0];
        assert_eq!(ma.arms.len(), 2);
        let pat: String = (ma.arms[0].pattern.0..ma.arms[0].pattern.1)
            .map(|i| m.text(i))
            .collect();
        assert!(pat.contains("FrameKind"));
        assert!(pat.contains("Hello"));
    }

    #[test]
    fn struct_pattern_braces_do_not_split_arms() {
        let src = "fn f() { match x { Frame { kind, .. } => a(), _ => b(), } }";
        let m = FileModel::new(src);
        assert_eq!(m.matches[0].arms.len(), 2);
    }

    #[test]
    fn nested_match_in_arm_body() {
        let src = "fn f() { match x { A => match y { C => 1, D => 2 }, B => 3, } }";
        let m = FileModel::new(src);
        assert_eq!(m.matches.len(), 2);
        assert_eq!(m.matches[0].arms.len(), 2);
        assert_eq!(m.matches[1].arms.len(), 2);
    }

    #[test]
    fn allow_markers_parse_from_comments_only() {
        let src = "let a = 1; // lint:allow(unwrap): reason\nlet s = \"lint:allow(unwrap)\";\n// docs say lint:allow(<rule>)\n";
        let m = FileModel::new(src);
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].name, "unwrap");
        assert_eq!(m.allows[0].line, 1);
        assert!(m.allow_on(1, "unwrap"));
        assert!(m.allow_on(2, "unwrap"));
        assert!(!m.allow_on(3, "unwrap"));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { leaf(); } }";
        let m = FileModel::new(src);
        let leaf_idx = m
            .code
            .iter()
            .position(|t| t.text(src) == "leaf")
            .expect("leaf token");
        assert_eq!(m.enclosing_fn(leaf_idx), Some(1));
    }
}
