//! A small Rust lexer for the lint pass.
//!
//! Produces a flat token stream with byte spans. It understands exactly
//! the lexical shapes that broke the old line-scanner: string literals
//! with escapes, raw (and byte) strings `r"…"` / `r#"…"#` / `br#"…"#`,
//! char literals including `'"'`, lifetimes vs. char literals, raw
//! identifiers `r#match`, and *nested* block comments. It does not
//! attempt full fidelity (numeric suffixes and exotic literals are
//! lexed loosely) — the rules only need identifiers, punctuation, and a
//! correct classification of "this byte range is a comment/string, not
//! code".

/// A half-open byte range into the lexed source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First byte of the token.
    pub start: usize,
    /// One past the last byte of the token.
    pub end: usize,
}

/// Lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'_` (no closing quote).
    Lifetime,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `'"'`, `b'x'`.
    Char,
    /// A numeric literal (lexed loosely, suffix included).
    Num,
    /// A `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
    /// A single punctuation byte. Multi-byte operators (`=>`, `::`)
    /// appear as adjacent single-byte tokens.
    Punct(u8),
}

/// One lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte range in the source.
    pub span: Span,
}

impl Token {
    /// The token's text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.span.start..self.span.end]
    }

    /// True for comment tokens (excluded from the code-token stream).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when this is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens (whitespace dropped, comments kept). Never
/// fails: malformed input degrades to punctuation tokens or an
/// EOF-terminated literal, which is the right behavior for a linter
/// that may see mid-edit files.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        // Comments.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            out.push(tok(TokKind::LineComment, start, i));
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.push(tok(TokKind::BlockComment, start, i));
            continue;
        }
        // Raw strings, byte strings, raw identifiers.
        if c == b'r' || c == b'b' {
            if let Some(end) = try_string_prefix(b, i) {
                out.push(tok(TokKind::Str, start, end));
                i = end;
                continue;
            }
            if c == b'b' && i + 1 < n && b[i + 1] == b'\'' {
                let end = scan_char(b, i + 1);
                out.push(tok(TokKind::Char, start, end));
                i = end;
                continue;
            }
            if c == b'r' && i + 1 < n && b[i + 1] == b'#' && i + 2 < n && is_ident_start(b[i + 2]) {
                // Raw identifier r#match.
                i += 2;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(tok(TokKind::Ident, start, i));
                continue;
            }
        }
        if is_ident_start(c) {
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(tok(TokKind::Ident, start, i));
            continue;
        }
        if c.is_ascii_digit() {
            while i < n
                && (is_ident_continue(b[i])
                    || (b[i] == b'.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
                // Consume one fractional part at most; `0..n` must stop
                // before the range operator.
                if i < n && b[i] == b'.' && i + 1 < n && b[i + 1] == b'.' {
                    break;
                }
            }
            out.push(tok(TokKind::Num, start, i));
            continue;
        }
        if c == b'"' {
            let end = scan_string(b, i);
            out.push(tok(TokKind::Str, start, end));
            i = end;
            continue;
        }
        if c == b'\'' {
            let (kind, end) = scan_quote(b, i);
            out.push(tok(kind, start, end));
            i = end;
            continue;
        }
        i += 1;
        out.push(tok(TokKind::Punct(c), start, i));
    }
    out
}

fn tok(kind: TokKind, start: usize, end: usize) -> Token {
    Token {
        kind,
        span: Span { start, end },
    }
}

/// Raw / byte string starting at `i` (`r"`, `r#"`, `b"`, `br"`, `br#"`)?
/// Returns the end offset when one is present.
fn try_string_prefix(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < n && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < n && b[j] == b'"' {
            // Scan to `"` followed by `hashes` hash marks.
            j += 1;
            while j < n {
                if b[j] == b'"'
                    && b[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    return Some(j + 1 + hashes);
                }
                j += 1;
            }
            return Some(n);
        }
        return None;
    }
    // Plain byte string b"…".
    if j < n && b[j] == b'"' {
        return Some(scan_string(b, j));
    }
    None
}

/// Cooked string starting at the `"` at `i`; returns the end offset.
fn scan_string(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Char literal starting at the `'` at `i`; returns the end offset (the
/// byte after the closing quote, or a best-effort end for malformed
/// input).
fn scan_char(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    if j < n && b[j] == b'\\' {
        let esc = j + 1;
        j = esc + 1;
        // \u{…} escapes run to the closing brace.
        if esc < n && b[esc] == b'u' && j < n && b[j] == b'{' {
            while j < n && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
    } else if j < n {
        // Skip one (possibly multi-byte) character.
        j += 1;
        while j < n && (b[j] & 0xC0) == 0x80 {
            j += 1;
        }
    }
    if j < n && b[j] == b'\'' {
        j + 1
    } else {
        j.min(n)
    }
}

/// Disambiguate `'` between a char literal and a lifetime.
fn scan_quote(b: &[u8], i: usize) -> (TokKind, usize) {
    let n = b.len();
    if i + 1 >= n {
        return (TokKind::Punct(b'\''), i + 1);
    }
    if b[i + 1] == b'\\' {
        return (TokKind::Char, scan_char(b, i));
    }
    if is_ident_start(b[i + 1]) {
        // Identifier run after the quote: a trailing `'` right after one
        // character means a char literal ('a', '"' handled below); any
        // longer run (or none) is a lifetime.
        let mut j = i + 1;
        while j < n && is_ident_continue(b[j]) {
            j += 1;
        }
        // Multi-byte char start also lands in is_ident_start via >=0x80.
        let one_char_end = {
            let mut k = i + 2;
            while k < n && (b[k] & 0xC0) == 0x80 {
                k += 1;
            }
            k
        };
        if j == one_char_end && j < n && b[j] == b'\'' {
            return (TokKind::Char, j + 1);
        }
        return (TokKind::Lifetime, j);
    }
    // Non-identifier char: '"', ' ', '(' … — a char literal.
    (TokKind::Char, scan_char(b, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("let x = foo.bar();"),
            vec!["let", "x", "=", "foo", ".", "bar", "(", ")", ";"]
        );
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = lex("call(\"a ) b \\\" c\")");
        assert_eq!(
            toks.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![
                TokKind::Ident,
                TokKind::Punct(b'('),
                TokKind::Str,
                TokKind::Punct(b')')
            ]
        );
    }

    #[test]
    fn char_literal_with_quote_does_not_poison() {
        // The old sanitize() treated the `"` inside '"' as opening a
        // string for the rest of the line.
        let src = "let c = '\"'; x.unwrap();";
        let t = texts(src);
        assert!(t.contains(&".".to_string()));
        assert!(t.contains(&"unwrap".to_string()));
        let toks = lex(src);
        assert_eq!(toks[3].kind, TokKind::Char);
        assert_eq!(toks[3].text(src), "'\"'");
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = "let s = r\"x.unwrap()\"; let t = r#\"y.expect(\"z\")\"#;";
        let toks = lex(src);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(strs, vec!["r\"x.unwrap()\"", "r#\"y.expect(\"z\")\"#"]);
        // No unwrap/expect identifier leaks out of the raw strings.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && matches!(t.text(src), "unwrap" | "expect")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"abc\"; let c = b'x'; let r = br#\"d\"e\"#;";
        let toks = lex(src);
        assert_eq!(toks[3].kind, TokKind::Str);
        assert_eq!(toks[3].text(src), "b\"abc\"");
        assert_eq!(toks[8].kind, TokKind::Char);
        assert_eq!(toks[8].text(src), "b'x'");
        assert_eq!(toks[13].kind, TokKind::Str);
        assert_eq!(toks[13].text(src), "br#\"d\"e\"#");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'c'; let u = '_'; let l: &'_ str = x; }";
        let toks = lex(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'_"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'c'", "'_'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let a = '\n'; let b = '\''; let c = '\u{1F600}';";
        let chars: Vec<TokKind> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.kind)
            .collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let src = "before /* outer /* inner */ still-comment */ after";
        let t = texts(src);
        assert_eq!(t[0], "before");
        assert_eq!(t[2], "after");
        assert_eq!(lex(src)[1].kind, TokKind::BlockComment);
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let src = "a // comment .unwrap()\nb";
        let toks = lex(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[2].text(src), "b");
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#match = 1;";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokKind::Ident);
        assert_eq!(toks[1].text(src), "r#match");
    }

    #[test]
    fn numbers_do_not_eat_range_operator() {
        assert_eq!(texts("0..n"), vec!["0", ".", ".", "n"]);
        assert_eq!(texts("1.5e3 2.0_f64")[0], "1.5e3");
    }

    #[test]
    fn unterminated_literals_reach_eof() {
        assert_eq!(lex("\"abc").len(), 1);
        assert_eq!(lex("r#\"abc").len(), 1);
    }
}
