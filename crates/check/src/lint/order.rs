//! Collective-order analysis: the static counterpart of the runtime
//! bit-identity tests.
//!
//! Every trainer in `crates/core/src/dist/` must issue the *same
//! collectives in the same order* regardless of which sibling branch
//! runs — `CommMode::Dense` vs `CommMode::SparsityAware` arms, and
//! overlap-on (`Some(op) => op.wait()`) vs overlap-off (`None =>
//! blocking collective`) arms. A divergent branch desynchronizes seq
//! numbers across ranks and deadlocks (or silently breaks
//! bit-identity).
//!
//! Collective issue sites are extracted per function, *interprocedurally
//! within the file*: calls to same-file functions and to `let`-bound
//! closures (the trainers' stage-issue helpers) splice the callee's
//! issue sequence at the call site. Issue kinds are normalized into
//! equivalence classes so that the dense and sparse spellings of the
//! same logical step compare equal (`bcast_shared` ≡ `igather_rows` ≡
//! "fetch": both fetch the remote block for a stage).

use std::collections::{HashMap, HashSet};

use super::lexer::TokKind;
use super::model::FileModel;
use super::{Finding, PathFlags, Rule};

/// One collective issue site (possibly spliced from a callee).
#[derive(Clone, Debug)]
pub(super) struct Event {
    /// Normalized kind class.
    pub class: &'static str,
}

/// Normalize a collective method name into its equivalence class.
/// Dense/sparse and blocking/nonblocking spellings of the same logical
/// step share a class.
fn normalize(name: &str) -> Option<&'static str> {
    Some(match name {
        "bcast"
        | "bcast_shared"
        | "ibcast"
        | "ibcast_shared"
        | "gather_rows"
        | "igather_rows"
        | "gather_rows_refresh"
        | "igather_rows_refresh" => "fetch",
        "allreduce_mat" | "iallreduce_mat" => "allreduce_mat",
        "allgather" | "allgather_shared" => "allgather",
        "allreduce_scalar" => "allreduce_scalar",
        "reduce_scatter_rows" => "reduce_scatter_rows",
        "alltoall" => "alltoall",
        "gather" => "gather",
        "scatter" => "scatter",
        "sendrecv" => "sendrecv",
        "barrier" => "barrier",
        _ => return None,
    })
}

/// Interprocedural (file-local) collective-event extractor with
/// memoized per-function summaries.
struct Extractor<'m, 's> {
    m: &'m FileModel<'s>,
    /// fn name → indices into `m.functions` (for call resolution).
    fns_by_name: HashMap<&'s str, Vec<usize>>,
    /// `match` keyword token index → index into `m.matches`.
    matches_by_kw: HashMap<usize, usize>,
    /// Memoized per-function event sequences.
    memo: HashMap<usize, Vec<Event>>,
    /// Recursion guard.
    visiting: HashSet<usize>,
}

impl<'m, 's> Extractor<'m, 's> {
    fn new(m: &'m FileModel<'s>) -> Self {
        let mut fns_by_name: HashMap<&'s str, Vec<usize>> = HashMap::new();
        for (i, f) in m.functions.iter().enumerate() {
            fns_by_name.entry(m.text(f.name_idx)).or_default().push(i);
        }
        let matches_by_kw = m
            .matches
            .iter()
            .enumerate()
            .map(|(mi, ma)| (ma.kw, mi))
            .collect();
        Extractor {
            m,
            fns_by_name,
            matches_by_kw,
            memo: HashMap::new(),
            visiting: HashSet::new(),
        }
    }

    /// The event sequence of function `fi`'s body.
    fn fn_events(&mut self, fi: usize) -> Vec<Event> {
        if let Some(cached) = self.memo.get(&fi) {
            return cached.clone();
        }
        if !self.visiting.insert(fi) {
            return Vec::new();
        }
        let events = match self.m.functions[fi].body {
            Some((open, close)) => self.walk(open + 1, close, Some(fi)),
            None => Vec::new(),
        };
        self.visiting.remove(&fi);
        self.memo.insert(fi, events.clone());
        events
    }

    /// Collect events from code-token range `[start, end)`, splicing
    /// callee sequences. `scope` is the enclosing function (for closure
    /// resolution); nested fn and named-closure *definition* bodies are
    /// skipped — their events land at call sites.
    fn walk(&mut self, start: usize, end: usize, scope: Option<usize>) -> Vec<Event> {
        let m = self.m;
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            // Skip nested fn definitions.
            if let Some(f) = m.functions.iter().find(|f| f.kw == i) {
                if let Some((_, close)) = f.body {
                    i = close + 1;
                    continue;
                }
            }
            // Skip named-closure definition bodies (events splice at
            // call sites instead).
            if let Some(cl) = m
                .closures
                .iter()
                .find(|c| c.name_idx == i && c.owner == scope)
            {
                i = cl.body.1 + 1;
                continue;
            }
            // A nested match contributes its scrutinee's events plus a
            // *representative* arm (the first): sibling arms are
            // required to be identical by this very analysis, so one
            // stands for all — walking every arm would double-count.
            if let Some(&mi) = self.matches_by_kw.get(&i) {
                let (ss, se) = m.matches[mi].scrutinee;
                let arm0 = m.matches[mi].arms.first().map(|a| a.body);
                let close = m.matching_close(se);
                if let Some(close) = close {
                    let mut events = self.walk(ss, se, scope);
                    if let Some((bs, be)) = arm0 {
                        events.extend(self.walk(bs, be, scope));
                    }
                    out.extend(events);
                    i = close + 1;
                    continue;
                }
            }
            if m.code[i].kind == TokKind::Ident && i + 1 < end && m.code[i + 1].is_punct(b'(') {
                let name = m.text(i);
                let is_method = i > 0 && m.code[i - 1].is_punct(b'.');
                if is_method {
                    if let Some(class) = normalize(name) {
                        out.push(Event { class });
                        i += 2;
                        continue;
                    }
                    // A method call resolving to a same-file fn splices
                    // its summary (e.g. `self.issue_fetch(…)`).
                    if let Some(fi) = self.resolve_fn(name) {
                        let events = self.fn_events(fi);
                        out.extend(events);
                        i += 2;
                        continue;
                    }
                } else {
                    // Bare call: a closure in this scope, else a
                    // same-file free fn.
                    if let Some(ci) = m
                        .closures
                        .iter()
                        .position(|c| c.owner == scope && m.text(c.name_idx) == name)
                    {
                        let (bs, be) = m.closures[ci].body;
                        let owner = m.closures[ci].owner;
                        let events = self.walk(bs, be + 1, owner);
                        out.extend(events);
                        i += 2;
                        continue;
                    }
                    if let Some(fi) = self.resolve_fn(name) {
                        let events = self.fn_events(fi);
                        out.extend(events);
                        i += 2;
                        continue;
                    }
                }
            }
            i += 1;
        }
        out
    }

    /// Resolve a called name to a unique same-file function.
    fn resolve_fn(&self, name: &str) -> Option<usize> {
        match self.fns_by_name.get(name) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }
}

fn classes(seq: &[Event]) -> Vec<&'static str> {
    seq.iter().map(|e| e.class).collect()
}

fn class_set(seq: &[Event]) -> HashSet<&'static str> {
    seq.iter().map(|e| e.class).collect()
}

fn render(seq: &[Event]) -> String {
    if seq.is_empty() {
        "[]".to_string()
    } else {
        format!("[{}]", classes(seq).join(", "))
    }
}

/// One `if`/`else` branch: `(cond, body)` code-token ranges (a bare
/// `else` gets an empty cond range).
type Branch = ((usize, usize), (usize, usize));

/// Parse an `if cond { … } else if cond { … } else { … }` chain at the
/// start of code-token range `[bs, be)`. Returns one [`Branch`] per
/// arm, or `None` when the range does not start with `if`.
fn if_chain(m: &FileModel<'_>, bs: usize, be: usize) -> Option<Vec<Branch>> {
    let mut out = Vec::new();
    let mut i = bs;
    let mut be = be;
    // A braced arm body `=> { if … }` hands us the outer braces too.
    if i < be && m.code[i].is_punct(b'{') && m.matching_close(i) == Some(be - 1) {
        i += 1;
        be -= 1;
    }
    loop {
        if !(i < be && m.code[i].kind == TokKind::Ident && m.text(i) == "if") {
            return None;
        }
        let cond_start = i + 1;
        let mut j = cond_start;
        while j < be && !m.code[j].is_punct(b'{') {
            j += 1;
        }
        let close = m.matching_close(j)?;
        out.push(((cond_start, j), (j + 1, close)));
        i = close + 1;
        if !(i < be && m.code[i].kind == TokKind::Ident && m.text(i) == "else") {
            return Some(out);
        }
        i += 1;
        if i < be && m.code[i].is_punct(b'{') {
            let close = m.matching_close(i)?;
            out.push(((i, i), (i + 1, close)));
            return Some(out);
        }
        // `else if …`: continue the chain.
    }
}

/// Does the token range mention the identifier `name`?
fn range_mentions(m: &FileModel<'_>, range: (usize, usize), name: &str) -> bool {
    (range.0..range.1).any(|i| m.code[i].kind == TokKind::Ident && m.text(i) == name)
}

/// Is this arm pattern "enum-like": a `::` path, or a single bare
/// uppercase identifier (a unit variant brought into scope)?
fn enum_like(m: &FileModel<'_>, pat: (usize, usize)) -> bool {
    for i in pat.0..pat.1 {
        if m.is_path_sep(i) {
            return true;
        }
    }
    if pat.1 == pat.0 + 1 && m.code[pat.0].kind == TokKind::Ident {
        return m.text(pat.0).starts_with(|c: char| c.is_ascii_uppercase());
    }
    false
}

/// Pattern is exactly the bare identifier `name`?
fn is_bare(m: &FileModel<'_>, pat: (usize, usize), name: &str) -> bool {
    pat.1 == pat.0 + 1 && m.code[pat.0].kind == TokKind::Ident && m.text(pat.0) == name
}

/// Pattern starts with `Some`?
fn is_some_pat(m: &FileModel<'_>, pat: (usize, usize)) -> bool {
    pat.1 > pat.0 && m.code[pat.0].kind == TokKind::Ident && m.text(pat.0) == "Some"
}

/// Classes issued inside closure arguments of `.then(` calls within the
/// function that contains code token `at` — the overlap-gated prologue
/// issues (`self.overlap.then(|| self.issue_fetch(…))`).
fn then_gated_classes(ex: &mut Extractor<'_, '_>, at: usize) -> HashSet<&'static str> {
    let m = ex.m;
    let mut gated = HashSet::new();
    let Some(fi) = m.enclosing_fn(at) else {
        return gated;
    };
    let Some((open, close)) = m.functions[fi].body else {
        return gated;
    };
    let mut i = open;
    while i + 1 < close {
        let is_then_call = m.code[i].kind == TokKind::Ident
            && m.text(i) == "then"
            && i > 0
            && m.code[i - 1].is_punct(b'.')
            && m.code[i + 1].is_punct(b'(');
        if is_then_call {
            if let Some(c) = m.matching_close(i + 1) {
                let events = ex.walk(i + 2, c, Some(fi));
                gated.extend(events.iter().map(|e| e.class));
                i = c + 1;
                continue;
            }
        }
        i += 1;
    }
    gated
}

/// Run the collective-order analysis over one dist file.
pub(super) fn run(m: &FileModel<'_>, flags: &PathFlags, out: &mut Vec<Finding>) {
    if !flags.is_dist {
        return;
    }
    let mut ex = Extractor::new(m);
    for mi in 0..m.matches.len() {
        let ma = &m.matches[mi];
        let kw_byte = m.code[ma.kw].span.start;
        if m.in_test(kw_byte) {
            continue;
        }
        let line = m.line_of(kw_byte);
        if m.allow_on(line, Rule::CollectiveOrder.name()) {
            continue;
        }
        let scope = m.enclosing_fn(ma.kw);
        let arm_events: Vec<Vec<Event>> = ma
            .arms
            .iter()
            .map(|a| ex.walk(a.body.0, a.body.1, scope))
            .collect();

        // Rule B: overlap on/off — `Some(op) => … op.wait() …` vs
        // `None => blocking collective`.
        let some_none = ma.arms.len() == 2
            && ((is_some_pat(m, ma.arms[0].pattern) && is_bare(m, ma.arms[1].pattern, "None"))
                || (is_some_pat(m, ma.arms[1].pattern) && is_bare(m, ma.arms[0].pattern, "None")));
        if some_none {
            let (si, ni) = if is_some_pat(m, ma.arms[0].pattern) {
                (0, 1)
            } else {
                (1, 0)
            };
            let some_waits = (ma.arms[si].body.0..ma.arms[si].body.1).any(|i| {
                m.code[i].kind == TokKind::Ident
                    && m.text(i) == "wait"
                    && i > 0
                    && m.code[i - 1].is_punct(b'.')
            });
            if !some_waits {
                continue;
            }
            let some_set = class_set(&arm_events[si]);
            let none_set = class_set(&arm_events[ni]);
            if some_set.is_empty() && none_set.is_empty() {
                continue;
            }
            let gated = then_gated_classes(&mut ex, ma.kw);
            for &c in some_set.difference(&none_set) {
                out.push(super::finding(
                    m,
                    flags,
                    m.code[ma.kw].span,
                    Rule::CollectiveOrder,
                    format!(
                        "overlap arm issues `{c}` but the blocking (None) arm does not — \
                         branches desynchronize collective seq numbers"
                    ),
                ));
            }
            for &c in none_set.iter() {
                if !some_set.contains(c) && !gated.contains(c) {
                    out.push(super::finding(
                        m,
                        flags,
                        m.code[ma.kw].span,
                        Rule::CollectiveOrder,
                        format!(
                            "blocking (None) arm issues `{c}` with no nonblocking counterpart \
                             in the overlap path"
                        ),
                    ));
                }
            }
            continue;
        }

        // Rule A: enum-variant siblings (CommMode::Dense vs
        // SparsityAware, Fetch::Dense vs Sparse, …) must issue identical
        // normalized sequences.
        //
        // A `CommMode::Cached` arm is special (DESIGN.md §13): its body
        // is an `if cached_serving() { serve } else if training
        // { refresh gather } else { exact gather }` chain. The serve
        // branch legitimately issues *nothing* — the whole point of the
        // tier is to skip the collective — so it is exempt from the
        // comparison but must stay collective-free; every other branch
        // is checked against the `SparsityAware`/`Dense` siblings
        // independently (the refresh spellings normalize to the same
        // "fetch" class).
        let enum_arms: Vec<usize> = (0..ma.arms.len())
            .filter(|&i| enum_like(m, ma.arms[i].pattern))
            .collect();
        if enum_arms.len() < 2 {
            continue;
        }
        let mut considered: Vec<usize> = enum_arms.clone();
        for (i, ev) in arm_events.iter().enumerate() {
            if !enum_arms.contains(&i) && !ev.is_empty() {
                considered.push(i);
            }
        }
        // (label, events) sequences to compare; a Cached arm contributes
        // one entry per non-serving branch of its chain.
        let mut comparables: Vec<(String, Vec<Event>)> = Vec::new();
        for &i in &considered {
            let (ps, pe) = ma.arms[i].pattern;
            let pat = if ps < pe {
                m.src[m.code[ps].span.start..m.code[pe - 1].span.end].trim()
            } else {
                ""
            };
            let (bs, be) = ma.arms[i].body;
            let chain = if range_mentions(m, ma.arms[i].pattern, "Cached") {
                if_chain(m, bs, be)
            } else {
                None
            };
            match chain {
                Some(branches) => {
                    for (n, (cond, body)) in branches.iter().enumerate() {
                        let events = ex.walk(body.0, body.1, scope);
                        if range_mentions(m, *cond, "cached_serving") {
                            if !events.is_empty() {
                                out.push(super::finding(
                                    m,
                                    flags,
                                    m.code[ma.kw].span,
                                    Rule::CollectiveOrder,
                                    format!(
                                        "the cache-serve branch of a `Cached` arm issues {} — \
                                         serving from cache must skip the exchange entirely",
                                        render(&events),
                                    ),
                                ));
                            }
                        } else {
                            comparables.push((format!("{pat} branch {}", n + 1), events));
                        }
                    }
                }
                None => comparables.push((pat.to_string(), arm_events[i].clone())),
            }
        }
        if comparables.iter().all(|(_, ev)| ev.is_empty()) {
            continue;
        }
        let (_, reference) = &comparables[0];
        for (label, events) in &comparables[1..] {
            if classes(events) != classes(reference) {
                out.push(super::finding(
                    m,
                    flags,
                    m.code[ma.kw].span,
                    Rule::CollectiveOrder,
                    format!(
                        "sibling match arms issue different collective sequences: \
                         arm 1 issues {}, arm `{}` issues {} — all variants must issue \
                         the same kinds in the same order",
                        render(reference),
                        label,
                        render(events),
                    ),
                ));
                break;
            }
        }
    }
}
