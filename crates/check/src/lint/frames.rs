//! Frame-exhaustiveness analysis, two coverage obligations:
//!
//! * Every `FrameKind` variant declared in `crates/comm/src/frame.rs`
//!   must appear in at least one *dispatch* match arm pattern in
//!   `crates/comm/src/proc.rs` (the hub's `on_frame` and the worker's
//!   collect loop). A variant that is constructed and sent but never
//!   matched on the receive side is half-wired: the hub would route it
//!   into the catch-all protocol-error arm at runtime.
//! * Every wire-precision tag (`Precision` variant) declared in
//!   `frame.rs` must appear in a match arm pattern *in `frame.rs`
//!   itself* — the pack/widen/codec matches. A precision added without
//!   codec coverage would ride a wildcard arm and ship mis-sized or
//!   mis-tagged payloads.
//!
//! Only match *arm patterns* count as handling (including `if` guards,
//! which is how `Hello` is matched). Construction or comparison sites
//! in send paths do not.

use super::lexer::TokKind;
use super::model::FileModel;
use super::{Finding, Rule, SourceFile};

/// Enum variant names of `enum <name> { … }` in `m`, with their name
/// spans.
fn enum_variants<'s>(m: &FileModel<'s>, name: &str) -> Vec<(usize, &'s str)> {
    let n = m.code.len();
    for i in 0..n {
        if !(m.code[i].kind == TokKind::Ident && m.text(i) == "enum") {
            continue;
        }
        if !(i + 1 < n && m.code[i + 1].kind == TokKind::Ident && m.text(i + 1) == name) {
            continue;
        }
        // Body: first `{` after the name.
        let mut open = None;
        for j in i + 2..n {
            if m.code[j].is_punct(b'{') {
                open = Some(j);
                break;
            }
            if m.code[j].is_punct(b';') {
                break;
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        // Variants: identifiers at depth 1 directly preceded by `{` or
        // `,` (skipping `= <discriminant>` tails and attributes).
        let mut out = Vec::new();
        let mut j = open + 1;
        let mut expect_variant = true;
        let mut depth = 0i32;
        while j < close {
            match m.code[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                    depth += 1;
                }
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                    depth -= 1;
                }
                TokKind::Punct(b',') if depth == 0 => expect_variant = true,
                // Skip attributes on variants.
                TokKind::Punct(b'#')
                    if depth == 0 && j + 1 < close && m.code[j + 1].is_punct(b'[') =>
                {
                    if let Some(c) = m.matching_close(j + 1) {
                        j = c;
                    }
                }
                TokKind::Ident if depth == 0 && expect_variant => {
                    out.push((j, m.text(j)));
                    expect_variant = false;
                }
                _ => {}
            }
            j += 1;
        }
        return out;
    }
    Vec::new()
}

/// Variant names appearing as `<enum_name>::<V>` inside any match arm
/// pattern (guards included) in `m`.
fn dispatched_variants<'s>(m: &FileModel<'s>, enum_name: &str) -> Vec<&'s str> {
    let mut out = Vec::new();
    for ma in &m.matches {
        for arm in &ma.arms {
            let (s, e) = arm.pattern;
            for j in s..e {
                if m.code[j].kind == TokKind::Ident
                    && m.text(j) == enum_name
                    && j + 3 < e
                    && m.is_path_sep(j + 1)
                    && m.code[j + 3].kind == TokKind::Ident
                {
                    out.push(m.text(j + 3));
                }
            }
        }
    }
    out
}

/// Run the frame-exhaustiveness analysis. The `FrameKind` obligation
/// requires both `frame.rs` (the enum) and `proc.rs` (the dispatchers)
/// to be present in the source set; the `Precision` obligation is
/// self-contained to `frame.rs`. Absent files skip their obligation so
/// single-file lints and fixtures that don't model the protocol stay
/// quiet.
pub(super) fn run(files: &[SourceFile<'_>], out: &mut Vec<Finding>) {
    let frame = files
        .iter()
        .position(|f| f.flags.norm.ends_with("comm/src/frame.rs"));
    let Some(frame) = frame else {
        return;
    };
    let fm = &files[frame].model;
    let fflags = &files[frame].flags;

    // Obligation 1: FrameKind variants dispatched in proc.rs.
    let proc_ = files
        .iter()
        .position(|f| f.flags.norm.ends_with("comm/src/proc.rs"));
    if let Some(proc_) = proc_ {
        let pm = &files[proc_].model;
        let variants = enum_variants(fm, "FrameKind");
        if !variants.is_empty() {
            let dispatched = dispatched_variants(pm, "FrameKind");
            if dispatched.is_empty() {
                out.push(super::finding(
                    fm,
                    fflags,
                    fm.code
                        .first()
                        .map(|t| t.span)
                        .unwrap_or(super::lexer::Span { start: 0, end: 0 }),
                    Rule::FrameExhaustiveness,
                    "FrameKind is declared but proc.rs has no dispatch match over it".to_string(),
                ));
            } else {
                for (idx, name) in variants {
                    if dispatched.contains(&name) {
                        continue;
                    }
                    let span = fm.code[idx].span;
                    let line = fm.line_of(span.start);
                    if fm.allow_on(line, Rule::FrameExhaustiveness.name()) {
                        continue;
                    }
                    out.push(super::finding(
                        fm,
                        fflags,
                        span,
                        Rule::FrameExhaustiveness,
                        format!(
                            "FrameKind::{name} is never matched in a dispatch arm in \
                             crates/comm/src/proc.rs — the variant is half-wired"
                        ),
                    ));
                }
            }
        }
    }

    // Obligation 2: Precision wire tags covered by frame.rs's own
    // pack/widen/codec matches.
    let precisions = enum_variants(fm, "Precision");
    if precisions.is_empty() {
        return;
    }
    let matched = dispatched_variants(fm, "Precision");
    if matched.is_empty() {
        out.push(super::finding(
            fm,
            fflags,
            fm.code
                .first()
                .map(|t| t.span)
                .unwrap_or(super::lexer::Span { start: 0, end: 0 }),
            Rule::FrameExhaustiveness,
            "Precision is declared but frame.rs has no codec match over it".to_string(),
        ));
        return;
    }
    for (idx, name) in precisions {
        if matched.contains(&name) {
            continue;
        }
        let span = fm.code[idx].span;
        let line = fm.line_of(span.start);
        if fm.allow_on(line, Rule::FrameExhaustiveness.name()) {
            continue;
        }
        out.push(super::finding(
            fm,
            fflags,
            span,
            Rule::FrameExhaustiveness,
            format!(
                "wire-precision tag Precision::{name} has no codec match arm in \
                 frame.rs — pack/widen/wire dispatch would wildcard it"
            ),
        ));
    }
}
