//! Frame-exhaustiveness analysis: every `FrameKind` variant declared in
//! `crates/comm/src/frame.rs` must appear in at least one *dispatch*
//! match arm pattern in `crates/comm/src/proc.rs` (the hub's `on_frame`
//! and the worker's collect loop). A variant that is constructed and
//! sent but never matched on the receive side is half-wired: the hub
//! would route it into the catch-all protocol-error arm at runtime.
//!
//! Only match *arm patterns* count as handling (including `if` guards,
//! which is how `Hello` is matched). Construction or comparison sites
//! in send paths do not.

use super::lexer::TokKind;
use super::model::FileModel;
use super::{Finding, Rule, SourceFile};

/// Enum variant names of `enum FrameKind { … }` in `frame.rs`, with
/// their name spans.
fn frame_kind_variants<'s>(m: &FileModel<'s>) -> Vec<(usize, &'s str)> {
    let n = m.code.len();
    for i in 0..n {
        if !(m.code[i].kind == TokKind::Ident && m.text(i) == "enum") {
            continue;
        }
        if !(i + 1 < n && m.code[i + 1].kind == TokKind::Ident && m.text(i + 1) == "FrameKind") {
            continue;
        }
        // Body: first `{` after the name.
        let mut open = None;
        for j in i + 2..n {
            if m.code[j].is_punct(b'{') {
                open = Some(j);
                break;
            }
            if m.code[j].is_punct(b';') {
                break;
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        // Variants: identifiers at depth 1 directly preceded by `{` or
        // `,` (skipping `= <discriminant>` tails and attributes).
        let mut out = Vec::new();
        let mut j = open + 1;
        let mut expect_variant = true;
        let mut depth = 0i32;
        while j < close {
            match m.code[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                    depth += 1;
                }
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                    depth -= 1;
                }
                TokKind::Punct(b',') if depth == 0 => expect_variant = true,
                // Skip attributes on variants.
                TokKind::Punct(b'#')
                    if depth == 0 && j + 1 < close && m.code[j + 1].is_punct(b'[') =>
                {
                    if let Some(c) = m.matching_close(j + 1) {
                        j = c;
                    }
                }
                TokKind::Ident if depth == 0 && expect_variant => {
                    out.push((j, m.text(j)));
                    expect_variant = false;
                }
                _ => {}
            }
            j += 1;
        }
        return out;
    }
    Vec::new()
}

/// Variant names appearing as `FrameKind::<V>` inside any match arm
/// pattern (guards included) in `m`.
fn dispatched_variants<'s>(m: &FileModel<'s>) -> Vec<&'s str> {
    let mut out = Vec::new();
    for ma in &m.matches {
        for arm in &ma.arms {
            let (s, e) = arm.pattern;
            for j in s..e {
                if m.code[j].kind == TokKind::Ident
                    && m.text(j) == "FrameKind"
                    && j + 3 < e
                    && m.is_path_sep(j + 1)
                    && m.code[j + 3].kind == TokKind::Ident
                {
                    out.push(m.text(j + 3));
                }
            }
        }
    }
    out
}

/// Run the frame-exhaustiveness analysis. Requires both `frame.rs`
/// (the enum) and `proc.rs` (the dispatchers) to be present in the
/// source set; does nothing otherwise so single-file lints and
/// fixtures that don't model the protocol stay quiet.
pub(super) fn run(files: &[SourceFile<'_>], out: &mut Vec<Finding>) {
    let frame = files
        .iter()
        .position(|f| f.flags.norm.ends_with("comm/src/frame.rs"));
    let proc_ = files
        .iter()
        .position(|f| f.flags.norm.ends_with("comm/src/proc.rs"));
    let (Some(frame), Some(proc_)) = (frame, proc_) else {
        return;
    };
    let fm = &files[frame].model;
    let pm = &files[proc_].model;
    let variants = frame_kind_variants(fm);
    if variants.is_empty() {
        return;
    }
    let dispatched = dispatched_variants(pm);
    if dispatched.is_empty() {
        out.push(super::finding(
            fm,
            &files[frame].flags,
            fm.code
                .first()
                .map(|t| t.span)
                .unwrap_or(super::lexer::Span { start: 0, end: 0 }),
            Rule::FrameExhaustiveness,
            "FrameKind is declared but proc.rs has no dispatch match over it".to_string(),
        ));
        return;
    }
    for (idx, name) in variants {
        if dispatched.contains(&name) {
            continue;
        }
        let span = fm.code[idx].span;
        let line = fm.line_of(span.start);
        if fm.allow_on(line, Rule::FrameExhaustiveness.name()) {
            continue;
        }
        out.push(super::finding(
            fm,
            &files[frame].flags,
            span,
            Rule::FrameExhaustiveness,
            format!(
                "FrameKind::{name} is never matched in a dispatch arm in \
                 crates/comm/src/proc.rs — the variant is half-wired"
            ),
        ));
    }
}
