//! The token-level lint rules (the five legacy line-scanner rules
//! re-implemented on the token model, plus `scalar-hot-loop`).
//!
//! Each rule walks code tokens (comments and string interiors already
//! excluded by the lexer), so none of the old line-scanner false states
//! — `'"'` char literals, raw strings, multi-line calls — exist here.

use super::lexer::TokKind;
use super::model::FileModel;
use super::{Finding, PathFlags, Rule};

/// Serial kernels that have `_with` ParallelCtx variants; calling these
/// bare inside `dist/` bypasses the per-rank thread budget.
pub(super) const SERIAL_KERNELS: [&str; 8] = [
    "matmul",
    "matmul_acc",
    "matmul_tn",
    "matmul_tn_acc",
    "matmul_nt",
    "spmm",
    "spmm_acc",
    "spmm_semiring_acc",
];

/// Collective methods that take a `Cat` cost category; `barrier` is
/// exempt (it moves no payload words).
pub(super) const CATEGORIZED_COLLECTIVES: [&str; 16] = [
    "bcast",
    "bcast_shared",
    "gather_rows",
    "allgather",
    "allgather_shared",
    "allreduce_mat",
    "allreduce_scalar",
    "reduce_scatter_rows",
    "alltoall",
    "gather",
    "scatter",
    "sendrecv",
    "ibcast",
    "ibcast_shared",
    "igather_rows",
    "iallreduce_mat",
];

/// Nonblocking collective issue sites — each returns a `PendingOp` that
/// must be `.wait(`ed on every control-flow path.
pub(super) const PENDING_ISSUERS: [&str; 5] = [
    "ibcast",
    "ibcast_shared",
    "igather_rows",
    "igather_rows_refresh",
    "iallreduce_mat",
];

/// Raw byte-stream calls that belong only in `frame.rs` — anywhere
/// else in `comm/src/` they would move wire bytes around the framed
/// codec's header validation.
pub(super) const RAW_STREAM_CALLS: [&str; 7] = [
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "write_vectored",
];

/// Is code token `i` the method name of a `.name(` call? Returns the
/// index of the opening paren.
fn method_call_open(m: &FileModel<'_>, i: usize) -> Option<usize> {
    if m.code[i].kind != TokKind::Ident {
        return None;
    }
    if i == 0 || !m.code[i - 1].is_punct(b'.') {
        return None;
    }
    if i + 1 < m.code.len() && m.code[i + 1].is_punct(b'(') {
        Some(i + 1)
    } else {
        None
    }
}

/// Is code token `i` a bare `name(` call (not a method, not part of a
/// longer identifier — token equality guarantees the latter)?
fn bare_call(m: &FileModel<'_>, i: usize) -> bool {
    m.code[i].kind == TokKind::Ident && i + 1 < m.code.len() && m.code[i + 1].is_punct(b'(')
}

/// Run the token-level rules over one file.
pub(super) fn run(m: &FileModel<'_>, flags: &PathFlags, out: &mut Vec<Finding>) {
    let n = m.code.len();
    for i in 0..n {
        let byte = m.code[i].span.start;
        if m.in_test(byte) {
            continue;
        }
        let line = m.line_of(byte);

        // Rule 1: unwrap/expect in library code.
        if !flags.is_bin {
            if let Some(_open) = method_call_open(m, i) {
                let name = m.text(i);
                if (name == "unwrap" || name == "expect")
                    && !m.allow_on(line, Rule::UnwrapInLib.name())
                {
                    out.push(super::finding(
                        m,
                        flags,
                        m.code[i].span,
                        Rule::UnwrapInLib,
                        format!("`.{name}(` in library code outside tests"),
                    ));
                }
            }
        }

        // Rule 2: serial kernels in dist/.
        if flags.is_dist
            && bare_call(m, i)
            && SERIAL_KERNELS.contains(&m.text(i))
            && !m.allow_on(line, Rule::SerialKernelInDist.name())
        {
            out.push(super::finding(
                m,
                flags,
                m.code[i].span,
                Rule::SerialKernelInDist,
                format!(
                    "serial `{}(` in dist/ — use the `_with` ParallelCtx variant",
                    m.text(i)
                ),
            ));
        }

        // Rule 3: collectives must carry a Cat:: category in-call.
        if flags.is_core {
            if let Some(open) = method_call_open(m, i) {
                let name = m.text(i);
                if CATEGORIZED_COLLECTIVES.contains(&name) {
                    match m.matching_close(open) {
                        None => {
                            if !m.allow_on(line, Rule::UnbalancedCall.name()) {
                                out.push(super::finding(
                                    m,
                                    flags,
                                    m.code[i].span,
                                    Rule::UnbalancedCall,
                                    format!(
                                        "`.{name}(` never reaches a matching `)` — cannot check its `Cat::` category"
                                    ),
                                ));
                            }
                        }
                        Some(close) => {
                            let mut has_cat = false;
                            for j in open + 1..close {
                                if m.code[j].kind == TokKind::Ident
                                    && m.text(j) == "Cat"
                                    && j + 1 < close
                                    && m.is_path_sep(j + 1)
                                {
                                    has_cat = true;
                                    break;
                                }
                            }
                            if !has_cat && !m.allow_on(line, Rule::UncategorizedCollective.name()) {
                                out.push(super::finding(
                                    m,
                                    flags,
                                    m.code[i].span,
                                    Rule::UncategorizedCollective,
                                    format!("`.{name}(` without a `Cat::` cost category"),
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Rule 5: raw stream I/O in comm/ outside the framed codec.
        if flags.is_comm_nonframe {
            if let Some(_open) = method_call_open(m, i) {
                let name = m.text(i);
                if RAW_STREAM_CALLS.contains(&name) && !m.allow_on(line, Rule::RawSocketIo.name()) {
                    out.push(super::finding(
                        m,
                        flags,
                        m.code[i].span,
                        Rule::RawSocketIo,
                        format!("raw `.{name}(` bypasses the framed codec (frame.rs)"),
                    ));
                }
            }
        }
    }

    if flags.is_dist {
        unwaited_pending(m, flags, out);
    }
    if flags.is_kernel_hot {
        scalar_hot_loop(m, flags, out);
    }
}

/// Is the `*` at code token `i` a binary multiplication (as opposed to
/// a deref)? A multiply follows the end of an operand.
fn is_binary_star(m: &FileModel<'_>, i: usize) -> bool {
    if !m.code[i].is_punct(b'*') || i == 0 {
        return false;
    }
    matches!(
        m.code[i - 1].kind,
        TokKind::Ident | TokKind::Num | TokKind::Punct(b')') | TokKind::Punct(b']')
    )
}

/// The body span `(open, close)` of every `for`/`while`/`loop` in `m`.
/// `for` must bind a pattern with `in` before its `{` so `impl … for T`
/// blocks and HRTB `for<'a>` bounds are not mistaken for loops.
fn loop_bodies(m: &FileModel<'_>) -> Vec<(usize, usize)> {
    let n = m.code.len();
    let mut out = Vec::new();
    for i in 0..n {
        if m.code[i].kind != TokKind::Ident {
            continue;
        }
        let kw = m.text(i);
        if !matches!(kw, "for" | "while" | "loop") {
            continue;
        }
        // Header runs to the first `{` at depth 0 (parenthesized
        // patterns and bracketed index expressions raise the depth).
        let mut depth = 0i32;
        let mut saw_in = false;
        let mut open = None;
        for j in i + 1..n {
            match m.code[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b'}') => depth -= 1,
                TokKind::Punct(b';') if depth == 0 => break,
                TokKind::Ident if depth == 0 && m.text(j) == "in" => saw_in = true,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let header_ok = match kw {
            "for" => saw_in,
            "loop" => open == i + 1,
            _ => true,
        };
        if !header_ok {
            continue;
        }
        if let Some(close) = m.matching_close(open) {
            out.push((open, close));
        }
    }
    out
}

/// Rule 11: raw per-element multiply-accumulate loops in `dense/src/`
/// and `sparse/src/` outside the blessed microkernel modules. The shape
/// flagged is a loop-body statement `lhs += … * …;` where the store or
/// a multiply operand is an element access (`c[j] +=`, `*cj +=`, or an
/// indexed RHS) — the inner loop of a hand-rolled GEMM/SpMM. Scalar
/// offset arithmetic (`off += i * stride`) touches no element and
/// passes.
fn scalar_hot_loop(m: &FileModel<'_>, flags: &PathFlags, out: &mut Vec<Finding>) {
    let bodies = loop_bodies(m);
    if bodies.is_empty() {
        return;
    }
    let n = m.code.len();
    for i in 1..n {
        // A `+=` compound assign: adjacent `+` `=` byte-wise.
        if !(m.code[i].is_punct(b'+')
            && i + 1 < n
            && m.code[i + 1].is_punct(b'=')
            && m.code[i].span.end == m.code[i + 1].span.start)
        {
            continue;
        }
        if !bodies.iter().any(|&(open, close)| i > open && i < close) {
            continue;
        }
        let byte = m.code[i].span.start;
        if m.in_test(byte) {
            continue;
        }
        // Element store? `c[j] +=` or `*cj +=` (deref star: the token
        // before it is an operator, not an operand end).
        let elem_lhs = m.code[i - 1].is_punct(b']')
            || (m.code[i - 1].kind == TokKind::Ident
                && i >= 2
                && m.code[i - 2].is_punct(b'*')
                && !is_binary_star(m, i - 2));
        // RHS runs to the `;` at relative depth 0.
        let mut depth = 0i32;
        let mut end = i + 2;
        while end < n {
            match m.code[end].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(b';') | TokKind::Punct(b',') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let rhs_has_mul = (i + 2..end).any(|j| is_binary_star(m, j));
        let elem_rhs = (i + 2..end).any(|j| m.code[j].is_punct(b'['));
        if !(rhs_has_mul && (elem_lhs || elem_rhs)) {
            continue;
        }
        let line = m.line_of(byte);
        if m.allow_on(line, Rule::ScalarHotLoop.name()) {
            continue;
        }
        out.push(super::finding(
            m,
            flags,
            m.code[i].span,
            Rule::ScalarHotLoop,
            "raw multiply-accumulate loop outside the blessed microkernels — route it \
             through dense/src/gemm.rs or sparse/src/spmm.rs"
                .to_string(),
        ));
    }
}

/// Rule 4: nonblocking collectives must be waited (statement form and
/// function form).
fn unwaited_pending(m: &FileModel<'_>, flags: &PathFlags, out: &mut Vec<Finding>) {
    let n = m.code.len();

    // Statement form: `let _ = …issuer(…)…;` without a `.wait(`.
    let mut i = 0;
    while i + 2 < n {
        let is_discard = m.code[i].kind == TokKind::Ident
            && m.text(i) == "let"
            && m.text(i + 1) == "_"
            && m.code[i + 2].is_punct(b'=');
        if !is_discard || m.in_test(m.code[i].span.start) {
            i += 1;
            continue;
        }
        // Statement runs to `;` at depth 0.
        let mut depth = 0i32;
        let mut end = i + 3;
        while end < n {
            match m.code[end].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
                TokKind::Punct(b';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let mut issue_at = None;
        let mut has_wait = false;
        for j in i + 3..end {
            if let Some(_open) = method_call_open(m, j) {
                let name = m.text(j);
                if PENDING_ISSUERS.contains(&name) && issue_at.is_none() {
                    issue_at = Some(j);
                }
                if name == "wait" {
                    has_wait = true;
                }
            }
        }
        if let Some(j) = issue_at {
            let line = m.line_of(m.code[j].span.start);
            if !has_wait && !m.allow_on(line, Rule::UnwaitedPending.name()) {
                out.push(super::finding(
                    m,
                    flags,
                    m.code[j].span,
                    Rule::UnwaitedPending,
                    format!(
                        "pending `.{}(` discarded into `let _` — dropped ops abort the run",
                        m.text(j)
                    ),
                ));
            }
        }
        i = end + 1;
    }

    // Function form: a function that issues a nonblocking collective
    // must `.wait(` on it somewhere, unless it hands the op (or a
    // `Fetch<` wrapper) back to its caller.
    for f in &m.functions {
        let Some((open, close)) = f.body else {
            continue;
        };
        if m.in_test(m.code[f.kw].span.start) {
            continue;
        }
        let returns_pending = (f.header.0..f.header.1).any(|j| {
            m.code[j].kind == TokKind::Ident
                && (m.text(j) == "PendingOp"
                    || (m.text(j) == "Fetch"
                        && j + 1 < m.code.len()
                        && m.code[j + 1].is_punct(b'<')))
        });
        if returns_pending {
            continue;
        }
        let mut first_issue = None;
        let mut has_wait = false;
        for j in open + 1..close {
            if let Some(_o) = method_call_open(m, j) {
                let name = m.text(j);
                if PENDING_ISSUERS.contains(&name) && first_issue.is_none() {
                    first_issue = Some(j);
                }
                if name == "wait" {
                    has_wait = true;
                }
            }
        }
        if let Some(j) = first_issue {
            let line = m.line_of(m.code[j].span.start);
            if !has_wait && !m.allow_on(line, Rule::UnwaitedPending.name()) {
                out.push(super::finding(
                    m,
                    flags,
                    m.code[j].span,
                    Rule::UnwaitedPending,
                    format!(
                        "fn `{}` issues `.{}(` but never `.wait(`s and does not return the op",
                        m.text(f.name_idx),
                        m.text(j)
                    ),
                ));
            }
        }
    }
}
