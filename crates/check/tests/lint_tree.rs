//! Tree-level gate: the real repository must lint clean against the
//! committed `lint.baseline`. This is the same pass CI runs via
//! `cargo run -p xtask -- lint`, pinned here so `cargo test` alone
//! catches a regression in either the sources or the engine.

use std::path::PathBuf;

use cagnet_check::lint;

fn repo_root() -> PathBuf {
    // crates/check/../.. is the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn repository_is_clean_against_committed_baseline() {
    let root = repo_root();
    let findings = lint::lint_tree(&root).expect("scan crates/*/src");
    let baseline = std::fs::read_to_string(root.join("lint.baseline")).unwrap_or_default();
    let report = lint::apply_baseline(findings, &baseline);
    assert!(
        report.fresh.is_empty(),
        "fresh lint findings on the tree:\n{}",
        report
            .fresh
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_baseline_has_no_stale_entries() {
    let root = repo_root();
    let findings = lint::lint_tree(&root).expect("scan crates/*/src");
    let baseline = std::fs::read_to_string(root.join("lint.baseline")).unwrap_or_default();
    let report = lint::apply_baseline(findings, &baseline);
    assert!(
        report.stale.is_empty(),
        "stale baseline entries (regenerate with `cargo run -p xtask -- lint --write-baseline`):\n{}",
        report.stale.join("\n")
    );
}

#[test]
fn json_report_for_tree_matches_documented_schema() {
    let root = repo_root();
    let findings = lint::lint_tree(&root).expect("scan crates/*/src");
    let baseline = std::fs::read_to_string(root.join("lint.baseline")).unwrap_or_default();
    let report = lint::apply_baseline(findings, &baseline);
    let json = lint::render_json(&root.display().to_string(), &report);
    // Hand-rolled writer; pin the schema envelope the CI artifact
    // consumers rely on.
    assert!(json.starts_with("{\"version\":1,\"tool\":\"cagnet-xtask-lint\""));
    for key in [
        "\"root\":",
        "\"counts\":",
        "\"total\":",
        "\"fresh\":",
        "\"baselined\":",
        "\"error\":",
        "\"warning\":",
        "\"findings\":",
        "\"stale_baseline\":",
    ] {
        assert!(json.contains(key), "missing key {key} in {json}");
    }
}
