//! Cross-backend bit-identity: every trainer must produce *identical*
//! losses, weights, accuracy, and per-rank timelines (words, messages,
//! modeled seconds) whether ranks are threads sharing memory or real
//! worker processes exchanging framed bytes over Unix sockets.
//!
//! This is the socket transport's correctness contract: all collective
//! semantics live above the transport trait, and every `f64` crosses
//! the wire as its exact bit pattern, so nothing — not one ULP — may
//! differ. Each comparison runs a full training job twice (shared, then
//! socket) and asserts exact equality with `==`.

#![cfg(unix)]

use cagnet_comm::TransportKind;
use cagnet_core::dist::CommMode;
use cagnet_core::trainer::{train_distributed, Algorithm, TrainConfig};
use cagnet_core::{GcnConfig, Problem};
use cagnet_sparse::generate::erdos_renyi;

fn small_problem() -> (Problem, GcnConfig) {
    let g = erdos_renyi(48, 3.0, 0xC0FFEE);
    let problem = Problem::synthetic(&g, 6, 3, 1.0, 7);
    let gcn = GcnConfig::three_layer(6, 8, 3);
    (problem, gcn)
}

/// Train once per backend and assert the results are bit-identical.
fn assert_bit_identical(algo: Algorithm, p: usize, comm_mode: CommMode, overlap: bool) {
    let (problem, gcn) = small_problem();
    let run = |transport| {
        let tc = TrainConfig {
            epochs: 3,
            comm_mode,
            overlap,
            transport: Some(transport),
            ..TrainConfig::default()
        };
        train_distributed(
            &problem,
            &gcn,
            algo,
            p,
            cagnet_comm::CostModel::summit_like(),
            &tc,
        )
    };
    let shared = run(TransportKind::Shared);
    let socket = run(TransportKind::Socket);

    // Losses and accuracy: exact equality, not tolerance.
    assert_eq!(shared.losses, socket.losses, "losses diverged");
    assert_eq!(shared.accuracy, socket.accuracy, "accuracy diverged");

    // Final weights, element-for-element.
    assert_eq!(shared.weights.len(), socket.weights.len());
    for (layer, (a, b)) in shared.weights.iter().zip(socket.weights.iter()).enumerate() {
        assert_eq!(a, b, "weights diverged at layer {layer}");
    }
    assert_eq!(shared.embeddings, socket.embeddings, "embeddings diverged");

    // Per-rank timelines: modeled clock, seconds, words, and messages
    // per category all compare equal (TimelineReport's PartialEq).
    assert_eq!(shared.reports.len(), socket.reports.len());
    for (rank, (a, b)) in shared.reports.iter().zip(socket.reports.iter()).enumerate() {
        assert_eq!(a, b, "rank {rank} timeline diverged");
        assert_eq!(
            a.clock.to_bits(),
            b.clock.to_bits(),
            "rank {rank} clock not bit-exact"
        );
    }
}

// ------------------------------------------------------------------
// 1D (column) trainer.
// ------------------------------------------------------------------

#[test]
fn oned_dense_p2() {
    assert_bit_identical(Algorithm::OneD, 2, CommMode::Dense, true);
}

#[test]
fn oned_dense_p4_no_overlap() {
    assert_bit_identical(Algorithm::OneD, 4, CommMode::Dense, false);
}

#[test]
fn oned_sparsity_aware_p4() {
    assert_bit_identical(Algorithm::OneD, 4, CommMode::SparsityAware, true);
}

// ------------------------------------------------------------------
// 1D (row) trainer.
// ------------------------------------------------------------------

#[test]
fn oned_row_dense_p2() {
    assert_bit_identical(Algorithm::OneDRow, 2, CommMode::Dense, true);
}

#[test]
fn oned_row_sparsity_aware_p4_no_overlap() {
    assert_bit_identical(Algorithm::OneDRow, 4, CommMode::SparsityAware, false);
}

// ------------------------------------------------------------------
// 1.5D trainer (replication factor 2).
// ------------------------------------------------------------------

#[test]
fn one5d_dense_p4() {
    assert_bit_identical(Algorithm::One5D { c: 2 }, 4, CommMode::Dense, true);
}

#[test]
fn one5d_sparsity_aware_p4() {
    assert_bit_identical(Algorithm::One5D { c: 2 }, 4, CommMode::SparsityAware, true);
}

// ------------------------------------------------------------------
// 2D (square and rectangular) trainer.
// ------------------------------------------------------------------

#[test]
fn twod_dense_p4() {
    assert_bit_identical(Algorithm::TwoD, 4, CommMode::Dense, true);
}

#[test]
fn twod_sparsity_aware_p4_no_overlap() {
    assert_bit_identical(Algorithm::TwoD, 4, CommMode::SparsityAware, false);
}

#[test]
fn twod_rect_dense_p2() {
    assert_bit_identical(
        Algorithm::TwoDRect { pr: 2, pc: 1 },
        2,
        CommMode::Dense,
        true,
    );
}

// ------------------------------------------------------------------
// 3D trainer.
// ------------------------------------------------------------------

#[test]
fn threed_dense_p8() {
    assert_bit_identical(Algorithm::ThreeD, 8, CommMode::Dense, true);
}

#[test]
fn threed_sparsity_aware_p8() {
    assert_bit_identical(Algorithm::ThreeD, 8, CommMode::SparsityAware, true);
}

// ------------------------------------------------------------------
// Degenerate world: P=1 never spawns processes but must still work
// through the socket-configured path.
// ------------------------------------------------------------------

#[test]
fn single_rank_socket_config_runs_in_process() {
    assert_bit_identical(Algorithm::OneD, 1, CommMode::Dense, true);
}
