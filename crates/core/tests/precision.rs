//! Compressed wire precision across the full training stack: every
//! trainer must (a) keep f64 runs bit-identical to the default, (b)
//! converge at f32 wire precision with a final loss close to the f64
//! run, (c) roughly halve the metered dense-communication words (exact
//! halving is per-payload `ceil`, so the aggregate lands near 0.5), and
//! (d) keep the per-category seconds reconciled with the clock.

use cagnet_comm::{Cat, Precision};
use cagnet_core::dist::CommMode;
use cagnet_core::trainer::{train_distributed, Algorithm, DistTrainResult, TrainConfig};
use cagnet_core::{GcnConfig, Problem};
use cagnet_sparse::generate::erdos_renyi;

fn small_problem() -> (Problem, GcnConfig) {
    let g = erdos_renyi(48, 3.0, 0xC0FFEE);
    let problem = Problem::synthetic(&g, 6, 3, 1.0, 7);
    let gcn = GcnConfig::three_layer(6, 8, 3);
    (problem, gcn)
}

fn run(algo: Algorithm, p: usize, comm_mode: CommMode, precision: Precision) -> DistTrainResult {
    let (problem, gcn) = small_problem();
    let tc = TrainConfig {
        epochs: 8,
        comm_mode,
        precision,
        ..TrainConfig::default()
    };
    train_distributed(
        &problem,
        &gcn,
        algo,
        p,
        cagnet_comm::CostModel::summit_like(),
        &tc,
    )
}

/// Total dense words at the given packed category across ranks.
fn words(r: &DistTrainResult, cat: Cat) -> u64 {
    r.reports.iter().map(|rep| rep.words(cat)).sum()
}

/// The f32-parity contract for one trainer: convergence close to f64,
/// dense payload words halved into the `dcomm32` category, timeline
/// reconciliation intact.
fn assert_f32_parity(algo: Algorithm, p: usize, comm_mode: CommMode) {
    let full = run(algo, p, comm_mode, Precision::F64);
    let packed = run(algo, p, comm_mode, Precision::F32);

    // Both runs train: the loss drops from the first epoch to the last.
    let (f0, fl) = (full.losses[0], *full.losses.last().unwrap());
    let (p0, pl) = (packed.losses[0], *packed.losses.last().unwrap());
    assert!(fl < f0, "f64 run did not train: {f0} -> {fl}");
    assert!(pl < p0, "f32 run did not train: {p0} -> {pl}");

    // Convergence parity: the f32 wire rounds activations and gradients
    // once per hop, so losses drift slightly but must track the f64
    // trajectory closely on this well-conditioned problem.
    let gap = (fl - pl).abs() / fl.abs().max(1e-9);
    assert!(
        gap < 0.05,
        "{} P={p}: f32 final loss {pl} strays {gap:.4} (rel) from f64's {fl}",
        algo.name()
    );

    // Word halving: the Mat payloads that moved under DenseComm at f64
    // move under DenseComm32 at half width (per-payload ceil keeps the
    // aggregate within a whisker of exactly half). Scalar reductions
    // and sparse payloads stay where they were.
    let full_dense = words(&full, Cat::DenseComm);
    let unpacked_remainder = words(&packed, Cat::DenseComm);
    let halved = words(&packed, Cat::DenseComm32);
    assert_eq!(words(&full, Cat::DenseComm32), 0);
    assert_eq!(words(&packed, Cat::DenseComm16), 0);
    assert!(halved > 0, "no packed dense words metered");
    let mat_words = full_dense - unpacked_remainder;
    let ratio = halved as f64 / mat_words as f64;
    assert!(
        (0.45..=0.55).contains(&ratio),
        "{} P={p}: packed/full dense ratio {ratio:.3} outside [0.45, 0.55] \
         ({halved} packed vs {mat_words} full-width payload words)",
        algo.name()
    );

    // Σ per-category seconds still equals the clock with the new
    // categories in play.
    for (rank, rep) in packed.reports.iter().enumerate() {
        assert!(
            (rep.busy_seconds() - rep.clock).abs() <= 1e-9 * rep.clock.max(1.0),
            "rank {rank}: categories do not reconcile with the clock"
        );
    }
}

#[test]
fn f64_precision_is_bitwise_identical_to_default() {
    let (problem, gcn) = small_problem();
    let tc_default = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };
    let tc_explicit = TrainConfig {
        precision: Precision::F64,
        ..tc_default.clone()
    };
    let model = cagnet_comm::CostModel::summit_like;
    let a = train_distributed(&problem, &gcn, Algorithm::OneD, 4, model(), &tc_default);
    let b = train_distributed(&problem, &gcn, Algorithm::OneD, 4, model(), &tc_explicit);
    assert_eq!(a.losses, b.losses);
    assert_eq!(a.weights, b.weights);
    assert_eq!(a.embeddings, b.embeddings);
    assert_eq!(a.reports, b.reports);
}

#[test]
fn oned_f32_parity() {
    assert_f32_parity(Algorithm::OneD, 4, CommMode::Dense);
}

#[test]
fn oned_row_f32_parity() {
    assert_f32_parity(Algorithm::OneDRow, 4, CommMode::Dense);
}

#[test]
fn one5d_f32_parity() {
    assert_f32_parity(Algorithm::One5D { c: 2 }, 4, CommMode::Dense);
}

#[test]
fn twod_f32_parity() {
    assert_f32_parity(Algorithm::TwoD, 4, CommMode::Dense);
}

#[test]
fn threed_f32_parity() {
    assert_f32_parity(Algorithm::ThreeD, 8, CommMode::Dense);
}

#[test]
fn oned_sparsity_aware_f32_parity() {
    assert_f32_parity(Algorithm::OneD, 4, CommMode::SparsityAware);
}

#[cfg(unix)]
#[test]
fn f32_socket_transport_is_bit_identical_to_shared() {
    use cagnet_comm::TransportKind;
    let (problem, gcn) = small_problem();
    let run = |transport| {
        let tc = TrainConfig {
            epochs: 3,
            precision: Precision::F32,
            transport: Some(transport),
            ..TrainConfig::default()
        };
        train_distributed(
            &problem,
            &gcn,
            Algorithm::OneD,
            2,
            cagnet_comm::CostModel::summit_like(),
            &tc,
        )
    };
    // The packed bytes cross the socket verbatim and widen identically,
    // so even rounded runs stay bit-identical across backends.
    let shared = run(TransportKind::Shared);
    let socket = run(TransportKind::Socket);
    assert_eq!(shared.losses, socket.losses);
    assert_eq!(shared.weights, socket.weights);
    assert_eq!(shared.embeddings, socket.embeddings);
    assert_eq!(shared.reports, socket.reports);
}
