//! Optimizers for the replicated weight update.
//!
//! The paper's training step is plain gradient descent
//! (`W ← W − η·Y`, Eq. 3) and it notes the step "does not require
//! communication" because `W` and `Y` are replicated. That property holds
//! for *any* optimizer whose state is a function of the gradient stream —
//! so this module provides SGD (the paper's step), SGD with momentum, and
//! Adam (what Kipf & Welling actually trained GCNs with), all with
//! replicated state: every rank applies the identical update and the
//! weights stay bitwise-identical across ranks without communication.

use cagnet_dense::Mat;

/// Which update rule to apply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// Plain gradient descent (the paper's Eq. 3 step).
    Sgd,
    /// SGD with classical momentum.
    Momentum {
        /// Momentum coefficient (e.g. 0.9).
        beta: f64,
    },
    /// Adam (Kingma & Ba) with the usual bias correction.
    Adam {
        /// First-moment decay (e.g. 0.9).
        beta1: f64,
        /// Second-moment decay (e.g. 0.999).
        beta2: f64,
        /// Numerical-stability epsilon.
        eps: f64,
    },
}

impl OptimizerKind {
    /// Adam with the standard defaults.
    pub fn adam() -> Self {
        OptimizerKind::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Optimizer state over a stack of weight matrices. Deterministic and
/// communication-free: constructed identically on every rank.
#[derive(Clone, Debug)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f64,
    /// First moments (momentum / Adam m), one per layer.
    m: Vec<Mat>,
    /// Second moments (Adam v), one per layer.
    v: Vec<Mat>,
    /// Steps taken per layer (for Adam bias correction).
    t: Vec<u64>,
}

impl Optimizer {
    /// Fresh state for a weight stack of the given shapes.
    pub fn new(kind: OptimizerKind, lr: f64, shapes: &[(usize, usize)]) -> Self {
        let zeros: Vec<Mat> = shapes.iter().map(|&(r, c)| Mat::zeros(r, c)).collect();
        Optimizer {
            kind,
            lr,
            m: zeros.clone(),
            v: zeros,
            t: vec![0; shapes.len()],
        }
    }

    /// Convenience: state matching an existing weight stack.
    pub fn for_weights(kind: OptimizerKind, lr: f64, weights: &[Mat]) -> Self {
        let shapes: Vec<(usize, usize)> = weights.iter().map(Mat::shape).collect();
        Self::new(kind, lr, &shapes)
    }

    /// Learning rate in effect.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Apply the update for layer `l` given gradient `y` (in place).
    pub fn step(&mut self, l: usize, w: &mut Mat, y: &Mat) {
        assert_eq!(w.shape(), y.shape(), "gradient shape mismatch");
        assert_eq!(w.shape(), self.m[l].shape(), "state shape mismatch");
        match self.kind {
            OptimizerKind::Sgd => {
                cagnet_dense::ops::axpy_neg(w, self.lr, y);
            }
            OptimizerKind::Momentum { beta } => {
                let m = &mut self.m[l];
                for (mi, &gi) in m.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *mi = beta * *mi + gi;
                }
                cagnet_dense::ops::axpy_neg(w, self.lr, &m.clone());
            }
            OptimizerKind::Adam { beta1, beta2, eps } => {
                self.t[l] += 1;
                let t = self.t[l] as f64;
                let (m, v) = (&mut self.m[l], &mut self.v[l]);
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                let ws = w.as_mut_slice();
                for (((wi, mi), vi), &gi) in ws
                    .iter_mut()
                    .zip(m.as_mut_slice())
                    .zip(v.as_mut_slice())
                    .zip(y.as_slice())
                {
                    *mi = beta1 * *mi + (1.0 - beta1) * gi;
                    *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
                    let mhat = *mi / bc1;
                    let vhat = *vi / bc2;
                    *wi -= self.lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(kind: OptimizerKind, lr: f64, steps: usize) -> f64 {
        // Minimize f(w) = 0.5 * ||w||² from w = (3, -2): gradient is w.
        let mut w = Mat::from_rows(&[&[3.0, -2.0]]);
        let mut opt = Optimizer::for_weights(kind, lr, std::slice::from_ref(&w));
        for _ in 0..steps {
            let g = w.clone();
            opt.step(0, &mut w, &g);
        }
        w.frobenius()
    }

    #[test]
    fn sgd_matches_paper_update_rule() {
        let mut w = Mat::filled(2, 3, 1.0);
        let y = Mat::filled(2, 3, 0.5);
        let mut opt = Optimizer::for_weights(OptimizerKind::Sgd, 0.2, std::slice::from_ref(&w));
        opt.step(0, &mut w, &y);
        assert!(w.approx_eq(&Mat::filled(2, 3, 0.9), 1e-15));
    }

    #[test]
    fn all_optimizers_descend_a_quadratic() {
        assert!(quadratic_descent(OptimizerKind::Sgd, 0.1, 100) < 1e-3);
        assert!(quadratic_descent(OptimizerKind::Momentum { beta: 0.9 }, 0.02, 200) < 1e-2);
        assert!(quadratic_descent(OptimizerKind::adam(), 0.05, 400) < 1e-2);
    }

    #[test]
    fn momentum_accelerates_over_sgd_on_quadratic() {
        let sgd = quadratic_descent(OptimizerKind::Sgd, 0.02, 100);
        let mom = quadratic_descent(OptimizerKind::Momentum { beta: 0.9 }, 0.02, 100);
        assert!(mom < sgd, "momentum {mom} should beat sgd {sgd}");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // First Adam step has magnitude ~lr regardless of gradient scale.
        for &scale in &[1e-3, 1.0, 1e3] {
            let mut w = Mat::from_rows(&[&[0.0]]);
            let g = Mat::from_rows(&[&[scale]]);
            let mut opt =
                Optimizer::for_weights(OptimizerKind::adam(), 0.1, std::slice::from_ref(&w));
            opt.step(0, &mut w, &g);
            assert!(
                (w[(0, 0)].abs() - 0.1).abs() < 1e-6,
                "first step {} for grad scale {scale}",
                w[(0, 0)]
            );
        }
    }

    #[test]
    fn optimizer_state_is_deterministic() {
        let run = || {
            let mut w = Mat::from_rows(&[&[1.0, 2.0]]);
            let mut opt =
                Optimizer::for_weights(OptimizerKind::adam(), 0.01, std::slice::from_ref(&w));
            for i in 0..10 {
                let g = Mat::from_rows(&[&[(i as f64).sin(), (i as f64).cos()]]);
                opt.step(0, &mut w, &g);
            }
            w
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut w = Mat::zeros(2, 2);
        let y = Mat::zeros(2, 3);
        let mut opt = Optimizer::for_weights(OptimizerKind::Sgd, 0.1, std::slice::from_ref(&w));
        opt.step(0, &mut w, &y);
    }
}
