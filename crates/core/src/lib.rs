//! # cagnet-core
//!
//! The paper's primary contribution, reimplemented in Rust: the CAGNET
//! family of communication-avoiding parallel GCN training algorithms —
//! 1D block-row (Alg. 1), 1.5D replicated block-row (§IV-B), 2D SUMMA
//! (Alg. 2), and Split-3D-SpMM (§IV-D) — plus the serial reference
//! trainer, the masked-NLL loss, closed-form α–β communication-cost
//! analysis for every variant, and a uniform training driver running on
//! the simulated cluster of `cagnet-comm`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod dist;
pub mod dropout;
pub mod loss;
pub mod model;
pub mod optimizer;
pub mod problem;
pub mod propagate;
pub mod sage;
pub mod sampling;
pub mod serial;
pub mod trainer;

pub use model::GcnConfig;
pub use optimizer::{Optimizer, OptimizerKind};
pub use problem::Problem;
pub use serial::SerialTrainer;
pub use trainer::{
    train_distributed, Algorithm, CommMode, DistTrainResult, PartitionSpec, TrainConfig,
};
