//! Deterministic, layout-independent dropout.
//!
//! Kipf & Welling's GCN (the architecture the paper trains, §V-A) uses
//! dropout on hidden activations. In a distributed setting the subtlety
//! is that every rank must draw the *same* mask the serial model would —
//! regardless of which row block or column slice of `H^l` it owns —
//! or the parallel == serial property (§V-A) breaks. The mask here is a
//! pure function of `(base seed, epoch, layer, global row)`: any rank
//! reconstructs exactly its local window of the global mask with no
//! communication.
//!
//! Inverted dropout: kept entries are scaled by `1/(1-rate)` so
//! evaluation needs no rescaling.

use cagnet_dense::Mat;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Identifies one mask draw.
#[derive(Clone, Copy, Debug)]
pub struct DropoutKey {
    /// Model-level seed.
    pub base_seed: u64,
    /// Epoch counter (fresh mask every epoch).
    pub epoch: u64,
    /// Layer index.
    pub layer: usize,
}

fn row_rng(key: DropoutKey, global_row: usize) -> ChaCha8Rng {
    // Mix the coordinates; any fixed injective-ish mixing works since
    // ChaCha decorrelates the stream.
    let s = key
        .base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.epoch.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((key.layer as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(global_row as u64);
    ChaCha8Rng::seed_from_u64(s)
}

/// Build the local window of the global dropout mask: rows
/// `[row_offset, row_offset + rows)` and columns `[c0, c1)` of a global
/// `? x f_total` mask. Entries are `0` (dropped) or `1/(1-rate)` (kept).
///
/// # Panics
/// Panics unless `0 <= rate < 1` and the column window fits.
pub fn mask_block(
    key: DropoutKey,
    rate: f64,
    row_offset: usize,
    rows: usize,
    f_total: usize,
    c0: usize,
    c1: usize,
) -> Mat {
    assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
    assert!(c0 <= c1 && c1 <= f_total, "column window out of range");
    let keep_scale = 1.0 / (1.0 - rate);
    let mut out = Mat::zeros(rows, c1 - c0);
    for r in 0..rows {
        let mut rng = row_rng(key, row_offset + r);
        // Draw the full global row so column slices are consistent.
        let orow = out.row_mut(r);
        for c in 0..f_total {
            let u: f64 = rng.gen();
            if c >= c0 && c < c1 {
                orow[c - c0] = if u < rate { 0.0 } else { keep_scale };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: DropoutKey = DropoutKey {
        base_seed: 7,
        epoch: 3,
        layer: 1,
    };

    #[test]
    fn values_are_zero_or_scaled() {
        let m = mask_block(KEY, 0.4, 0, 20, 10, 0, 10);
        let scale = 1.0 / 0.6;
        for &x in m.as_slice() {
            assert!(x == 0.0 || (x - scale).abs() < 1e-12);
        }
    }

    #[test]
    fn rate_zero_keeps_everything() {
        let m = mask_block(KEY, 0.0, 0, 5, 4, 0, 4);
        assert!(m.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn row_blocks_tile_the_global_mask() {
        let full = mask_block(KEY, 0.5, 0, 30, 8, 0, 8);
        let top = mask_block(KEY, 0.5, 0, 13, 8, 0, 8);
        let bottom = mask_block(KEY, 0.5, 13, 17, 8, 0, 8);
        assert!(Mat::vstack(&[top, bottom]).approx_eq(&full, 0.0));
    }

    #[test]
    fn column_slices_tile_the_global_mask() {
        let full = mask_block(KEY, 0.5, 4, 10, 9, 0, 9);
        let left = mask_block(KEY, 0.5, 4, 10, 9, 0, 4);
        let right = mask_block(KEY, 0.5, 4, 10, 9, 4, 9);
        assert!(Mat::hstack(&[left, right]).approx_eq(&full, 0.0));
    }

    #[test]
    fn different_epochs_layers_rows_differ() {
        let a = mask_block(KEY, 0.5, 0, 8, 16, 0, 16);
        let mut k2 = KEY;
        k2.epoch += 1;
        let b = mask_block(k2, 0.5, 0, 8, 16, 0, 16);
        assert_ne!(a, b, "epoch must refresh the mask");
        let mut k3 = KEY;
        k3.layer += 1;
        let c = mask_block(k3, 0.5, 0, 8, 16, 0, 16);
        assert_ne!(a, c, "layers draw independent masks");
    }

    #[test]
    fn keep_rate_is_approximately_honored() {
        let m = mask_block(KEY, 0.3, 0, 200, 50, 0, 50);
        let kept = m.as_slice().iter().filter(|&&x| x > 0.0).count();
        let frac = kept as f64 / (200.0 * 50.0);
        assert!((frac - 0.7).abs() < 0.03, "keep fraction {frac}");
    }

    #[test]
    fn expectation_is_preserved() {
        // E[mask] = 1 elementwise under inverted dropout.
        let m = mask_block(KEY, 0.4, 0, 400, 25, 0, 25);
        let mean = m.sum() / m.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
