//! Masked negative log-likelihood loss and its gradient.
//!
//! The output layer applies row-wise `log_softmax`; the training loss is
//! the mean negative log-probability of the true class over the training
//! mask. Its gradient with respect to the pre-activation `Z^L` is the
//! paper's `G^L = ∇_{H^L} L ⊙ σ'(Z^L)` (Eq. 1) which for
//! log-softmax + NLL collapses to the classic `softmax(Z) − onehot`,
//! scaled by `1/|train|` on masked rows and zero elsewhere.

use cagnet_dense::activation::softmax_rows;
use cagnet_dense::Mat;

/// Mean NLL over the masked rows of a log-probability matrix.
///
/// `row_offset` maps local row `i` to global vertex `row_offset + i`, so
/// distributed trainers can evaluate their block's contribution; pass 0
/// with full matrices. Returns the *sum* over local masked rows — divide
/// by the global train count (or all-reduce first).
pub fn nll_sum(log_probs: &Mat, labels: &[usize], mask: &[bool], row_offset: usize) -> f64 {
    let mut total = 0.0;
    for i in 0..log_probs.rows() {
        let g = row_offset + i;
        if mask[g] {
            total -= log_probs[(i, labels[g])];
        }
    }
    total
}

/// Gradient `G^L = ∂L/∂Z^L` for log-softmax + masked mean NLL, evaluated
/// on a row block: `(softmax(Z) − onehot) / train_count` on masked rows,
/// zero rows elsewhere.
pub fn output_gradient(
    z: &Mat,
    labels: &[usize],
    mask: &[bool],
    row_offset: usize,
    train_count: usize,
) -> Mat {
    assert!(train_count > 0, "train_count must be positive");
    let mut g = softmax_rows(z);
    let scale = 1.0 / train_count as f64;
    for i in 0..g.rows() {
        let gv = row_offset + i;
        if mask[gv] {
            let row = g.row_mut(i);
            for x in row.iter_mut() {
                *x *= scale;
            }
            row[labels[gv]] -= scale;
        } else {
            g.row_mut(i).fill(0.0);
        }
    }
    g
}

/// Classification accuracy over masked rows: fraction of rows whose argmax
/// log-probability matches the label. Returns `(correct, considered)`.
pub fn accuracy_counts(
    log_probs: &Mat,
    labels: &[usize],
    mask: &[bool],
    row_offset: usize,
) -> (usize, usize) {
    let mut correct = 0;
    let mut total = 0;
    for i in 0..log_probs.rows() {
        let g = row_offset + i;
        if mask[g] {
            total += 1;
            let row = log_probs.row(i);
            // total_cmp gives NaN a defined order, so no unwrap is needed
            // and a NaN logit cannot panic the accuracy pass.
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if argmax == labels[g] {
                correct += 1;
            }
        }
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_dense::activation::log_softmax_rows;

    #[test]
    fn nll_of_perfect_prediction_is_near_zero() {
        // Logits strongly favoring the true class.
        let z = Mat::from_rows(&[&[100.0, 0.0], &[0.0, 100.0]]);
        let lp = log_softmax_rows(&z);
        let loss = nll_sum(&lp, &[0, 1], &[true, true], 0) / 2.0;
        assert!(loss < 1e-10);
    }

    #[test]
    fn nll_of_uniform_prediction_is_log_k() {
        let z = Mat::zeros(3, 4);
        let lp = log_softmax_rows(&z);
        let loss = nll_sum(&lp, &[0, 1, 2], &[true, true, true], 0) / 3.0;
        assert!((loss - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn mask_excludes_rows() {
        let z = Mat::zeros(2, 2);
        let lp = log_softmax_rows(&z);
        let loss = nll_sum(&lp, &[0, 0], &[true, false], 0);
        assert!((loss - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_rows_sum_to_zero_on_masked() {
        let z = Mat::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 0.0, 0.0]]);
        let g = output_gradient(&z, &[2, 1], &[true, true], 0, 2);
        for i in 0..2 {
            let s: f64 = g.row(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {i} sums to {s}");
        }
        // True-class entry is negative (push up its probability).
        assert!(g[(0, 2)] < 0.0);
    }

    #[test]
    fn gradient_zero_on_unmasked() {
        let z = Mat::from_rows(&[&[1.0, 2.0]]);
        let g = output_gradient(&z, &[0, 0], &[false, true], 1, 1);
        // row_offset=1 => local row 0 is global vertex 1 which IS masked...
        // global vertex 1 has mask true, so gradient nonzero; check the
        // offset plumbing by flipping.
        assert!(g.row(0).iter().any(|&x| x != 0.0));
        let g2 = output_gradient(&z, &[0, 0], &[true, false], 1, 1);
        assert!(g2.row(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // d(NLL mean)/dZ via central differences on a tiny instance.
        let z = Mat::from_rows(&[&[0.3, -0.7, 0.1], &[1.0, 0.2, -0.5]]);
        let labels = [1usize, 0usize];
        let mask = [true, true];
        let g = output_gradient(&z, &labels, &mask, 0, 2);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut zp = z.clone();
                zp[(i, j)] += eps;
                let mut zm = z.clone();
                zm[(i, j)] -= eps;
                let lp = nll_sum(&log_softmax_rows(&zp), &labels, &mask, 0) / 2.0;
                let lm = nll_sum(&log_softmax_rows(&zm), &labels, &mask, 0) / 2.0;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - g[(i, j)]).abs() < 1e-6,
                    "fd {fd} vs analytic {} at ({i},{j})",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn accuracy_counting() {
        let lp = Mat::from_rows(&[&[-0.1, -3.0], &[-2.0, -0.2], &[-0.5, -0.6]]);
        let (c, t) = accuracy_counts(&lp, &[0, 1, 1], &[true, true, true], 0);
        assert_eq!((c, t), (2, 3));
        let (c, t) = accuracy_counts(&lp, &[0, 1, 1], &[true, false, false], 0);
        assert_eq!((c, t), (1, 1));
    }
}
