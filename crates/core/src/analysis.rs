//! Closed-form per-epoch communication costs — the paper's §IV formulas.
//!
//! Each function returns a [`CommCost`] splitting the α–β expression into
//! a latency multiplier (the coefficient of α) and a bandwidth word count
//! (the coefficient of β), per process, per **epoch** (the paper presents
//! per-epoch totals).
//!
//! The `comm_volume` bench cross-checks these closed forms against the
//! word counters *measured* from the executing implementations, and the
//! property tests in this module check internal consistency (e.g. the 2D /
//! 1D ratio approaches the paper's `5/√P` figure under the paper's own
//! assumptions).

/// Problem-shape parameters for cost evaluation.
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    /// Vertices `n`.
    pub n: f64,
    /// Nonzeros of the (normalized) adjacency, `nnz(A) = d·n`.
    pub nnz: f64,
    /// Average feature-vector length `f` across layers.
    pub f: f64,
    /// Layer count `L`.
    pub layers: f64,
}

impl Shape {
    /// Shape from integer sizes.
    pub fn new(n: usize, nnz: usize, f: usize, layers: usize) -> Self {
        Shape {
            n: n as f64,
            nnz: nnz as f64,
            f: f as f64,
            layers: layers as f64,
        }
    }

    /// Average degree `d = nnz/n`.
    pub fn avg_degree(&self) -> f64 {
        self.nnz / self.n
    }
}

/// An α–β cost: `latency_units · α + words · β` seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCost {
    /// Coefficient of α (number of latency units).
    pub latency_units: f64,
    /// Coefficient of β (words moved per process).
    pub words: f64,
}

impl CommCost {
    /// Evaluate under a concrete α and β.
    pub fn time(&self, alpha: f64, beta: f64) -> f64 {
        self.latency_units * alpha + self.words * beta
    }
}

fn lg(p: f64) -> f64 {
    p.max(2.0).log2()
}

/// §IV-A.5: 1D block-row algorithm, general (directed) case:
/// `T = L(α·3·lg P + β(edgecut·f + n·f + f²))`.
///
/// `edgecut` defaults to the paper's non-adversarial random-partition
/// bound `n(P−1)/P` when `None`.
pub fn one_d(s: &Shape, p: usize, edgecut: Option<f64>) -> CommCost {
    let pf = p as f64;
    let cut = edgecut.unwrap_or(s.n * (pf - 1.0) / pf);
    CommCost {
        latency_units: s.layers * 3.0 * lg(pf),
        words: s.layers * (cut * s.f + s.n * s.f + s.f * s.f),
    }
}

/// §IV-A.6: 1D symmetric case (`A = Aᵀ` usable interchangeably):
/// `T = L(α·3·lg P + β(2·edgecut·f + f²))`.
pub fn one_d_symmetric(s: &Shape, p: usize, edgecut: Option<f64>) -> CommCost {
    let pf = p as f64;
    let cut = edgecut.unwrap_or(s.n * (pf - 1.0) / pf);
    CommCost {
        latency_units: s.layers * 3.0 * lg(pf),
        words: s.layers * (2.0 * cut * s.f + s.f * s.f),
    }
}

/// §IV-A.7: the transposing 1D variant — pays two transposes per epoch
/// (`α·P² + β·nnz/P` each) to run the symmetric-case bound on directed
/// inputs.
pub fn one_d_transposing(s: &Shape, p: usize, edgecut: Option<f64>) -> CommCost {
    let pf = p as f64;
    let base = one_d_symmetric(s, p, edgecut);
    CommCost {
        latency_units: base.latency_units + 2.0 * pf * pf,
        words: base.words + 2.0 * s.nnz / pf,
    }
}

/// §IV-B (our implemented variant): 1.5D replicated block row with
/// replication factor `c` on a `p₁ x c` grid (`p₁ = P/c`):
/// per layer ≈ `β(2nf/c + 2nf/p₁ + 2f²)` with latency
/// `p₁ + lg c + lg p₁ + 2·lg P` (broadcast stages + the
/// reduce-scatter/all-gather trees).
pub fn one5_d(s: &Shape, p: usize, c: usize) -> CommCost {
    assert!(c >= 1 && p.is_multiple_of(c), "c must divide P");
    let p1 = (p / c) as f64;
    let cf = c as f64;
    let pf = p as f64;
    CommCost {
        latency_units: s.layers * (p1 + lg(cf) + lg(p1) + 2.0 * lg(pf)),
        words: s.layers * (2.0 * s.n * s.f / cf + 2.0 * s.n * s.f / p1 + 2.0 * s.f * s.f),
    }
}

/// §IV-C.5: 2D SUMMA on a `√P x √P` grid:
/// `T ≈ L(α(5√P + 3 lg P) + β(8nf/√P + 2nnz/√P + f²))`.
pub fn two_d(s: &Shape, p: usize) -> CommCost {
    let pf = p as f64;
    let rp = pf.sqrt();
    CommCost {
        latency_units: s.layers * (5.0 * rp + 3.0 * lg(pf)),
        words: s.layers * (8.0 * s.n * s.f / rp + 2.0 * s.nnz / rp + s.f * s.f),
    }
}

/// §IV-C.6: rectangular-grid 2D forward propagation only:
/// `α·gcf(Pr,Pc) + β(nnz/Pr + nf/Pc + nf/Pr)`.
pub fn two_d_rect_forward(s: &Shape, pr: usize, pc: usize) -> CommCost {
    let g = gcf(pr, pc) as f64;
    CommCost {
        latency_units: g,
        words: s.nnz / pr as f64 + s.n * s.f / pc as f64 + s.n * s.f / pr as f64,
    }
}

/// §IV-D.5: Split-3D-SpMM on a `∛P`-sided mesh:
/// `T ≈ L(α·4·P^{1/3} + β(2nnz/P^{2/3} + 12nf/P^{2/3}))`.
pub fn three_d(s: &Shape, p: usize) -> CommCost {
    let pf = p as f64;
    let p13 = pf.cbrt();
    let p23 = p13 * p13;
    CommCost {
        latency_units: s.layers * 4.0 * p13,
        words: s.layers * (2.0 * s.nnz / p23 + 12.0 * s.n * s.f / p23),
    }
}

/// Closed-form per-rank memory estimates (words), the counterparts of the
/// measured `dist::StorageReport`. `layers` counts stored activation +
/// pre-activation stacks (`2L + 1` dense state blocks of average width
/// `f`).
#[derive(Clone, Copy, Debug)]
pub struct MemoryEstimate {
    /// Sparse adjacency words (2 per nonzero, pointers ignored).
    pub adjacency: f64,
    /// Persistent dense state words.
    pub dense_state: f64,
    /// Peak transient words.
    pub intermediate: f64,
}

impl MemoryEstimate {
    /// Total words.
    pub fn total(&self) -> f64 {
        self.adjacency + self.dense_state + self.intermediate
    }
}

/// 1D memory (§IV-A.3): state scales with `1/P` but the backward holds a
/// full-height `n x f` low-rank product.
pub fn memory_one_d(s: &Shape, p: usize) -> MemoryEstimate {
    let pf = p as f64;
    MemoryEstimate {
        adjacency: 2.0 * s.nnz / pf,
        dense_state: (2.0 * s.layers + 1.0) * s.n * s.f / pf,
        intermediate: s.n * s.f,
    }
}

/// 1.5D memory: adjacency stays `O(nnz/P)` (sliced, not replicated in our
/// variant); the premium is the coarse forward partial (`n/p₁ x f`) plus
/// the backward contribution (`n/c x f`).
pub fn memory_one5_d(s: &Shape, p: usize, c: usize) -> MemoryEstimate {
    assert!(c >= 1 && p.is_multiple_of(c), "c must divide P");
    let p1 = (p / c) as f64;
    let cf = c as f64;
    MemoryEstimate {
        adjacency: 2.0 * s.nnz / p as f64 * 2.0, // fwd slices + bwd copy
        dense_state: (2.0 * s.layers + 1.0) * s.n * s.f / p as f64,
        intermediate: (s.n / p1 + s.n / cf) * s.f,
    }
}

/// 2D memory (§I: "consumes optimal memory"): everything scales with `P`
/// or `√P`.
pub fn memory_two_d(s: &Shape, p: usize) -> MemoryEstimate {
    let pf = p as f64;
    let rp = pf.sqrt();
    MemoryEstimate {
        adjacency: 2.0 * 2.0 * s.nnz / pf, // A and Aᵀ blocks
        dense_state: (2.0 * s.layers + 1.0) * s.n * s.f / pf,
        intermediate: s.n * s.f / rp,
    }
}

/// 3D memory (§IV-D): the pre-fiber-reduction partial is `∛P` times the
/// rank's own state block — the replication that made the paper skip the
/// implementation.
pub fn memory_three_d(s: &Shape, p: usize) -> MemoryEstimate {
    let pf = p as f64;
    let p13 = pf.cbrt();
    MemoryEstimate {
        adjacency: 2.0 * 2.0 * s.nnz / pf,
        dense_state: (2.0 * s.layers + 1.0) * s.n * s.f / pf,
        intermediate: s.n * s.f / (p13 * p13) + s.n * s.f / pf * p13,
    }
}

/// Greatest common factor.
pub fn gcf(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a.max(1)
}

/// The paper's headline ratio (§IV-C.5): under random partitioning
/// (`edgecut ≈ n`), `d ≈ f` (`nnz ≈ nf`) and `f ≪ n`, the 2D algorithm
/// moves `(5/√P)×` the words of the 1D algorithm. Returns
/// `words_2d / words_1d` under exactly those assumptions.
pub fn ratio_2d_over_1d(p: usize) -> f64 {
    // 1D: edgecut·f + nf ≈ 2nf (dropping f²); 2D: 8nf/√P + 2nf/√P.
    let rp = (p as f64).sqrt();
    (10.0 / rp) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Shape {
        // Amazon-like: n = 9.43M, d ≈ 24.6, f ≈ 113 (paper's stated
        // average), L = 3.
        Shape {
            n: 9.43e6,
            nnz: 231.6e6,
            f: 113.0,
            layers: 3.0,
        }
    }

    #[test]
    fn gcf_basics() {
        assert_eq!(gcf(12, 18), 6);
        assert_eq!(gcf(7, 13), 1);
        assert_eq!(gcf(0, 5), 5);
        assert_eq!(gcf(36, 6), 6);
    }

    #[test]
    fn two_d_scales_with_sqrt_p() {
        let s = shape();
        let w16 = two_d(&s, 16).words;
        let w64 = two_d(&s, 64).words;
        // 4x processes => 2x fewer words (up to the f² constant).
        let ratio = w16 / w64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn three_d_scales_with_p_two_thirds() {
        let s = shape();
        let w8 = three_d(&s, 8).words;
        let w64 = three_d(&s, 64).words;
        // 8x processes => 4x fewer words.
        let ratio = w8 / w64;
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn one_d_does_not_scale() {
        let s = shape();
        let w4 = one_d(&s, 4, None).words;
        let w64 = one_d(&s, 64, None).words;
        // 1D words are essentially flat in P.
        assert!(
            (w4 / w64 - 1.0).abs() < 0.2,
            "1D should be flat: {w4} vs {w64}"
        );
    }

    #[test]
    fn headline_ratio_matches_paper() {
        // §IV-C.5: the 2D algorithm moves (5/√P)x the 1D data. At P = 25
        // they break even exactly under the paper's assumptions.
        assert!((ratio_2d_over_1d(25) - 1.0).abs() < 1e-12);
        assert!(ratio_2d_over_1d(100) < 1.0);
        assert!(ratio_2d_over_1d(16) > 1.0);
    }

    #[test]
    fn three_d_beats_two_d_by_sixth_root() {
        let s = shape();
        // Paper §I: 3D reduces words by another O(P^{1/6}). Compare
        // dominant terms at large P (drop f² constants).
        let p = 4096;
        let w2 = two_d(&s, p).words;
        let w3 = three_d(&s, p).words;
        let expect = (p as f64).powf(1.0 / 6.0);
        let got = w2 / w3;
        // Constant factors differ (8 vs 12); allow a wide band around the
        // asymptotic ratio.
        assert!(
            got > 0.4 * expect && got < 2.5 * expect,
            "2d/3d ratio {got} vs P^(1/6) = {expect}"
        );
    }

    #[test]
    fn one5d_interpolates_1d_and_2d() {
        let s = shape();
        let p = 64;
        let w_c1 = one5_d(&s, p, 1).words;
        let w_c8 = one5_d(&s, p, 8).words;
        // More replication, fewer words.
        assert!(w_c8 < w_c1);
        // c = √P lands in the 2D regime: within a small factor of 2D.
        let w2 = two_d(&s, p).words;
        assert!(w_c8 < 2.0 * w2 && w_c8 > 0.1 * w2);
    }

    #[test]
    fn rect_grid_square_minimizes_dense_sum() {
        let s = shape();
        // Dense terms nf/pc + nf/pr minimized at pr = pc for fixed
        // product (the paper's "square has the smallest perimeter").
        let sq = two_d_rect_forward(&s, 8, 8);
        let rect = two_d_rect_forward(&s, 16, 4);
        let dense = |c: &CommCost, pr: f64| c.words - s.nnz / pr;
        assert!(dense(&sq, 8.0) < dense(&rect, 16.0));
        // But the taller grid reduces the sparse term.
        assert!(s.nnz / 16.0 < s.nnz / 8.0);
    }

    #[test]
    fn transposing_variant_adds_transpose_cost() {
        let s = shape();
        let base = one_d_symmetric(&s, 16, None);
        let tr = one_d_transposing(&s, 16, None);
        assert!(tr.latency_units > base.latency_units);
        assert!((tr.words - base.words - 2.0 * s.nnz / 16.0).abs() < 1e-6);
    }

    #[test]
    fn memory_estimates_reflect_the_papers_claims() {
        let s = shape();
        // 1D intermediate is flat in P; 2D's shrinks.
        let m1_16 = memory_one_d(&s, 16);
        let m1_64 = memory_one_d(&s, 64);
        assert_eq!(m1_16.intermediate, m1_64.intermediate);
        let m2_16 = memory_two_d(&s, 16);
        let m2_64 = memory_two_d(&s, 64);
        assert!(m2_64.intermediate < m2_16.intermediate);
        // 2D total strictly beats 1D total at scale (memory-optimal).
        assert!(m2_64.total() < m1_64.total());
        // 3D intermediate exceeds its own per-rank state by ~∛P on the
        // replicated partial.
        let m3 = memory_three_d(&s, 64);
        let state_block = s.n * s.f / 64.0;
        assert!(m3.intermediate > 3.9 * state_block);
        // 1.5D intermediate is minimized near c = √P.
        let i2 = memory_one5_d(&s, 64, 2).intermediate;
        let i8 = memory_one5_d(&s, 64, 8).intermediate;
        let i32 = memory_one5_d(&s, 64, 32).intermediate;
        assert!(i8 < i2 && i8 < i32);
    }

    #[test]
    fn cost_time_combines_terms() {
        let c = CommCost {
            latency_units: 10.0,
            words: 1000.0,
        };
        assert!((c.time(1e-6, 1e-9) - (1e-5 + 1e-6)).abs() < 1e-18);
    }
}
