//! Distributed semiring propagation — the paper's §I extension point made
//! runnable: "many distributed libraries such as Cyclops ... and
//! Combinatorial BLAS allow the user to overload scalar addition
//! operations through their semiring interface, which is exactly the
//! neighborhood aggregate function when applied to graphs."
//!
//! A propagation step is `X ← X ⊕ (Aᵀ ⊗ X)` under a semiring `(⊕, ⊗)`:
//! with `(min, +)` and a distance column it is one SSSP relaxation hop;
//! with `(max, ×)` a max-pool aggregation; with `(+, ×)` the GCN
//! aggregation itself. The distributed version uses the 1D block-row
//! layout of Algorithm 1 — the same broadcasts, the same α–β charging —
//! demonstrating that the paper's training algorithms carry over to
//! classic graph-analytic kernels unchanged.

use cagnet_comm::{Cat, Ctx};
use cagnet_dense::Mat;
use cagnet_sparse::partition::{block_range, block_ranges};
use cagnet_sparse::spmm::{spmm_semiring_acc, spmm_semiring_acc_with, Semiring};
use cagnet_sparse::Csr;

/// Serial reference: `hops` steps of `X ← X ⊕ (Aᵀ ⊗ X)`.
pub fn propagate_serial<S: Semiring>(at: &Csr, x0: &Mat, s: &S, hops: usize) -> Mat {
    assert_eq!(at.cols(), x0.rows(), "operand shapes");
    let mut x = x0.clone();
    for _ in 0..hops {
        let mut next = Mat::filled(at.rows(), x.cols(), s.zero());
        spmm_semiring_acc(at, &x, s, &mut next);
        // Keep the previous value: x ⊕ relaxed.
        for (xi, &ni) in x.as_mut_slice().iter_mut().zip(next.as_slice()) {
            *xi = s.add(*xi, ni);
        }
    }
    x
}

/// Distributed 1D block-row propagation: `Aᵀ` in block rows (one per
/// rank), `X` in matching block rows. Per hop, each rank receives every
/// `X` block via broadcast (dense traffic, exactly Algorithm 1's forward
/// pattern) and ⊕-accumulates its stage products.
///
/// Returns this rank's block of the final `X`.
pub fn propagate_1d<S: Semiring>(ctx: &Ctx, at: &Csr, x0: &Mat, s: &S, hops: usize) -> Mat {
    let p = ctx.size;
    let n = at.cols();
    let (r0, r1) = block_range(n, p, ctx.rank);
    let at_row = at.block(r0, r1, 0, n);
    let at_blocks: Vec<Csr> = block_ranges(n, p)
        .into_iter()
        .map(|(c0, c1)| at_row.block(0, r1 - r0, c0, c1))
        .collect();
    let mut x = x0.block(r0, r1, 0, x0.cols());
    for _ in 0..hops {
        let mut next = Mat::filled(x.rows(), x.cols(), s.zero());
        for (j, at_j) in at_blocks.iter().enumerate() {
            let payload = (j == ctx.rank).then(|| x.clone());
            let xj = ctx.world.bcast(j, payload, Cat::DenseComm);
            ctx.charge_spmm(at_j.nnz(), at_j.rows(), xj.cols());
            spmm_semiring_acc_with(ctx.parallel(), at_j, &xj, s, &mut next);
        }
        for (xi, &ni) in x.as_mut_slice().iter_mut().zip(next.as_slice()) {
            *xi = s.add(*xi, ni);
        }
        ctx.charge_elementwise(x.len());
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_comm::Cluster;
    use cagnet_sparse::generate::erdos_renyi;
    use cagnet_sparse::spmm::{MaxTimes, MinPlus, PlusTimes};
    use cagnet_sparse::Coo;

    fn weighted_digraph() -> Csr {
        // 0 -1-> 1 -2-> 2, 0 -5-> 2, 3 -0.5-> 1, 2 -1-> 3
        Csr::from_coo(Coo::from_entries(
            4,
            4,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (0, 2, 5.0),
                (3, 1, 0.5),
                (2, 3, 1.0),
            ],
        ))
    }

    #[test]
    fn serial_min_plus_computes_sssp() {
        let a = weighted_digraph();
        let at = a.transpose();
        let mut x0 = Mat::filled(4, 1, f64::INFINITY);
        x0[(0, 0)] = 0.0;
        let d = propagate_serial(&at, &x0, &MinPlus, 4);
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(2, 0)], 3.0); // through vertex 1, beats direct 5
        assert_eq!(d[(3, 0)], 4.0); // 0->1->2->3
    }

    #[test]
    fn sssp_matches_floyd_warshall_on_random_graphs() {
        for seed in 0..4 {
            let n = 24;
            let a = erdos_renyi(n, 3.0, seed);
            let at = a.transpose();
            // Floyd–Warshall reference (unit weights).
            let inf = f64::INFINITY;
            let mut dist = vec![vec![inf; n]; n];
            for (v, row) in dist.iter_mut().enumerate() {
                row[v] = 0.0;
            }
            for (u, row) in dist.iter_mut().enumerate() {
                for (v, w) in a.row_entries(u) {
                    row[v] = row[v].min(w);
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        let via = dist[i][k] + dist[k][j];
                        if via < dist[i][j] {
                            dist[i][j] = via;
                        }
                    }
                }
            }
            let mut x0 = Mat::filled(n, 1, inf);
            x0[(0, 0)] = 0.0;
            let d = propagate_serial(&at, &x0, &MinPlus, n);
            for v in 0..n {
                let got = d[(v, 0)];
                let expect = dist[0][v];
                assert!(
                    (got == expect) || (got.is_infinite() && expect.is_infinite()),
                    "seed {seed} vertex {v}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn distributed_matches_serial_for_every_semiring() {
        let n = 40;
        let a = erdos_renyi(n, 4.0, 7);
        let at = a.transpose();
        let x0 = cagnet_dense::init::uniform(n, 3, 0.1, 2.0, 8);
        for p in [1usize, 3, 5] {
            // (+, x)
            let serial = propagate_serial(&at, &x0, &PlusTimes, 3);
            let parts = Cluster::new(p).run(|ctx| propagate_1d(ctx, &at, &x0, &PlusTimes, 3));
            let got = Mat::vstack(&parts.iter().map(|(m, _)| m.clone()).collect::<Vec<_>>());
            assert!(got.approx_eq(&serial, 1e-10), "plus-times P={p}");
            // (max, x)
            let serial = propagate_serial(&at, &x0, &MaxTimes, 3);
            let parts = Cluster::new(p).run(|ctx| propagate_1d(ctx, &at, &x0, &MaxTimes, 3));
            let got = Mat::vstack(&parts.iter().map(|(m, _)| m.clone()).collect::<Vec<_>>());
            assert!(got.approx_eq(&serial, 1e-12), "max-times P={p}");
        }
    }

    #[test]
    fn distributed_sssp_with_comm_accounting() {
        let a = weighted_digraph();
        let at = a.transpose();
        let mut x0 = Mat::filled(4, 1, f64::INFINITY);
        x0[(0, 0)] = 0.0;
        let results = Cluster::new(2).run(|ctx| {
            let mine = propagate_1d(ctx, &at, &x0, &MinPlus, 4);
            (mine, ctx.report())
        });
        let got = Mat::vstack(
            &results
                .iter()
                .map(|((m, _), _)| m.clone())
                .collect::<Vec<_>>(),
        );
        assert_eq!(got[(3, 0)], 4.0);
        // Propagation communicated dense words (the x broadcasts).
        for ((_, rep), _) in &results {
            assert!(rep.words(Cat::DenseComm) > 0);
        }
    }
}
