//! Uniform driver: train a GCN with any of the four distributed
//! algorithms on a simulated cluster and collect losses, accuracy,
//! weights, embeddings, and per-rank timeline reports.

use crate::dist::{
    one5d::One5DTrainer, onedim::OneDimTrainer, onedim_row::OneDimRowTrainer,
    threedim::ThreeDimTrainer, twodim::TwoDimTrainer,
};
use crate::model::GcnConfig;
use crate::optimizer::OptimizerKind;
use crate::problem::Problem;
use cagnet_comm::trace::TraceEvent;
use cagnet_comm::{Cluster, CostModel, Precision, TimelineReport, TransportKind};
use cagnet_dense::activation::Activation;
use cagnet_dense::Mat;

pub use crate::dist::twodim::TwoDimConfig;
pub use crate::dist::CommMode;
pub use cagnet_sparse::partitioner::{PartitionConfig, PartitionObjective};
pub use cagnet_sparse::relabel::Relabeling;

/// Which parallel algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// 1D block row (Algorithm 1).
    OneD,
    /// 1D with `A` partitioned by block rows instead (§IV-A.7) — same
    /// total communication, mirrored forward/backward patterns.
    OneDRow,
    /// 1.5D replicated block row with replication factor `c` (§IV-B).
    One5D {
        /// Replication factor; must divide the process count.
        c: usize,
    },
    /// 2D SUMMA on a square grid (Algorithm 2) — the paper's implemented
    /// variant.
    TwoD,
    /// 2D SUMMA on a rectangular `pr x pc` grid (§IV-C.6): taller grids
    /// shrink sparse traffic (`nnz/pr`) at the cost of the dense terms.
    TwoDRect {
        /// Grid rows.
        pr: usize,
        /// Grid columns.
        pc: usize,
    },
    /// Split-3D-SpMM on a cubic mesh (§IV-D).
    ThreeD,
}

impl Algorithm {
    /// Short name used in bench output.
    pub fn name(&self) -> String {
        match self {
            Algorithm::OneD => "1d".into(),
            Algorithm::OneDRow => "1d-row".into(),
            Algorithm::One5D { c } => format!("1.5d(c={c})"),
            Algorithm::TwoD => "2d".into(),
            Algorithm::TwoDRect { pr, pc } => format!("2d({pr}x{pc})"),
            Algorithm::ThreeD => "3d".into(),
        }
    }

    /// Whether `p` ranks fit this algorithm's process geometry.
    pub fn supports(&self, p: usize) -> bool {
        match self {
            Algorithm::OneD | Algorithm::OneDRow => p >= 1,
            Algorithm::One5D { c } => *c >= 1 && p.is_multiple_of(*c),
            Algorithm::TwoD => cagnet_comm::grid::int_sqrt(p).is_some(),
            Algorithm::TwoDRect { pr, pc } => pr * pc == p,
            Algorithm::ThreeD => cagnet_comm::grid::int_cbrt(p).is_some(),
        }
    }

    /// Number of contiguous row blocks this algorithm's geometry splits
    /// `A`/`H` into at `p` ranks — the part count a vertex partition must
    /// target so that relabeled parts land on whole row blocks: `p` for
    /// the 1D family, `p/c` coarse blocks for 1.5D, grid rows for
    /// 2D/SUMMA, the cube side for 3D. Requires `supports(p)`.
    pub fn row_groups(&self, p: usize) -> usize {
        debug_assert!(self.supports(p), "{} does not support P={p}", self.name());
        match self {
            Algorithm::OneD | Algorithm::OneDRow => p,
            Algorithm::One5D { c } => p / (*c).max(1),
            Algorithm::TwoD => cagnet_comm::grid::int_sqrt(p).unwrap_or(1),
            Algorithm::TwoDRect { pr, .. } => *pr,
            Algorithm::ThreeD => cagnet_comm::grid::int_cbrt(p).unwrap_or(1),
        }
    }
}

/// How [`train_distributed`] obtains the vertex partition that drives
/// its relabeling pass (see [`TrainConfig::partition`]).
#[derive(Clone, Debug)]
pub enum PartitionSpec {
    /// Run [`partition_greedy_bfs`] on the problem's adjacency with this
    /// configuration. `num_parts` is overridden with the algorithm's
    /// [`Algorithm::row_groups`] so parts land on whole row blocks.
    Auto(PartitionConfig),
    /// A precomputed assignment: `part[v]` = owning part of vertex `v`.
    /// Length must equal the vertex count and every id must be below
    /// [`Algorithm::row_groups`] for the run's algorithm and `p`.
    Explicit(Vec<usize>),
}

/// Run-level options.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Epochs to run (timed).
    pub epochs: usize,
    /// 2D tuning knobs (ignored by the other algorithms).
    pub twod: TwoDimConfig,
    /// Gather final embeddings/weights (skip for pure benchmarking runs).
    pub collect_outputs: bool,
    /// Update rule for the replicated weight step (default: the paper's
    /// plain gradient descent).
    pub optimizer: OptimizerKind,
    /// Hidden-layer activation (default ReLU, the paper's σ).
    pub activation: Activation,
    /// Hidden-layer dropout rate (inverted dropout, deterministic and
    /// layout-independent; 0 disables).
    pub dropout: f64,
    /// Intra-rank compute threads for local GEMM/SpMM kernels (default 1
    /// = serial). Results are bit-for-bit independent of this knob; only
    /// wall-clock and the modeled compute terms change.
    pub threads_per_rank: usize,
    /// How every trainer moves dense blocks: full broadcasts, or the
    /// sparsity-aware exchange that ships only the rows the receivers'
    /// sparse blocks touch (per-stage SUMMA panels for 2D/3D). Results
    /// are bit-for-bit independent of this knob; only the metered
    /// communication changes.
    pub comm_mode: CommMode,
    /// Pipeline stage fetches and weight-gradient reductions as
    /// nonblocking collectives overlapped with compute (default on).
    /// Results are bit-for-bit independent of this knob; only modeled
    /// (and wall-clock) time changes. See DESIGN.md §10.
    pub overlap: bool,
    /// Record per-rank execution traces over the timed epochs (export
    /// with [`cagnet_comm::trace::to_chrome_json`]). Off by default —
    /// tracing retains every charged interval in memory.
    pub trace: bool,
    /// Transport backend for the distributed run: `None` (default)
    /// defers to the `CAGNET_TRANSPORT` environment variable (shared
    /// memory when unset); `Some(TransportKind::Socket)` forces real
    /// worker processes over Unix domain sockets. Results are
    /// bit-identical across backends.
    pub transport: Option<TransportKind>,
    /// Wire precision for dense collectives (default [`Precision::F64`],
    /// the exact historical behaviour). `F32`/`Bf16` round dense payloads
    /// at the communicator boundary only — local compute and reduction
    /// accumulation stay f64 — halving (or quartering) the metered
    /// dense-comm words. See DESIGN.md §14.
    pub precision: Precision,
    /// Vertex partition wired into the row distribution (default `None` =
    /// the historical natural-id block distribution). When set, the
    /// problem is relabeled part-major before the cluster launches (see
    /// [`cagnet_sparse::relabel`]): losses, weights, and accuracy are
    /// bit-identical to training the relabeled problem directly, returned
    /// embeddings are mapped back to original vertex ids, and under
    /// [`CommMode::SparsityAware`]/[`CommMode::Cached`] a good partition
    /// strictly lowers the metered DenseComm words at `P > 1`. See
    /// DESIGN.md §15.
    pub partition: Option<PartitionSpec>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            twod: TwoDimConfig::default(),
            collect_outputs: true,
            optimizer: OptimizerKind::Sgd,
            activation: Activation::Relu,
            dropout: 0.0,
            threads_per_rank: 1,
            comm_mode: CommMode::default(),
            overlap: true,
            trace: false,
            transport: None,
            precision: Precision::default(),
            partition: None,
        }
    }
}

/// Result of a distributed training run.
#[derive(Clone, Debug)]
pub struct DistTrainResult {
    /// Pre-update loss per epoch (identical on every rank).
    pub losses: Vec<f64>,
    /// Final global training accuracy.
    pub accuracy: f64,
    /// Per-rank timeline reports covering exactly the timed epochs.
    pub reports: Vec<TimelineReport>,
    /// Final replicated weights (empty if `collect_outputs` is false).
    pub weights: Vec<Mat>,
    /// Final output embeddings `H^L` (empty if `collect_outputs` is
    /// false).
    pub embeddings: Mat,
    /// Process count used.
    pub world: usize,
    /// Per-rank execution traces over the timed epochs (empty unless
    /// `TrainConfig::trace` was set).
    pub traces: Vec<Vec<TraceEvent>>,
    /// The vertex relabeling applied when [`TrainConfig::partition`] was
    /// set (`None` otherwise). `embeddings` are already mapped back to
    /// original vertex ids; this exposes the id maps and per-part ranges
    /// for callers that want to inspect the partition itself.
    pub relabeling: Option<Relabeling>,
}

impl DistTrainResult {
    /// Modeled seconds per epoch: max final clock over ranks divided by
    /// the epoch count (the BSP epoch time of the paper's Figure 2, whose
    /// y-axis is its reciprocal, epochs/second).
    pub fn epoch_seconds(&self, epochs: usize) -> f64 {
        let max_clock = self.reports.iter().map(|r| r.clock).fold(0.0f64, f64::max);
        max_clock / epochs.max(1) as f64
    }
}

/// Result of a distributed inference run.
#[derive(Clone, Debug)]
pub struct InferResult {
    /// Output embeddings `H^L` (log-probabilities), assembled on every
    /// rank and returned once.
    pub embeddings: Mat,
    /// Global mean masked NLL of the supplied model.
    pub loss: f64,
    /// Global accuracy of the supplied model.
    pub accuracy: f64,
    /// Per-rank timeline reports for the single forward pass.
    pub reports: Vec<TimelineReport>,
}

/// Resolve `tc.partition` into a relabeled problem plus the id maps
/// (`None` when no partition was requested). Runs *before* the cluster
/// launches, so the relabeling is deterministic and identical across
/// transport backends — socket workers re-derive it when they replay the
/// binary.
fn prepare_partition(
    problem: &Problem,
    algo: Algorithm,
    p: usize,
    tc: &TrainConfig,
) -> Option<(Problem, Relabeling)> {
    let spec = tc.partition.as_ref()?;
    let groups = algo.row_groups(p);
    let part = match spec {
        PartitionSpec::Auto(cfg) => {
            let cfg = PartitionConfig {
                num_parts: groups,
                ..*cfg
            };
            cagnet_sparse::partitioner::partition_greedy_bfs(&problem.adj, &cfg)
        }
        PartitionSpec::Explicit(part) => {
            assert_eq!(
                part.len(),
                problem.vertices(),
                "explicit partition length does not match vertex count"
            );
            for &q in part.iter() {
                assert!(
                    q < groups,
                    "explicit partition id {q} out of range for {groups} row groups"
                );
            }
            part.clone()
        }
    };
    Some(problem.relabeled(&part, groups))
}

/// Distributed inference: one forward pass of `algo` on `p` ranks with a
/// *given* weight stack (e.g. from a prior training run). The paper notes
/// all of its algorithms apply unchanged to inference (§I); this is that
/// path, with the same communication accounting as training forward
/// passes. When [`TrainConfig::partition`] is set the problem is
/// relabeled exactly as in [`train_distributed`] (the weight stack is
/// row-id-agnostic, so weights trained either way apply) and the returned
/// embeddings are mapped back to original vertex ids.
pub fn infer_distributed(
    problem: &Problem,
    gcn: &GcnConfig,
    weights: &[Mat],
    algo: Algorithm,
    p: usize,
    model: CostModel,
    tc: &TrainConfig,
) -> InferResult {
    assert!(algo.supports(p), "{} does not support P={p}", algo.name());
    let prepared = prepare_partition(problem, algo, p, tc);
    let (problem, relabeling) = match &prepared {
        Some((prob, rl)) => (prob, Some(rl)),
        None => (problem, None),
    };
    let mut cluster = Cluster::new(p)
        .with_model(model)
        .with_threads_per_rank(tc.threads_per_rank)
        .with_precision(tc.precision);
    if let Some(t) = tc.transport {
        cluster = cluster.with_transport(t);
    }
    let per_rank = cluster.run_wire(|ctx| {
        macro_rules! run_forward {
            ($t:expr) => {{
                let mut t = $t;
                t.set_weights(weights.to_vec());
                let loss = t.forward(ctx);
                let report = ctx.report();
                let accuracy = t.accuracy(ctx);
                let embeddings = t.gather_embeddings(ctx);
                (loss, accuracy, report, embeddings)
            }};
        }
        match algo {
            Algorithm::OneD => {
                let mut t = OneDimTrainer::setup(ctx, problem, gcn);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
                run_forward!(t)
            }
            Algorithm::OneDRow => {
                let mut t = OneDimRowTrainer::setup(ctx, problem, gcn);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
                run_forward!(t)
            }
            Algorithm::One5D { c } => {
                let mut t = One5DTrainer::setup(ctx, problem, gcn, c);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
                run_forward!(t)
            }
            Algorithm::TwoD => {
                let mut t = TwoDimTrainer::setup(ctx, problem, gcn, tc.twod);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
                run_forward!(t)
            }
            Algorithm::TwoDRect { pr, pc } => {
                let mut t = TwoDimTrainer::setup_rect(ctx, problem, gcn, tc.twod, pr, pc);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
                run_forward!(t)
            }
            Algorithm::ThreeD => {
                let mut t = ThreeDimTrainer::setup(ctx, problem, gcn);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
                run_forward!(t)
            }
        }
    });
    let (loss, accuracy, _, embeddings) = per_rank[0].0.clone();
    let embeddings = match relabeling {
        Some(rl) if embeddings.rows() == rl.len() => rl.unpermute_rows(&embeddings),
        _ => embeddings,
    };
    InferResult {
        embeddings,
        loss,
        accuracy,
        reports: per_rank.iter().map(|((_, _, r, _), _)| *r).collect(),
    }
}

/// Train `problem` with `algo` on `p` simulated ranks.
///
/// # Panics
/// Panics if `p` does not fit the algorithm's geometry (see
/// [`Algorithm::supports`]).
pub fn train_distributed(
    problem: &Problem,
    gcn: &GcnConfig,
    algo: Algorithm,
    p: usize,
    model: CostModel,
    tc: &TrainConfig,
) -> DistTrainResult {
    assert!(algo.supports(p), "{} does not support P={p}", algo.name());
    let prepared = prepare_partition(problem, algo, p, tc);
    let (problem, relabeling) = match &prepared {
        Some((prob, rl)) => (prob, Some(rl.clone())),
        None => (problem, None),
    };
    enum AnyTrainer {
        OneD(OneDimTrainer),
        OneDRow(OneDimRowTrainer),
        One5D(One5DTrainer),
        TwoD(Box<TwoDimTrainer>),
        ThreeD(Box<ThreeDimTrainer>),
    }

    let mut cluster = Cluster::new(p)
        .with_model(model)
        .with_threads_per_rank(tc.threads_per_rank)
        .with_precision(tc.precision);
    if let Some(t) = tc.transport {
        cluster = cluster.with_transport(t);
    }
    let per_rank = cluster.run_wire(|ctx| {
        let mut tr = match algo {
            Algorithm::OneD => AnyTrainer::OneD(OneDimTrainer::setup(ctx, problem, gcn)),
            Algorithm::OneDRow => AnyTrainer::OneDRow(OneDimRowTrainer::setup(ctx, problem, gcn)),
            Algorithm::One5D { c } => AnyTrainer::One5D(One5DTrainer::setup(ctx, problem, gcn, c)),
            Algorithm::TwoD => {
                AnyTrainer::TwoD(Box::new(TwoDimTrainer::setup(ctx, problem, gcn, tc.twod)))
            }
            Algorithm::TwoDRect { pr, pc } => AnyTrainer::TwoD(Box::new(
                TwoDimTrainer::setup_rect(ctx, problem, gcn, tc.twod, pr, pc),
            )),
            Algorithm::ThreeD => {
                AnyTrainer::ThreeD(Box::new(ThreeDimTrainer::setup(ctx, problem, gcn)))
            }
        };
        match &mut tr {
            AnyTrainer::OneD(t) => {
                t.set_optimizer(tc.optimizer);
                t.set_hidden_activation(tc.activation);
                t.set_dropout(tc.dropout);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
            }
            AnyTrainer::OneDRow(t) => {
                t.set_optimizer(tc.optimizer);
                t.set_hidden_activation(tc.activation);
                t.set_dropout(tc.dropout);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
            }
            AnyTrainer::One5D(t) => {
                t.set_optimizer(tc.optimizer);
                t.set_hidden_activation(tc.activation);
                t.set_dropout(tc.dropout);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
            }
            AnyTrainer::TwoD(t) => {
                t.set_optimizer(tc.optimizer);
                t.set_hidden_activation(tc.activation);
                t.set_dropout(tc.dropout);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
            }
            AnyTrainer::ThreeD(t) => {
                t.set_optimizer(tc.optimizer);
                t.set_hidden_activation(tc.activation);
                t.set_dropout(tc.dropout);
                t.set_comm_mode(tc.comm_mode);
                t.set_overlap(tc.overlap);
            }
        }
        if tc.trace {
            ctx.enable_tracing();
        }
        let mut losses = Vec::with_capacity(tc.epochs);
        for _ in 0..tc.epochs {
            let loss = match &mut tr {
                AnyTrainer::OneD(t) => t.epoch(ctx),
                AnyTrainer::OneDRow(t) => t.epoch(ctx),
                AnyTrainer::One5D(t) => t.epoch(ctx),
                AnyTrainer::TwoD(t) => t.epoch(ctx),
                AnyTrainer::ThreeD(t) => t.epoch(ctx),
            };
            losses.push(loss);
        }
        // Snapshot the timed-epoch ledger (and trace) before the
        // (untimed-in-spirit) evaluation pass.
        let report = ctx.report();
        let trace = if tc.trace {
            ctx.take_trace()
        } else {
            Vec::new()
        };
        let accuracy = match &mut tr {
            AnyTrainer::OneD(t) => t.accuracy(ctx),
            AnyTrainer::OneDRow(t) => t.accuracy(ctx),
            AnyTrainer::One5D(t) => t.accuracy(ctx),
            AnyTrainer::TwoD(t) => t.accuracy(ctx),
            AnyTrainer::ThreeD(t) => t.accuracy(ctx),
        };
        let outputs = if tc.collect_outputs {
            let weights = match &tr {
                AnyTrainer::OneD(t) => t.weights().to_vec(),
                AnyTrainer::OneDRow(t) => t.weights().to_vec(),
                AnyTrainer::One5D(t) => t.weights().to_vec(),
                AnyTrainer::TwoD(t) => t.weights().to_vec(),
                AnyTrainer::ThreeD(t) => t.weights().to_vec(),
            };
            let embeddings = match &tr {
                AnyTrainer::OneD(t) => t.gather_embeddings(ctx),
                AnyTrainer::OneDRow(t) => t.gather_embeddings(ctx),
                AnyTrainer::One5D(t) => t.gather_embeddings(ctx),
                AnyTrainer::TwoD(t) => t.gather_embeddings(ctx),
                AnyTrainer::ThreeD(t) => t.gather_embeddings(ctx),
            };
            Some((weights, embeddings))
        } else {
            None
        };
        (losses, accuracy, report, trace, outputs)
    });

    let ((losses0, accuracy, _, _, _), _) = &per_rank[0];
    let reports: Vec<TimelineReport> = per_rank.iter().map(|((_, _, r, _, _), _)| *r).collect();
    let traces: Vec<Vec<TraceEvent>> = per_rank
        .iter()
        .map(|((_, _, _, t, _), _)| t.clone())
        .collect();
    let (weights, embeddings) = match &per_rank[0].0 .4 {
        Some((w, e)) => (w.clone(), e.clone()),
        None => (Vec::new(), Mat::zeros(0, 0)),
    };
    // Hand embeddings back in original vertex ids; weights are
    // row-id-agnostic and need no mapping.
    let embeddings = match &relabeling {
        Some(rl) if embeddings.rows() == rl.len() => rl.unpermute_rows(&embeddings),
        _ => embeddings,
    };
    DistTrainResult {
        losses: losses0.clone(),
        accuracy: *accuracy,
        reports,
        weights,
        embeddings,
        world: p,
        traces,
        relabeling,
    }
}
