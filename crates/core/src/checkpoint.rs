//! Model checkpointing: save/load a weight stack to a compact binary
//! file, so a model trained under one geometry can be served later (see
//! [`crate::trainer::infer_distributed`]) or training can resume.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   8 bytes  "CAGNETW1"
//! count   u64      number of matrices
//! per matrix:
//!   rows  u64
//!   cols  u64
//!   data  rows*cols f64
//! ```

use cagnet_dense::Mat;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CAGNETW1";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural failure (bad magic, truncated file, absurd sizes).
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Format(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Write a weight stack to any writer.
pub fn save_weights<W: Write>(writer: W, weights: &[Mat]) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(weights.len() as u64).to_le_bytes())?;
    for m in weights {
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &x in m.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Read a weight stack from any reader.
///
/// Equivalent to [`load_weights_limited`] with an unknown input length:
/// declared sizes are still bounds-checked and allocation is grown
/// incrementally, but a corrupted header can only be caught when the
/// data read runs dry. Prefer [`load_weights_file`] (which knows the
/// file size) when reading from disk.
pub fn load_weights<R: Read>(reader: R) -> Result<Vec<Mat>, CheckpointError> {
    load_weights_limited(reader, None)
}

/// Preallocation cap (elements) when the input length is unknown: a
/// hostile header then costs at most 512 KiB up front, with the vector
/// growing only as actual data arrives.
const PREALLOC_CAP: usize = 1 << 16;

/// Read a weight stack, validating every declared matrix size against
/// the total input length when it is known. A corrupted or hostile
/// header (e.g. `rows = 2^16, cols = 2^16` in a 40-byte file) is then
/// rejected with [`CheckpointError::Format`] *before* any allocation or
/// data read happens, instead of attempting a multi-gigabyte
/// `Vec::with_capacity`.
pub fn load_weights_limited<R: Read>(
    reader: R,
    input_len: Option<u64>,
) -> Result<Vec<Mat>, CheckpointError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| CheckpointError::Format("file too short for header".into()))?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("wrong magic bytes".into()));
    }
    let count = read_u64(&mut r)? as usize;
    if count > 1 << 20 {
        return Err(CheckpointError::Format(format!(
            "implausible matrix count {count}"
        )));
    }
    // Bytes consumed so far: magic + count, then per-matrix headers and
    // data as we go.
    let mut consumed: u64 = 16;
    let mut out = Vec::with_capacity(count.min(PREALLOC_CAP));
    for i in 0..count {
        let rows = read_u64(&mut r)? as usize;
        let cols = read_u64(&mut r)? as usize;
        consumed += 16;
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| CheckpointError::Format(format!("matrix {i}: size overflow")))?;
        if elems > 1 << 32 {
            return Err(CheckpointError::Format(format!(
                "matrix {i}: implausible size {rows}x{cols}"
            )));
        }
        let data_bytes = elems as u64 * 8;
        if let Some(len) = input_len {
            if consumed + data_bytes > len {
                return Err(CheckpointError::Format(format!(
                    "matrix {i}: declared size {rows}x{cols} exceeds remaining input \
                     ({data_bytes} bytes needed, {} available)",
                    len.saturating_sub(consumed)
                )));
            }
        }
        let cap = if input_len.is_some() {
            elems
        } else {
            elems.min(PREALLOC_CAP)
        };
        let mut data = Vec::with_capacity(cap);
        let mut buf = [0u8; 8];
        for _ in 0..elems {
            r.read_exact(&mut buf)
                .map_err(|_| CheckpointError::Format(format!("matrix {i}: truncated data")))?;
            data.push(f64::from_le_bytes(buf));
        }
        consumed += data_bytes;
        out.push(Mat::from_vec(rows, cols, data));
    }
    // Trailing garbage is a corruption signal.
    let mut extra = [0u8; 1];
    if r.read(&mut extra)? != 0 {
        return Err(CheckpointError::Format("trailing bytes after data".into()));
    }
    Ok(out)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)
        .map_err(|_| CheckpointError::Format("truncated integer".into()))?;
    Ok(u64::from_le_bytes(buf))
}

/// Save a weight stack to a file path.
pub fn save_weights_file<P: AsRef<Path>>(path: P, weights: &[Mat]) -> Result<(), CheckpointError> {
    save_weights(std::fs::File::create(path)?, weights)
}

/// Load a weight stack from a file path. The file size bounds every
/// declared matrix size up front (see [`load_weights_limited`]), so
/// corrupted headers fail fast without large allocations.
pub fn load_weights_file<P: AsRef<Path>>(path: P) -> Result<Vec<Mat>, CheckpointError> {
    let f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    load_weights_limited(f, Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_dense::init::glorot_uniform;

    #[test]
    fn roundtrip_in_memory() {
        let weights = vec![
            glorot_uniform(10, 4, 1),
            glorot_uniform(4, 4, 2),
            glorot_uniform(4, 3, 3),
        ];
        let mut buf = Vec::new();
        save_weights(&mut buf, &weights).unwrap();
        let back = load_weights(&buf[..]).unwrap();
        assert_eq!(weights.len(), back.len());
        for (a, b) in weights.iter().zip(&back) {
            assert_eq!(a, b, "bitwise roundtrip");
        }
    }

    #[test]
    fn roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("cagnet_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.bin");
        let weights = vec![glorot_uniform(7, 5, 4)];
        save_weights_file(&path, &weights).unwrap();
        let back = load_weights_file(&path).unwrap();
        assert_eq!(weights[0], back[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_stack_and_empty_matrix() {
        let mut buf = Vec::new();
        save_weights(&mut buf, &[]).unwrap();
        assert!(load_weights(&buf[..]).unwrap().is_empty());
        let mut buf = Vec::new();
        save_weights(&mut buf, &[Mat::zeros(0, 5)]).unwrap();
        let back = load_weights(&buf[..]).unwrap();
        assert_eq!(back[0].shape(), (0, 5));
    }

    #[test]
    fn corruption_is_detected() {
        let weights = vec![glorot_uniform(3, 3, 5)];
        let mut buf = Vec::new();
        save_weights(&mut buf, &weights).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(load_weights(&bad[..]).is_err());
        // Truncated.
        let short = &buf[..buf.len() - 5];
        assert!(load_weights(short).is_err());
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0xFF);
        assert!(load_weights(&long[..]).is_err());
        // Implausible header.
        let mut huge = MAGIC.to_vec();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(load_weights(&huge[..]).is_err());
    }

    #[test]
    fn hostile_size_header_is_rejected_before_allocation() {
        // A 40-byte file claiming one 2^16 x 2^16 matrix: the element
        // count (2^32) passes the absolute plausibility cap, but the 32
        // GiB of data it implies cannot fit the remaining input. With a
        // known input length this must fail up front.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 16).to_le_bytes());
        buf.extend_from_slice(&(1u64 << 16).to_le_bytes());
        let err = load_weights_limited(&buf[..], Some(buf.len() as u64)).unwrap_err();
        match err {
            CheckpointError::Format(m) => {
                assert!(m.contains("exceeds remaining input"), "{m}")
            }
            e => panic!("expected Format error, got: {e}"),
        }
        // Unknown input length: still an error (data runs dry), still no
        // huge up-front allocation (bounded by PREALLOC_CAP).
        assert!(load_weights(&buf[..]).is_err());
    }

    #[test]
    fn fuzzed_corruption_errors_cleanly() {
        // Deterministic xorshift byte-flipping over a valid checkpoint:
        // every mutation must yield Ok or CheckpointError — never a
        // panic, abort, or runaway allocation.
        let weights = vec![glorot_uniform(4, 3, 8), glorot_uniform(3, 2, 9)];
        let mut base = Vec::new();
        save_weights(&mut base, &weights).unwrap();
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..1000 {
            let mut buf = base.clone();
            for _ in 0..=(rng() as usize % 3) {
                let pos = rng() as usize % buf.len();
                buf[pos] ^= (rng() % 255 + 1) as u8;
            }
            // Occasionally truncate too.
            if rng() % 4 == 0 {
                buf.truncate(rng() as usize % (base.len() + 1));
            }
            let _ = load_weights_limited(&buf[..], Some(buf.len() as u64));
            let _ = load_weights(&buf[..]);
        }
    }

    #[test]
    fn trained_model_roundtrips_through_checkpoint() {
        use crate::{GcnConfig, Problem, SerialTrainer};
        use cagnet_sparse::generate::erdos_renyi;
        let g = erdos_renyi(30, 3.0, 6);
        let problem = Problem::synthetic(&g, 6, 3, 1.0, 7);
        let cfg = GcnConfig::three_layer(6, 5, 3);
        let mut t = SerialTrainer::new(&problem, cfg.clone());
        t.train(10);
        let loss_before = t.forward();
        let mut buf = Vec::new();
        save_weights(&mut buf, t.weights()).unwrap();
        // Fresh trainer, loaded weights: identical loss.
        let mut t2 = SerialTrainer::new(&problem, cfg);
        t2.set_weights(load_weights(&buf[..]).unwrap());
        let loss_after = t2.forward();
        assert_eq!(loss_before, loss_after);
    }
}
