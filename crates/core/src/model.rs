//! GCN model configuration and weights.
//!
//! The paper trains the 3-layer GCN architecture of Kipf & Welling (§V-A):
//! per layer `l`, `Z^l = Aᵀ H^{l-1} W^l` and `H^l = σ(Z^l)` with ReLU on
//! hidden layers and row-wise `log_softmax` on the output layer.

use cagnet_dense::init::glorot_uniform;
use cagnet_dense::Mat;

/// Model hyperparameters shared by the serial and all distributed
/// trainers.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    /// Layer widths `[f⁰, f¹, ..., f^L]`: `f⁰` is the input feature
    /// length, `f^L` the label count; the GCN has `L = dims.len() - 1`
    /// layers.
    pub dims: Vec<usize>,
    /// Gradient-descent learning rate `η` (`W ← W − η·Y`).
    pub lr: f64,
    /// Seed for weight initialization. Identical seeds give identical
    /// weights in every trainer — the basis of the parallel == serial
    /// verification (§V-A).
    pub seed: u64,
}

impl GcnConfig {
    /// The paper's 3-layer shape: `features → hidden → hidden → labels`.
    pub fn three_layer(features: usize, hidden: usize, labels: usize) -> Self {
        GcnConfig {
            dims: vec![features, hidden, hidden, labels],
            lr: 0.01,
            seed: 0xCA61E7,
        }
    }

    /// Number of layers `L`.
    pub fn layers(&self) -> usize {
        assert!(self.dims.len() >= 2, "need at least one layer");
        self.dims.len() - 1
    }

    /// Input feature width `f⁰`.
    pub fn f_in(&self) -> usize {
        assert!(self.dims.len() >= 2, "need at least one layer");
        self.dims[0]
    }

    /// Output width `f^L` (the label count).
    pub fn f_out(&self) -> usize {
        assert!(self.dims.len() >= 2, "need at least one layer");
        self.dims[self.dims.len() - 1]
    }

    /// Widest layer width `max_l f^l` — bounds the transient dense
    /// buffers every distribution materializes.
    pub fn f_max(&self) -> usize {
        self.dims.iter().copied().fold(0, usize::max)
    }

    /// Initialize the weight stack `W¹..W^L` deterministically.
    pub fn init_weights(&self) -> Vec<Mat> {
        (0..self.layers())
            .map(|l| {
                glorot_uniform(
                    self.dims[l],
                    self.dims[l + 1],
                    self.seed.wrapping_add(l as u64),
                )
            })
            .collect()
    }

    /// The paper's "average feature vector length" `f` used in its
    /// simplified cost formulas.
    pub fn avg_width(&self) -> f64 {
        self.dims.iter().sum::<usize>() as f64 / self.dims.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_layer_shape() {
        let cfg = GcnConfig::three_layer(602, 16, 41);
        assert_eq!(cfg.dims, vec![602, 16, 16, 41]);
        assert_eq!(cfg.layers(), 3);
    }

    #[test]
    fn weights_match_dims_and_are_deterministic() {
        let cfg = GcnConfig::three_layer(10, 4, 3);
        let w1 = cfg.init_weights();
        let w2 = cfg.init_weights();
        assert_eq!(w1.len(), 3);
        assert_eq!(w1[0].shape(), (10, 4));
        assert_eq!(w1[1].shape(), (4, 4));
        assert_eq!(w1[2].shape(), (4, 3));
        for (a, b) in w1.iter().zip(&w2) {
            assert_eq!(a, b);
        }
        // Layers get distinct seeds.
        assert_ne!(w1[0].as_slice()[0], w1[1].as_slice()[0]);
    }

    #[test]
    fn avg_width() {
        let cfg = GcnConfig {
            dims: vec![8, 4, 4],
            lr: 0.1,
            seed: 0,
        };
        assert!((cfg.avg_width() - 16.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn degenerate_dims_panics() {
        let cfg = GcnConfig {
            dims: vec![5],
            lr: 0.1,
            seed: 0,
        };
        let _ = cfg.layers();
    }
}
