//! Sampling-based training — the paper's future-work direction (§VII).
//!
//! The paper trains full-batch, argues (§I, citing ROC) that
//! "sampling based methods can lead to lower accuracy", and closes with
//! "we envision future work where our distributed training algorithms are
//! carefully combined with sophisticated sampling based methods". This
//! module provides the two standard sampling knobs so that trade-off can
//! be measured here:
//!
//! * **mini-batch loss masking** — each epoch draws a random subset of the
//!   training vertices into the loss (the paper's note that its
//!   algorithms "can be easily modified to operate on a mini-batch
//!   setting"); the graph computation stays full-graph.
//! * **neighbor sampling** (GraphSAGE-style) — each epoch keeps at most
//!   `k` uniformly-chosen neighbors per vertex, rescaled by `deg/k` so
//!   aggregate magnitudes stay unbiased, then re-normalizes. This is the
//!   mechanism that bounds the neighborhood-explosion memory the paper
//!   describes in §I — at the cost of gradient noise.
//!
//! The `sampling_tradeoff` example compares convergence against the
//! full-batch reference.

use crate::model::GcnConfig;
use crate::problem::Problem;
use crate::serial::SerialTrainer;
use cagnet_sparse::normalize::gcn_normalize;
use cagnet_sparse::{Coo, Csr};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sampling configuration.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Keep at most this many neighbors per vertex per epoch (`None` =
    /// use the full neighborhood).
    pub neighbor_cap: Option<usize>,
    /// Fraction of the training set included in each epoch's loss
    /// (1.0 = full batch).
    pub batch_fraction: f64,
    /// Base seed; each epoch derives its own stream.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            neighbor_cap: None,
            batch_fraction: 1.0,
            seed: 0,
        }
    }
}

/// Draw a neighbor-sampled sub-adjacency of a **raw** (unnormalized)
/// graph: each vertex keeps at most `cap` of its out-neighbors, chosen
/// uniformly without replacement, with kept edge weights scaled by
/// `deg/kept` (Horvitz–Thompson correction so the expected row sum is
/// preserved).
pub fn sample_neighbors(raw: &Csr, cap: usize, seed: u64) -> Csr {
    assert!(cap > 0, "neighbor cap must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(raw.rows(), raw.cols());
    let mut row: Vec<(usize, f64)> = Vec::new();
    for i in 0..raw.rows() {
        row.clear();
        row.extend(raw.row_entries(i));
        let deg = row.len();
        if deg <= cap {
            for &(j, v) in &row {
                coo.push(i, j, v);
            }
        } else {
            row.shuffle(&mut rng);
            let scale = deg as f64 / cap as f64;
            for &(j, v) in row.iter().take(cap) {
                coo.push(i, j, v * scale);
            }
        }
    }
    Csr::from_coo(coo)
}

/// Draw a per-epoch mini-batch mask: each training vertex enters with
/// probability `frac` (at least one is always kept).
pub fn sample_batch_mask(train_mask: &[bool], frac: f64, seed: u64) -> Vec<bool> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out: Vec<bool> = train_mask
        .iter()
        .map(|&m| m && rng.gen::<f64>() < frac)
        .collect();
    if !out.iter().any(|&m| m) {
        if let Some(first) = train_mask.iter().position(|&m| m) {
            out[first] = true;
        }
    }
    out
}

/// Deterministic per-epoch seed derivation shared by the serial and
/// distributed sampled trainers (so they draw identical samples).
pub fn epoch_seed(base: u64, epoch: u64) -> u64 {
    base.wrapping_add(epoch.wrapping_mul(0x9E37_79B9))
}

/// Serial trainer with per-epoch sampling. Holds the **raw** graph and
/// regenerates a normalized sampled adjacency (and/or mini-batch mask)
/// every epoch.
pub struct SampledTrainer {
    raw: Csr,
    base: Problem,
    cfg: GcnConfig,
    sampler: SamplerConfig,
    weights: Vec<cagnet_dense::Mat>,
    epoch_counter: u64,
}

impl SampledTrainer {
    /// Build from the raw (unnormalized) graph and problem data.
    pub fn new(raw: Csr, base: Problem, cfg: GcnConfig, sampler: SamplerConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&sampler.batch_fraction) && sampler.batch_fraction > 0.0,
            "batch fraction must be in (0, 1]"
        );
        let weights = cfg.init_weights();
        SampledTrainer {
            raw,
            base,
            cfg,
            sampler,
            weights,
            epoch_counter: 0,
        }
    }

    /// One epoch on a fresh sample; returns the epoch's (sampled) loss.
    pub fn epoch(&mut self) -> f64 {
        let e = self.epoch_counter;
        self.epoch_counter += 1;
        let seed = epoch_seed(self.sampler.seed, e);
        let adj = match self.sampler.neighbor_cap {
            Some(cap) => gcn_normalize(&sample_neighbors(&self.raw, cap, seed)),
            None => self.base.adj.clone(),
        };
        let mask = if self.sampler.batch_fraction < 1.0 {
            sample_batch_mask(
                &self.base.train_mask,
                self.sampler.batch_fraction,
                seed ^ 0xB47C,
            )
        } else {
            self.base.train_mask.clone()
        };
        let problem = Problem::new(
            adj,
            self.base.features.clone(),
            self.base.labels.clone(),
            mask,
            self.base.num_classes,
        );
        let mut t = SerialTrainer::new(&problem, self.cfg.clone());
        t.set_weights(std::mem::take(&mut self.weights));
        let loss = t.epoch();
        self.weights = t.weights().to_vec();
        loss
    }

    /// Train for `epochs` epochs; returns per-epoch sampled losses.
    pub fn train(&mut self, epochs: usize) -> Vec<f64> {
        (0..epochs).map(|_| self.epoch()).collect()
    }

    /// Evaluate the current model on the **full** graph and training
    /// mask: `(loss, accuracy)`. This is the fair comparison point
    /// against full-batch training.
    pub fn evaluate_full(&self) -> (f64, f64) {
        let mut t = SerialTrainer::new(&self.base, self.cfg.clone());
        t.set_weights(self.weights.clone());
        let loss = t.forward();
        let acc = t.accuracy();
        (loss, acc)
    }

    /// Current weights.
    pub fn weights(&self) -> &[cagnet_dense::Mat] {
        &self.weights
    }
}

/// §VII realized: the paper's distributed training algorithms "carefully
/// combined with sophisticated sampling based methods". Each epoch, every
/// rank deterministically draws the same sampled adjacency / mini-batch
/// mask (sampling is seed-synchronized, requiring no communication), sets
/// up the paper's 1D block-row trainer on the sampled graph with the
/// carried-over weights, and runs one epoch. Returns per-epoch sampled
/// losses, final weights, and per-rank timeline reports covering the
/// training communication (sampling itself is uncharged preprocessing,
/// like the paper's data loading).
///
/// Uses the 1D algorithm; the construction is identical for the other
/// geometries (the trainer is rebuilt per epoch because the sampled
/// sparsity pattern changes).
pub fn train_distributed_sampled(
    raw: &Csr,
    base: &Problem,
    cfg: &GcnConfig,
    sampler: SamplerConfig,
    p: usize,
    model: cagnet_comm::CostModel,
    epochs: usize,
) -> (
    Vec<f64>,
    Vec<cagnet_dense::Mat>,
    Vec<cagnet_comm::TimelineReport>,
) {
    use crate::dist::onedim::OneDimTrainer;
    let per_rank = cagnet_comm::Cluster::new(p).with_model(model).run(|ctx| {
        let mut weights: Option<Vec<cagnet_dense::Mat>> = None;
        let mut losses = Vec::with_capacity(epochs);
        for e in 0..epochs {
            let seed = epoch_seed(sampler.seed, e as u64);
            let adj = match sampler.neighbor_cap {
                Some(cap) => gcn_normalize(&sample_neighbors(raw, cap, seed)),
                None => base.adj.clone(),
            };
            let mask = if sampler.batch_fraction < 1.0 {
                sample_batch_mask(&base.train_mask, sampler.batch_fraction, seed ^ 0xB47C)
            } else {
                base.train_mask.clone()
            };
            let problem = Problem::new(
                adj,
                base.features.clone(),
                base.labels.clone(),
                mask,
                base.num_classes,
            );
            let mut t = OneDimTrainer::setup(ctx, &problem, cfg);
            if let Some(w) = weights.take() {
                t.set_weights(w);
            }
            losses.push(t.epoch(ctx));
            weights = Some(t.weights().to_vec());
        }
        let Some(weights) = weights else {
            panic!("sampled training needs at least one epoch")
        };
        (losses, weights, ctx.report())
    });
    let (losses, weights, _) = per_rank[0].0.clone();
    let reports = per_rank.iter().map(|((_, _, r), _)| *r).collect();
    (losses, weights, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_sparse::generate::erdos_renyi;

    fn setup(seed: u64) -> (Csr, Problem, GcnConfig) {
        let raw = erdos_renyi(60, 8.0, seed);
        let problem = Problem::synthetic(&raw, 8, 3, 1.0, seed + 1);
        let cfg = GcnConfig::three_layer(8, 6, 3);
        (raw, problem, cfg)
    }

    #[test]
    fn neighbor_sampling_caps_degree() {
        let (raw, _, _) = setup(61);
        let s = sample_neighbors(&raw, 3, 7);
        for i in 0..s.rows() {
            assert!(s.row_nnz(i) <= 3, "row {i} kept {} neighbors", s.row_nnz(i));
            assert!(s.row_nnz(i) <= raw.row_nnz(i));
        }
        assert!(s.nnz() < raw.nnz());
    }

    #[test]
    fn neighbor_sampling_preserves_expected_row_sums() {
        // Horvitz–Thompson scaling: sampled row sum equals the original
        // row sum in expectation; check the mean over many draws.
        let (raw, _, _) = setup(62);
        // The check needs a row the fanout-3 sampler actually truncates.
        // Take the highest-degree vertex and pin the precondition by
        // name: an Erdős–Rényi draw at mean degree 8 on 60 vertices
        // always has one, but a future seed or parameter change must
        // fail here, not in a bare `Option::unwrap`.
        let i = (0..raw.rows())
            .max_by_key(|&v| raw.row_nnz(v))
            .expect("test graph has no vertices");
        assert!(
            raw.row_nnz(i) >= 6,
            "test graph precondition: max degree {} < 6 — regenerate with a denser \
             erdos_renyi draw",
            raw.row_nnz(i)
        );
        let original: f64 = raw.row_entries(i).map(|(_, v)| v).sum();
        let draws = 200;
        let mean: f64 = (0..draws)
            .map(|d| {
                sample_neighbors(&raw, 3, d as u64)
                    .row_entries(i)
                    .map(|(_, v)| v)
                    .sum::<f64>()
            })
            .sum::<f64>()
            / draws as f64;
        assert!(
            (mean - original).abs() < 0.15 * original.max(1.0),
            "mean sampled row sum {mean} vs original {original}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (raw, _, _) = setup(63);
        assert_eq!(sample_neighbors(&raw, 2, 5), sample_neighbors(&raw, 2, 5));
        assert_ne!(sample_neighbors(&raw, 2, 5), sample_neighbors(&raw, 2, 6));
    }

    #[test]
    fn batch_mask_subsets_training_set() {
        let mask = vec![true, true, false, true, true, false];
        let b = sample_batch_mask(&mask, 0.5, 9);
        for (orig, sub) in mask.iter().zip(&b) {
            assert!(!sub | orig, "batch mask escaped the training set");
        }
        // Never empty.
        let b0 = sample_batch_mask(&mask, 1e-9, 10);
        assert!(b0.iter().any(|&m| m));
    }

    #[test]
    fn sampled_training_decreases_loss() {
        let (raw, problem, cfg) = setup(64);
        let mut t = SampledTrainer::new(
            raw,
            problem,
            cfg,
            SamplerConfig {
                neighbor_cap: Some(4),
                batch_fraction: 0.5,
                seed: 11,
            },
        );
        let (before, _) = t.evaluate_full();
        t.train(40);
        let (after, _) = t.evaluate_full();
        assert!(
            after < before,
            "sampled training failed to learn: {before} -> {after}"
        );
    }

    #[test]
    fn full_batch_config_matches_serial_exactly() {
        // neighbor_cap = None and batch_fraction = 1.0 degrade to plain
        // full-batch training.
        let (raw, problem, cfg) = setup(65);
        let mut sampled =
            SampledTrainer::new(raw, problem.clone(), cfg.clone(), SamplerConfig::default());
        let ls = sampled.train(5);
        let mut reference = SerialTrainer::new(&problem, cfg);
        let lr = reference.train(5);
        assert_eq!(ls, lr);
    }

    #[test]
    fn sampling_adds_gradient_noise() {
        // The paper's §I claim (after ROC) is statistical: sampling trades
        // approximation error for memory. Two measurable signatures on a
        // fixed instance: (1) aggressively-sampled training never beats
        // full batch by more than noise, averaged over seeds; (2) the
        // full-batch trajectory is monotone while the sampled one
        // fluctuates.
        let (raw, problem, cfg) = setup(66);
        let epochs = 50;
        let mut full = SerialTrainer::new(&problem, cfg.clone());
        let full_losses = full.train(epochs);
        let full_loss = full.forward();
        // (2) full-batch descent is monotone after warmup.
        assert!(full_losses.windows(2).skip(5).all(|w| w[1] <= w[0] + 1e-9));
        let mut sampled_mean = 0.0;
        let mut any_nonmonotone = false;
        let seeds = 5;
        for s in 0..seeds {
            let mut t = SampledTrainer::new(
                raw.clone(),
                problem.clone(),
                cfg.clone(),
                SamplerConfig {
                    neighbor_cap: Some(2),
                    batch_fraction: 1.0,
                    seed: 21 + s,
                },
            );
            let traj = t.train(epochs);
            any_nonmonotone |= traj.windows(2).skip(5).any(|w| w[1] > w[0] + 1e-9);
            sampled_mean += t.evaluate_full().0 / seeds as f64;
        }
        assert!(any_nonmonotone, "sampled trajectories should fluctuate");
        // (1) on average, sampling does not beat full batch.
        assert!(
            sampled_mean >= full_loss - 1e-3,
            "aggressive sampling beat full batch on average: {sampled_mean} < {full_loss}"
        );
    }
}
