//! A full-batch node-classification training problem.
//!
//! Bundles the normalized adjacency, input features, labels, and training
//! mask. Every rank of a simulated cluster slices its local blocks from a
//! shared [`Problem`] during (uncharged) setup — the analogue of the
//! paper's data-loading phase, which it likewise excludes from epoch
//! timings.

use cagnet_dense::init::{random_labels, uniform};
use cagnet_dense::Mat;
use cagnet_sparse::datasets::Dataset;
use cagnet_sparse::normalize::gcn_normalize;
use cagnet_sparse::relabel::{apply_partition, Relabeling};
use cagnet_sparse::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A node-classification instance.
#[derive(Clone, Debug)]
pub struct Problem {
    /// Normalized adjacency `Â` (the paper's `A`).
    pub adj: Csr,
    /// `Âᵀ`, precomputed (equal to `adj` for undirected graphs).
    pub adj_t: Csr,
    /// Input features `H⁰` (`n x f⁰`).
    pub features: Mat,
    /// Class id per vertex.
    pub labels: Vec<usize>,
    /// Which vertices participate in the loss (training set).
    pub train_mask: Vec<bool>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Problem {
    /// Assemble a problem from parts; transposes the adjacency once.
    pub fn new(
        adj: Csr,
        features: Mat,
        labels: Vec<usize>,
        train_mask: Vec<bool>,
        num_classes: usize,
    ) -> Self {
        let n = adj.rows();
        assert_eq!(adj.cols(), n, "adjacency must be square");
        assert_eq!(features.rows(), n, "features rows != vertices");
        assert_eq!(labels.len(), n, "labels length != vertices");
        assert_eq!(train_mask.len(), n, "mask length != vertices");
        assert!(
            labels.iter().all(|&c| c < num_classes),
            "label out of range"
        );
        assert!(train_mask.iter().any(|&m| m), "empty training set");
        let adj_t = adj.transpose();
        Problem {
            adj,
            adj_t,
            features,
            labels,
            train_mask,
            num_classes,
        }
    }

    /// Synthetic problem over an arbitrary raw adjacency: normalizes the
    /// graph, draws uniform features and random labels, and marks
    /// `train_frac` of the vertices as training nodes (the paper uses the
    /// whole graph as the training set for Amazon/Protein — pass 1.0).
    pub fn synthetic(
        raw_adj: &Csr,
        feature_len: usize,
        num_classes: usize,
        train_frac: f64,
        seed: u64,
    ) -> Self {
        let n = raw_adj.rows();
        let adj = gcn_normalize(raw_adj);
        let features = uniform(n, feature_len, -1.0, 1.0, seed ^ 0xFEA7);
        let labels = random_labels(n, num_classes, seed ^ 0x1ABE1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x3A5C);
        let mut train_mask: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < train_frac).collect();
        if !train_mask.iter().any(|&m| m) {
            train_mask[0] = true;
        }
        Self::new(adj, features, labels, train_mask, num_classes)
    }

    /// A *learnable* synthetic problem: labels are supplied (e.g.
    /// community ids of a planted-partition graph) and each vertex's
    /// features are uniform noise plus `signal` added at its label's
    /// coordinate. Neighborhood aggregation denoises the signal, so GCN
    /// accuracy genuinely improves with training — the setting used by
    /// convergence-comparison experiments (e.g. full-batch vs sampled).
    pub fn labeled(
        raw_adj: &Csr,
        labels: Vec<usize>,
        num_classes: usize,
        feature_len: usize,
        signal: f64,
        train_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(
            feature_len >= num_classes,
            "need one feature slot per class"
        );
        let n = raw_adj.rows();
        assert_eq!(labels.len(), n, "labels length");
        let adj = gcn_normalize(raw_adj);
        let mut features = uniform(n, feature_len, -1.0, 1.0, seed ^ 0xFEA7);
        for (v, &c) in labels.iter().enumerate() {
            features[(v, c)] += signal;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x3A5C);
        let mut train_mask: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < train_frac).collect();
        if !train_mask.iter().any(|&m| m) {
            train_mask[0] = true;
        }
        Self::new(adj, features, labels, train_mask, num_classes)
    }

    /// Problem from a generated dataset stand-in (see
    /// `cagnet_sparse::datasets`): features/labels per the dataset spec,
    /// whole-graph training set as in the paper's §V-C.
    pub fn from_dataset(ds: &Dataset, seed: u64) -> Self {
        let n = ds.adj.rows();
        let features = uniform(n, ds.spec.features, -1.0, 1.0, seed ^ 0xFEA7);
        let labels = random_labels(n, ds.spec.labels, seed ^ 0x1ABE1);
        let train_mask = vec![true; n];
        // ds.adj is already GCN-normalized.
        Self::new(ds.adj.clone(), features, labels, train_mask, ds.spec.labels)
    }

    /// Relabel the problem part-major under `part` (see
    /// [`cagnet_sparse::relabel`]): each part's vertices occupy a
    /// contiguous block of new ids — the layout the trainers' block row
    /// distribution consumes — with adjacency, features, labels, and
    /// train mask permuted consistently. Training the returned problem
    /// is bit-identical to training `self` modulo the id permutation.
    pub fn relabeled(&self, part: &[usize], num_parts: usize) -> (Problem, Relabeling) {
        let (adj, rl) = apply_partition(&self.adj, part, num_parts);
        let features = rl.permute_rows(&self.features);
        let labels = rl.permute(&self.labels);
        let train_mask = rl.permute(&self.train_mask);
        (
            Self::new(adj, features, labels, train_mask, self.num_classes),
            rl,
        )
    }

    /// Vertex count.
    pub fn vertices(&self) -> usize {
        self.adj.rows()
    }

    /// Count of `true` entries in an arbitrary vertex mask.
    pub fn mask_count(mask: &[bool]) -> usize {
        mask.iter().filter(|&&m| m).count()
    }

    /// Number of training vertices.
    pub fn train_count(&self) -> usize {
        self.train_mask.iter().filter(|&&m| m).count()
    }
}

/// Disjoint train / validation / test vertex masks.
#[derive(Clone, Debug)]
pub struct Splits {
    /// Training vertices.
    pub train: Vec<bool>,
    /// Validation vertices (early stopping / model selection).
    pub val: Vec<bool>,
    /// Held-out test vertices.
    pub test: Vec<bool>,
}

impl Splits {
    /// Randomly assign each vertex to train/val/test with the given
    /// fractions (test gets the remainder). Each split is guaranteed
    /// non-empty for `n >= 3`.
    pub fn random(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Splits {
        assert!(n >= 3, "need at least 3 vertices to split");
        assert!(
            train_frac > 0.0 && val_frac > 0.0 && train_frac + val_frac < 1.0,
            "fractions must be positive and leave room for a test set"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut train = vec![false; n];
        let mut val = vec![false; n];
        let mut test = vec![false; n];
        for v in 0..n {
            let u: f64 = rng.gen();
            if u < train_frac {
                train[v] = true;
            } else if u < train_frac + val_frac {
                val[v] = true;
            } else {
                test[v] = true;
            }
        }
        // Guarantee non-emptiness deterministically.
        let force = |mask: &mut Vec<bool>, others: [&mut Vec<bool>; 2], at: usize| {
            if !mask.iter().any(|&m| m) {
                mask[at] = true;
                for o in others {
                    o[at] = false;
                }
            }
        };
        {
            let (t, rest) = (&mut train, (&mut val, &mut test));
            force(t, [rest.0, rest.1], 0);
        }
        {
            let (v2, rest) = (&mut val, (&mut train, &mut test));
            force(v2, [rest.0, rest.1], 1);
        }
        {
            let (te, rest) = (&mut test, (&mut train, &mut val));
            force(te, [rest.0, rest.1], 2);
        }
        Splits { train, val, test }
    }

    /// Assert the three masks are pairwise disjoint and cover every
    /// vertex at most once.
    pub fn validate(&self) {
        for v in 0..self.train.len() {
            let c =
                usize::from(self.train[v]) + usize::from(self.val[v]) + usize::from(self.test[v]);
            assert!(c <= 1, "vertex {v} in {c} splits");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_sparse::generate::erdos_renyi;

    #[test]
    fn synthetic_shapes() {
        let g = erdos_renyi(64, 4.0, 1);
        let p = Problem::synthetic(&g, 8, 5, 0.5, 2);
        assert_eq!(p.vertices(), 64);
        assert_eq!(p.features.shape(), (64, 8));
        assert_eq!(p.labels.len(), 64);
        assert!(p.train_count() > 0 && p.train_count() < 64);
        assert_eq!(p.num_classes, 5);
        // adj_t really is the transpose.
        assert_eq!(p.adj_t, p.adj.transpose());
    }

    #[test]
    fn full_train_mask() {
        let g = erdos_renyi(32, 3.0, 3);
        let p = Problem::synthetic(&g, 4, 3, 1.0, 4);
        assert_eq!(p.train_count(), 32);
    }

    #[test]
    fn normalized_adjacency_is_symmetric_for_undirected() {
        let mut coo = cagnet_sparse::Coo::new(10, 10);
        for i in 0..9 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        let g = Csr::from_coo(coo);
        let p = Problem::synthetic(&g, 4, 2, 1.0, 5);
        assert!(p.adj.to_dense().approx_eq(&p.adj_t.to_dense(), 1e-14));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_train_set() {
        let g = erdos_renyi(8, 2.0, 1);
        let adj = gcn_normalize(&g);
        let _ = Problem::new(adj, Mat::zeros(8, 2), vec![0; 8], vec![false; 8], 2);
    }
}
