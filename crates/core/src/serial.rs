//! Serial reference GCN trainer.
//!
//! Implements the paper's forward (§III-C) and backpropagation (§III-D)
//! equations directly on full matrices:
//!
//! ```text
//! forward:   Z^l = Aᵀ H^{l-1} W^l ;  H^l = σ(Z^l)
//! backward:  G^L = ∇_{H^L} L ⊙ σ'(Z^L)
//!            G^{l-1} = A G^l (W^l)ᵀ ⊙ σ'(Z^{l-1})
//!            Y^l = (H^{l-1})ᵀ A G^l ;  W^l ← W^l − η Y^l
//! ```
//!
//! Every distributed trainer is verified against this implementation: the
//! paper states its parallel runs "output the same embeddings up to
//! floating point accumulation errors" as serial PyTorch (§V-A), and the
//! integration tests assert the same property here.

use crate::loss::{accuracy_counts, nll_sum, output_gradient};
use crate::model::GcnConfig;
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::problem::Problem;
use cagnet_dense::activation::{log_softmax_rows, Activation};
use cagnet_dense::ops::hadamard_assign;
use cagnet_dense::{matmul, matmul_nt, matmul_tn, Mat};
use cagnet_sparse::spmm::spmm;

/// Serial full-batch GCN trainer (the correctness reference).
pub struct SerialTrainer<'p> {
    problem: &'p Problem,
    cfg: GcnConfig,
    weights: Vec<Mat>,
    opt: Optimizer,
    act: Activation,
    dropout: f64,
    training: bool,
    epoch_counter: u64,
    drop_masks: Vec<Option<Mat>>,
    /// Stored pre-activations `Z^1..Z^L` from the last forward pass.
    zs: Vec<Mat>,
    /// Stored activations `H⁰..H^L` from the last forward pass.
    hs: Vec<Mat>,
}

impl<'p> SerialTrainer<'p> {
    /// New trainer with freshly initialized weights.
    pub fn new(problem: &'p Problem, cfg: GcnConfig) -> Self {
        assert_eq!(cfg.f_in(), problem.features.cols(), "input width mismatch");
        assert_eq!(cfg.f_out(), problem.num_classes, "output width mismatch");
        let weights = cfg.init_weights();
        let opt = Optimizer::for_weights(OptimizerKind::Sgd, cfg.lr, &weights);
        SerialTrainer {
            problem,
            cfg,
            weights,
            opt,
            act: Activation::Relu,
            dropout: 0.0,
            training: false,
            epoch_counter: 0,
            drop_masks: Vec::new(),
            zs: Vec::new(),
            hs: Vec::new(),
        }
    }

    /// Forward pass; stores intermediates for backprop and returns the
    /// mean masked NLL loss.
    pub fn forward(&mut self) -> f64 {
        let l_total = self.cfg.layers();
        self.zs.clear();
        self.drop_masks = vec![None; l_total];
        self.hs.clear();
        self.hs.push(self.problem.features.clone());
        for l in 0..l_total {
            let t = spmm(&self.problem.adj_t, &self.hs[l]);
            let z = matmul(&t, &self.weights[l]);
            let f_out = self.cfg.dims[l + 1];
            let h = if l + 1 == l_total {
                log_softmax_rows(&z)
            } else {
                let mut h = self.act.apply(&z);
                self.apply_dropout(l, 0, f_out, 0, f_out, &mut h);
                h
            };
            self.zs.push(z);
            self.hs.push(h);
        }
        nll_sum(
            self.embeddings(),
            &self.problem.labels,
            &self.problem.train_mask,
            0,
        ) / self.problem.train_count() as f64
    }

    /// Backward pass + gradient-descent step. Must follow [`Self::forward`].
    pub fn backward(&mut self) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "forward must run before backward");
        let mut g = output_gradient(
            &self.zs[l_total - 1],
            &self.problem.labels,
            &self.problem.train_mask,
            0,
            self.problem.train_count(),
        );
        for l in (0..l_total).rev() {
            // Shared intermediate A G^l (reused by both Y and G^{l-1}, as
            // the paper's §IV-A.4 notes).
            let ag = spmm(&self.problem.adj, &g);
            let y = matmul_tn(&self.hs[l], &ag);
            if l > 0 {
                g = matmul_nt(&ag, &self.weights[l]);
                hadamard_assign(&mut g, &self.act.prime(&self.zs[l - 1]));
                if let Some(mask) = self.drop_masks[l - 1].take() {
                    hadamard_assign(&mut g, &mask);
                }
            }
            self.opt.step(l, &mut self.weights[l], &y);
        }
    }

    /// One full epoch (forward + backward); returns the pre-update loss.
    pub fn epoch(&mut self) -> f64 {
        self.training = true;
        self.epoch_counter += 1;
        let loss = self.forward();
        self.backward();
        self.training = false;
        loss
    }

    /// Train for `epochs` epochs; returns the per-epoch losses.
    pub fn train(&mut self, epochs: usize) -> Vec<f64> {
        (0..epochs).map(|_| self.epoch()).collect()
    }

    /// Training-set accuracy of the current model.
    pub fn accuracy(&mut self) -> f64 {
        let _ = self.forward();
        let (c, t) = accuracy_counts(
            self.embeddings(),
            &self.problem.labels,
            &self.problem.train_mask,
            0,
        );
        c as f64 / t.max(1) as f64
    }

    /// Current weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }

    /// Output embeddings `H^L` from the last forward pass.
    pub fn embeddings(&self) -> &Mat {
        match self.hs.last() {
            Some(h) => h,
            None => panic!("run forward first"),
        }
    }

    /// Gradients of the current point, without updating weights — used by
    /// the finite-difference gradient check.
    pub fn gradients(&mut self) -> Vec<Mat> {
        let l_total = self.cfg.layers();
        let _ = self.forward();
        let mut grads = vec![Mat::zeros(0, 0); l_total];
        let mut g = output_gradient(
            &self.zs[l_total - 1],
            &self.problem.labels,
            &self.problem.train_mask,
            0,
            self.problem.train_count(),
        );
        for l in (0..l_total).rev() {
            let ag = spmm(&self.problem.adj, &g);
            grads[l] = matmul_tn(&self.hs[l], &ag);
            if l > 0 {
                g = matmul_nt(&ag, &self.weights[l]);
                hadamard_assign(&mut g, &self.act.prime(&self.zs[l - 1]));
                if let Some(mask) = self.drop_masks[l - 1].take() {
                    hadamard_assign(&mut g, &mask);
                }
            }
        }
        grads
    }

    /// Mean NLL of the current model over an arbitrary vertex mask (runs
    /// a forward pass).
    pub fn loss_on(&mut self, mask: &[bool]) -> f64 {
        let _ = self.forward();
        let count = mask.iter().filter(|&&m| m).count().max(1);
        nll_sum(self.embeddings(), &self.problem.labels, mask, 0) / count as f64
    }

    /// Accuracy of the current model over an arbitrary vertex mask (runs
    /// a forward pass).
    pub fn accuracy_on(&mut self, mask: &[bool]) -> f64 {
        let _ = self.forward();
        let (c, t) = accuracy_counts(self.embeddings(), &self.problem.labels, mask, 0);
        c as f64 / t.max(1) as f64
    }

    /// Train with validation-based early stopping: run up to `max_epochs`
    /// epochs, tracking mean NLL on `val_mask`; stop once the validation
    /// loss has not improved by at least `min_delta` for `patience`
    /// consecutive epochs, and restore the best-validation weights.
    /// Returns `(epochs_run, best_val_loss)`.
    pub fn fit_early_stopping(
        &mut self,
        val_mask: &[bool],
        max_epochs: usize,
        patience: usize,
        min_delta: f64,
    ) -> (usize, f64) {
        assert!(patience >= 1, "patience must be positive");
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        let mut best = f64::INFINITY;
        let mut best_weights = self.weights.clone();
        let mut since_best = 0usize;
        let mut run = 0usize;
        for _ in 0..max_epochs {
            self.epoch();
            run += 1;
            let vl = self.loss_on(val_mask);
            if vl < best - min_delta {
                best = vl;
                best_weights = self.weights.clone();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    break;
                }
            }
        }
        self.weights = best_weights;
        (run, best)
    }

    fn apply_dropout(
        &mut self,
        layer: usize,
        row_offset: usize,
        f_total: usize,
        c0: usize,
        c1: usize,
        h: &mut Mat,
    ) {
        if self.training && self.dropout > 0.0 {
            let mask = crate::dropout::mask_block(
                crate::dropout::DropoutKey {
                    base_seed: self.cfg.seed,
                    epoch: self.epoch_counter,
                    layer,
                },
                self.dropout,
                row_offset,
                h.rows(),
                f_total,
                c0,
                c1,
            );
            cagnet_dense::ops::hadamard_assign(h, &mask);
            self.drop_masks[layer] = Some(mask);
        }
    }

    /// Set the hidden-layer dropout rate (inverted dropout; a fresh
    /// deterministic mask per epoch, identical across layouts and ranks —
    /// see [`crate::dropout`]). 0 disables it; evaluation forwards never
    /// apply it.
    pub fn set_dropout(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        self.dropout = rate;
    }

    /// Select the hidden-layer activation (default ReLU, the paper's σ;
    /// the output layer stays log-softmax). Elementwise, so it changes no
    /// communication. Must be set identically on every rank.
    pub fn set_hidden_activation(&mut self, act: Activation) {
        self.act = act;
    }

    /// Select the optimizer; resets accumulated state.
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.opt = Optimizer::for_weights(kind, self.cfg.lr, &self.weights);
    }

    /// Replace the weights (test hook for gradient checking).
    pub fn set_weights(&mut self, weights: Vec<Mat>) {
        assert_eq!(weights.len(), self.cfg.layers());
        self.weights = weights;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_sparse::generate::erdos_renyi;

    fn small_problem(seed: u64) -> Problem {
        let g = erdos_renyi(24, 3.0, seed);
        Problem::synthetic(&g, 6, 3, 1.0, seed + 1)
    }

    #[test]
    fn loss_decreases_over_training() {
        let p = small_problem(1);
        let mut t = SerialTrainer::new(&p, GcnConfig::three_layer(6, 8, 3));
        let losses = t.train(30);
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss did not decrease: {losses:?}"
        );
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn initial_loss_near_log_k() {
        // With random init, predictions are near-uniform: loss ≈ ln(3).
        let p = small_problem(2);
        let mut t = SerialTrainer::new(&p, GcnConfig::three_layer(6, 8, 3));
        let l0 = t.forward();
        assert!((l0 - (3.0f64).ln()).abs() < 0.5, "l0 = {l0}");
    }

    #[test]
    fn accuracy_improves_with_training() {
        let p = small_problem(3);
        // The optimizer captures lr at construction, so the raised lr
        // must be set before building the trainer to take effect.
        let mut cfg = GcnConfig::three_layer(6, 12, 3);
        cfg.lr = 0.5;
        let mut t = SerialTrainer::new(&p, cfg);
        let before = t.accuracy();
        t.train(200);
        let after = t.accuracy();
        assert!(after >= before, "accuracy regressed: {before} -> {after}");
        assert!(after > 0.4, "final accuracy too low: {after}");
    }

    #[test]
    fn gradient_check_finite_differences() {
        // Central-difference check of dL/dW for every weight entry of a
        // tiny 2-layer model.
        let g = erdos_renyi(10, 2.0, 5);
        let p = Problem::synthetic(&g, 3, 2, 1.0, 6);
        let cfg = GcnConfig {
            dims: vec![3, 4, 2],
            lr: 0.1,
            seed: 7,
        };
        let mut t = SerialTrainer::new(&p, cfg.clone());
        let base_weights: Vec<Mat> = t.weights().to_vec();
        let grads = t.gradients();
        let eps = 1e-6;
        for l in 0..cfg.layers() {
            for i in 0..base_weights[l].rows() {
                for j in 0..base_weights[l].cols() {
                    let mut wp = base_weights.clone();
                    wp[l][(i, j)] += eps;
                    t.set_weights(wp);
                    let lp = t.forward();
                    let mut wm = base_weights.clone();
                    wm[l][(i, j)] -= eps;
                    t.set_weights(wm);
                    let lm = t.forward();
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = grads[l][(i, j)];
                    assert!(
                        (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                        "layer {l} ({i},{j}): fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let p = small_problem(8);
        let cfg = GcnConfig::three_layer(6, 8, 3);
        let mut t1 = SerialTrainer::new(&p, cfg.clone());
        let mut t2 = SerialTrainer::new(&p, cfg);
        let l1 = t1.train(5);
        let l2 = t2.train(5);
        assert_eq!(l1, l2);
        for (a, b) in t1.weights().iter().zip(t2.weights()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn embeddings_are_log_probabilities() {
        let p = small_problem(9);
        let mut t = SerialTrainer::new(&p, GcnConfig::three_layer(6, 8, 3));
        let _ = t.forward();
        let emb = t.embeddings();
        // Each row exponentiates and sums to 1.
        for i in 0..emb.rows() {
            let s: f64 = emb.row(i).iter().map(|&x| x.exp()).sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn config_mismatch_panics() {
        let p = small_problem(10);
        let _ = SerialTrainer::new(&p, GcnConfig::three_layer(7, 8, 3));
    }
}
