//! GraphSAGE-mean — a second GNN architecture on the same distributed
//! machinery.
//!
//! The paper argues its algorithms are model-agnostic: "our distributed
//! algorithms can be used to implement anything that is supported by
//! PyTorch Geometric" (§II). GCN is one aggregation; this module
//! implements GraphSAGE with the mean aggregator (Hamilton et al. \[17\],
//! which the paper cites for Reddit) to demonstrate the claim concretely:
//!
//! ```text
//! Z^l = [ H^{l-1} ‖ Ā H^{l-1} ] W^l ,   H^l = σ(Z^l)
//! ```
//!
//! with `Ā = D⁻¹A` the mean aggregator and `W^l ∈ R^{2f_{l-1} x f_l}`
//! (top half applied to the self features, bottom half to the
//! aggregate). The communication structure is *identical* to the GCN
//! trainers — the same block-row SpMM broadcasts, the same `f x f`
//! all-reduces — because the algebra is still SpMM + GEMM, which is the
//! paper's whole point.
//!
//! Backward (derived exactly like §III-D):
//!
//! ```text
//! Y_top^l = (H^{l-1})ᵀ G^l          Y_bot^l = (Ā H^{l-1})ᵀ G^l
//! ∂L/∂H^{l-1} = G^l (W_top^l)ᵀ + Āᵀ G^l (W_bot^l)ᵀ
//! G^{l-1} = ∂L/∂H^{l-1} ⊙ σ'(Z^{l-1})
//! ```

use crate::loss::{accuracy_counts, nll_sum, output_gradient};
use crate::problem::Problem;
use cagnet_comm::{Cat, Ctx};
use cagnet_dense::activation::{log_softmax_rows, relu, relu_prime};
use cagnet_dense::init::glorot_uniform;
use cagnet_dense::ops::{add_assign, axpy_neg, hadamard_assign};
use cagnet_dense::{matmul, matmul_nt, matmul_tn, Mat};
use cagnet_sparse::partition::{block_range, block_ranges};
use cagnet_sparse::spmm::{spmm, spmm_acc};
use cagnet_sparse::{Coo, Csr};
use std::sync::Arc;

/// GraphSAGE model configuration.
#[derive(Clone, Debug)]
pub struct SageConfig {
    /// Layer widths `[f⁰, ..., f^L]`.
    pub dims: Vec<usize>,
    /// Learning rate.
    pub lr: f64,
    /// Weight-init seed.
    pub seed: u64,
}

impl SageConfig {
    /// Number of layers.
    pub fn layers(&self) -> usize {
        assert!(self.dims.len() >= 2, "need at least one layer");
        self.dims.len() - 1
    }

    /// Output width `f^L` (the label count).
    pub fn f_out(&self) -> usize {
        assert!(self.dims.len() >= 2, "need at least one layer");
        self.dims[self.dims.len() - 1]
    }

    /// Initialize the stacked weights (`2f_in x f_out` per layer).
    pub fn init_weights(&self) -> Vec<Mat> {
        (0..self.layers())
            .map(|l| {
                glorot_uniform(
                    2 * self.dims[l],
                    self.dims[l + 1],
                    self.seed.wrapping_add(l as u64),
                )
            })
            .collect()
    }
}

/// Row-normalized mean aggregator `Ā = D⁻¹ A` (no self loops — SAGE keeps
/// the self features in the concatenation instead). Vertices without
/// out-edges aggregate nothing (zero row).
pub fn mean_aggregator(a: &Csr) -> Csr {
    assert_eq!(a.rows(), a.cols(), "aggregator needs square adjacency");
    let mut coo = Coo::new(a.rows(), a.cols());
    for i in 0..a.rows() {
        let deg: f64 = a.row_entries(i).map(|(_, v)| v).sum();
        if deg > 0.0 {
            for (j, v) in a.row_entries(i) {
                coo.push(i, j, v / deg);
            }
        }
    }
    Csr::from_coo(coo)
}

/// Serial GraphSAGE-mean trainer (reference).
pub struct SageSerialTrainer<'p> {
    problem: &'p Problem,
    /// Mean aggregator `Ā` (and its transpose).
    abar: Csr,
    abar_t: Csr,
    cfg: SageConfig,
    weights: Vec<Mat>,
    zs: Vec<Mat>,
    hs: Vec<Mat>,
    /// Stored aggregates `Ā H^{l-1}` per layer.
    ms: Vec<Mat>,
}

impl<'p> SageSerialTrainer<'p> {
    /// New trainer; derives the mean aggregator from the problem's *raw*
    /// normalized adjacency pattern (weights are re-normalized row-wise).
    pub fn new(problem: &'p Problem, cfg: SageConfig) -> Self {
        assert_eq!(cfg.dims[0], problem.features.cols(), "input width");
        assert_eq!(cfg.f_out(), problem.num_classes, "output width");
        let abar = mean_aggregator(&problem.adj);
        let abar_t = abar.transpose();
        let weights = cfg.init_weights();
        SageSerialTrainer {
            problem,
            abar,
            abar_t,
            cfg,
            weights,
            zs: Vec::new(),
            hs: Vec::new(),
            ms: Vec::new(),
        }
    }

    /// Forward pass; returns mean masked NLL.
    pub fn forward(&mut self) -> f64 {
        let l_total = self.cfg.layers();
        self.zs.clear();
        self.ms.clear();
        self.hs.clear();
        self.hs.push(self.problem.features.clone());
        for l in 0..l_total {
            let h = &self.hs[l];
            let m = spmm(&self.abar, h);
            let cat = Mat::hstack(&[h.clone(), m.clone()]);
            let z = matmul(&cat, &self.weights[l]);
            let out = if l + 1 == l_total {
                log_softmax_rows(&z)
            } else {
                relu(&z)
            };
            self.ms.push(m);
            self.zs.push(z);
            self.hs.push(out);
        }
        nll_sum(
            crate::dist::output_block(&self.hs),
            &self.problem.labels,
            &self.problem.train_mask,
            0,
        ) / self.problem.train_count() as f64
    }

    /// Backward + SGD step.
    pub fn backward(&mut self) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "run forward first");
        let mut g = output_gradient(
            &self.zs[l_total - 1],
            &self.problem.labels,
            &self.problem.train_mask,
            0,
            self.problem.train_count(),
        );
        for l in (0..l_total).rev() {
            let f_in = self.cfg.dims[l];
            let (w_top, w_bot) = split_weights(&self.weights[l], f_in);
            let y_top = matmul_tn(&self.hs[l], &g);
            let y_bot = matmul_tn(&self.ms[l], &g);
            if l > 0 {
                // ∂L/∂H = G W_topᵀ + Āᵀ G W_botᵀ
                let mut dh = matmul_nt(&g, &w_top);
                let atg = spmm(&self.abar_t, &g);
                add_assign(&mut dh, &matmul_nt(&atg, &w_bot));
                hadamard_assign(&mut dh, &relu_prime(&self.zs[l - 1]));
                g = dh;
            }
            let y = Mat::vstack(&[y_top, y_bot]);
            axpy_neg(&mut self.weights[l], self.cfg.lr, &y);
        }
    }

    /// One epoch; returns pre-update loss.
    pub fn epoch(&mut self) -> f64 {
        let loss = self.forward();
        self.backward();
        loss
    }

    /// Train for `epochs` epochs.
    pub fn train(&mut self, epochs: usize) -> Vec<f64> {
        (0..epochs).map(|_| self.epoch()).collect()
    }

    /// Training accuracy of the current model.
    pub fn accuracy(&mut self) -> f64 {
        let _ = self.forward();
        let (c, t) = accuracy_counts(
            crate::dist::output_block(&self.hs),
            &self.problem.labels,
            &self.problem.train_mask,
            0,
        );
        c as f64 / t.max(1) as f64
    }

    /// Current weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }

    /// Replace the weights (finite-difference test hook).
    pub fn set_weights(&mut self, weights: Vec<Mat>) {
        assert_eq!(weights.len(), self.cfg.layers());
        self.weights = weights;
    }
}

fn split_weights(w: &Mat, f_in: usize) -> (Mat, Mat) {
    (
        w.block(0, f_in, 0, w.cols()),
        w.block(f_in, 2 * f_in, 0, w.cols()),
    )
}

/// 1D block-row distributed GraphSAGE-mean — Algorithm 1's communication
/// pattern applied to the SAGE algebra. The concatenation is row-local in
/// a block-row layout, so no extra communication appears; forward and the
/// `Āᵀ G` backward product are the familiar `P`-stage broadcast SpMMs.
pub struct SageOneDimTrainer {
    cfg: SageConfig,
    train_count: usize,
    r0: usize,
    /// `Ā` block row split by column blocks.
    abar_blocks: Vec<Csr>,
    /// `Āᵀ` block row split by column blocks (for the backward product).
    abar_t_blocks: Vec<Csr>,
    labels: Arc<Vec<usize>>,
    mask: Arc<Vec<bool>>,
    weights: Vec<Mat>,
    zs: Vec<Mat>,
    hs: Vec<Mat>,
    ms: Vec<Mat>,
}

impl SageOneDimTrainer {
    /// Slice this rank's blocks from the shared problem.
    pub fn setup(ctx: &Ctx, problem: &Problem, cfg: &SageConfig) -> Self {
        let n = problem.vertices();
        let p = ctx.size;
        assert!(p <= n, "more ranks than vertices");
        let abar = mean_aggregator(&problem.adj);
        let abar_t = abar.transpose();
        let (r0, r1) = block_range(n, p, ctx.rank);
        let row = abar.block(r0, r1, 0, n);
        let row_t = abar_t.block(r0, r1, 0, n);
        let abar_blocks = block_ranges(n, p)
            .into_iter()
            .map(|(c0, c1)| row.block(0, r1 - r0, c0, c1))
            .collect();
        let abar_t_blocks = block_ranges(n, p)
            .into_iter()
            .map(|(c0, c1)| row_t.block(0, r1 - r0, c0, c1))
            .collect();
        let h0 = problem.features.block(r0, r1, 0, problem.features.cols());
        SageOneDimTrainer {
            cfg: cfg.clone(),
            train_count: problem.train_count(),
            r0,
            abar_blocks,
            abar_t_blocks,
            labels: Arc::new(problem.labels.clone()),
            mask: Arc::new(problem.train_mask.clone()),
            weights: cfg.init_weights(),
            zs: Vec::new(),
            hs: vec![h0],
            ms: Vec::new(),
        }
    }

    /// Block-row SpMM with `P` broadcast stages (Algorithm 1's pattern).
    fn block_row_spmm(&self, ctx: &Ctx, blocks: &[Csr], mine: &Mat) -> Mat {
        debug_assert_eq!(blocks.len(), ctx.size);
        let mut out = Mat::zeros(blocks[0].rows(), mine.cols());
        for (j, blk) in blocks.iter().enumerate() {
            let payload = (j == ctx.rank).then(|| mine.clone());
            let xj = ctx.world.bcast(j, payload, Cat::DenseComm);
            ctx.charge_spmm(blk.nnz(), blk.rows(), xj.cols());
            spmm_acc(blk, &xj, &mut out);
        }
        out
    }

    /// Forward pass; returns global mean masked NLL.
    pub fn forward(&mut self, ctx: &Ctx) -> f64 {
        let l_total = self.cfg.layers();
        self.zs.clear();
        self.ms.clear();
        self.hs.truncate(1);
        for l in 0..l_total {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            let m = self.block_row_spmm(ctx, &self.abar_blocks, &self.hs[l].clone());
            let cat = Mat::hstack(&[self.hs[l].clone(), m.clone()]);
            ctx.charge_gemm(cat.rows(), 2 * f_in, f_out);
            let z = matmul(&cat, &self.weights[l]);
            let out = if l + 1 == l_total {
                log_softmax_rows(&z)
            } else {
                relu(&z)
            };
            ctx.charge_elementwise(z.len());
            self.ms.push(m);
            self.zs.push(z);
            self.hs.push(out);
        }
        let local = nll_sum(
            crate::dist::output_block(&self.hs),
            &self.labels,
            &self.mask,
            self.r0,
        );
        ctx.world.allreduce_scalar(local, Cat::DenseComm) / self.train_count as f64
    }

    /// Backward pass + replicated SGD step.
    pub fn backward(&mut self, ctx: &Ctx) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "run forward first");
        let mut g = output_gradient(
            &self.zs[l_total - 1],
            &self.labels,
            &self.mask,
            self.r0,
            self.train_count,
        );
        ctx.charge_elementwise(g.len());
        for l in (0..l_total).rev() {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            let (w_top, w_bot) = split_weights(&self.weights[l], f_in);
            ctx.charge_gemm(f_in, g.rows(), f_out);
            let y_top = matmul_tn(&self.hs[l], &g);
            ctx.charge_gemm(f_in, g.rows(), f_out);
            let y_bot = matmul_tn(&self.ms[l], &g);
            let y_local = Mat::vstack(&[y_top, y_bot]);
            let y = ctx.world.allreduce_mat(&y_local, Cat::DenseComm);
            if l > 0 {
                let atg = self.block_row_spmm(ctx, &self.abar_t_blocks, &g.clone());
                ctx.charge_gemm(g.rows(), f_out, f_in);
                let mut dh = matmul_nt(&g, &w_top);
                ctx.charge_gemm(atg.rows(), f_out, f_in);
                add_assign(&mut dh, &matmul_nt(&atg, &w_bot));
                hadamard_assign(&mut dh, &relu_prime(&self.zs[l - 1]));
                ctx.charge_elementwise(dh.len());
                g = dh;
            }
            axpy_neg(&mut self.weights[l], self.cfg.lr, &y);
            ctx.charge_elementwise(y.len());
        }
    }

    /// One epoch; returns pre-update loss.
    pub fn epoch(&mut self, ctx: &Ctx) -> f64 {
        let loss = self.forward(ctx);
        self.backward(ctx);
        loss
    }

    /// Global training accuracy.
    pub fn accuracy(&mut self, ctx: &Ctx) -> f64 {
        let _ = self.forward(ctx);
        let (c, t) = accuracy_counts(
            crate::dist::output_block(&self.hs),
            &self.labels,
            &self.mask,
            self.r0,
        );
        super::dist::global_accuracy(ctx, c, t)
    }

    /// Replicated weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }
}

/// 2D SUMMA distributed GraphSAGE-mean on a square `√P x √P` grid — the
/// paper's implemented algorithm (Algorithm 2) carrying a different
/// model. The concatenation never materializes: `Z = H W_top + (ĀH)
/// W_bot` is two partial SUMMAs against the replicated halves of `W`, so
/// the communication kinds are exactly the GCN 2D trainer's.
pub struct SageTwoDimTrainer {
    cfg: SageConfig,
    grid: cagnet_comm::Grid2D,
    train_count: usize,
    r0: usize,
    r1: usize,
    /// `Ā` block `(i, j)`.
    ab_ij: Csr,
    /// `Āᵀ` block `(i, j)`.
    abt_ij: Csr,
    labels: Arc<Vec<usize>>,
    mask: Arc<Vec<bool>>,
    weights: Vec<Mat>,
    zs: Vec<Mat>,
    hs: Vec<Mat>,
    ms: Vec<Mat>,
    h_out_row: Mat,
    p_out_row: Mat,
}

impl SageTwoDimTrainer {
    /// Slice this rank's grid blocks; world size must be a perfect
    /// square.
    pub fn setup(ctx: &Ctx, problem: &Problem, cfg: &SageConfig) -> Self {
        let q = cagnet_comm::grid::int_sqrt(ctx.size)
            .unwrap_or_else(|| panic!("needs a square process count, got {}", ctx.size));
        let grid = cagnet_comm::Grid2D::new(ctx, q, q);
        let n = problem.vertices();
        assert!(q <= n, "grid side exceeds vertex count");
        let abar = mean_aggregator(&problem.adj);
        let abar_t = abar.transpose();
        let (r0, r1) = block_range(n, q, grid.i);
        let (bc0, bc1) = block_range(n, q, grid.j);
        let ab_ij = abar.block(r0, r1, bc0, bc1);
        let abt_ij = abar_t.block(r0, r1, bc0, bc1);
        let f0 = problem.features.cols();
        let (fc0, fc1) = block_range(f0, q, grid.j);
        let h0 = problem.features.block(r0, r1, fc0, fc1);
        SageTwoDimTrainer {
            cfg: cfg.clone(),
            grid,
            train_count: problem.train_count(),
            r0,
            r1,
            ab_ij,
            abt_ij,
            labels: Arc::new(problem.labels.clone()),
            mask: Arc::new(problem.train_mask.clone()),
            weights: cfg.init_weights(),
            zs: Vec::new(),
            hs: vec![h0],
            ms: Vec::new(),
            h_out_row: Mat::zeros(0, 0),
            p_out_row: Mat::zeros(0, 0),
        }
    }

    fn my_rows(&self) -> usize {
        self.r1 - self.r0
    }

    /// Square SUMMA SpMM over the vertex dimension.
    fn summa_spmm(&self, ctx: &Ctx, s_mine: &Csr, d_mine: &Mat) -> Mat {
        let q = self.grid.pc;
        let mut out = Mat::zeros(self.my_rows(), d_mine.cols());
        for s in 0..q {
            let a_hat = self.grid.row.bcast(
                s,
                (self.grid.j == s).then(|| s_mine.clone()),
                Cat::SparseComm,
            );
            let d_hat = self.grid.col.bcast(
                s,
                (self.grid.i == s).then(|| d_mine.clone()),
                Cat::DenseComm,
            );
            ctx.charge_spmm(a_hat.nnz(), a_hat.rows(), d_hat.cols());
            spmm_acc(&a_hat, &d_hat, &mut out);
        }
        out
    }

    /// Partial SUMMA against one replicated half of `W`
    /// (`rows w_r0..w_r0+f_in` of the stacked weight matrix), accumulated
    /// into `out`.
    #[allow(clippy::too_many_arguments)]
    fn partial_summa_acc(
        &self,
        ctx: &Ctx,
        t_mine: &Mat,
        w: &Mat,
        w_r0: usize,
        f_in: usize,
        f_out: usize,
        out: &mut Mat,
    ) {
        let q = self.grid.pc;
        let (oc0, oc1) = block_range(f_out, q, self.grid.j);
        for s in 0..q {
            let t_hat = self.grid.row.bcast(
                s,
                (self.grid.j == s).then(|| t_mine.clone()),
                Cat::DenseComm,
            );
            let (ic0, ic1) = block_range(f_in, q, s);
            if ic1 == ic0 || oc1 == oc0 {
                continue;
            }
            ctx.charge_gemm(t_hat.rows(), ic1 - ic0, oc1 - oc0);
            let w_slice = w.block(w_r0 + ic0, w_r0 + ic1, oc0, oc1);
            cagnet_dense::matmul_acc(&t_hat, &w_slice, out);
        }
    }

    /// Forward pass; returns global mean masked NLL.
    pub fn forward(&mut self, ctx: &Ctx) -> f64 {
        let l_total = self.cfg.layers();
        let q = self.grid.pc;
        self.zs.clear();
        self.ms.clear();
        self.hs.truncate(1);
        for l in 0..l_total {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            let m = self.summa_spmm(ctx, &self.ab_ij, &self.hs[l].clone());
            let (oc0, oc1) = block_range(f_out, q, self.grid.j);
            let mut z = Mat::zeros(self.my_rows(), oc1 - oc0);
            let h_in = self.hs[l].clone();
            self.partial_summa_acc(ctx, &h_in, &self.weights[l], 0, f_in, f_out, &mut z);
            self.partial_summa_acc(ctx, &m, &self.weights[l], f_in, f_in, f_out, &mut z);
            let out = if l + 1 == l_total {
                let parts = self.grid.row.allgather(z.clone(), Cat::DenseComm);
                let z_row = Mat::hstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
                ctx.charge_elementwise(2 * z_row.len());
                self.h_out_row = log_softmax_rows(&z_row);
                self.p_out_row = cagnet_dense::activation::softmax_rows(&z_row);
                self.h_out_row.block(0, z_row.rows(), oc0, oc1)
            } else {
                ctx.charge_elementwise(z.len());
                relu(&z)
            };
            self.ms.push(m);
            self.zs.push(z);
            self.hs.push(out);
        }
        let local = if self.grid.j == 0 {
            nll_sum(&self.h_out_row, &self.labels, &self.mask, self.r0)
        } else {
            0.0
        };
        ctx.world.allreduce_scalar(local, Cat::DenseComm) / self.train_count as f64
    }

    fn output_gradient_block(&self) -> Mat {
        let q = self.grid.pc;
        let f_out = self.cfg.f_out();
        let (oc0, oc1) = block_range(f_out, q, self.grid.j);
        let rows = self.my_rows();
        let scale = 1.0 / self.train_count as f64;
        let mut g = Mat::zeros(rows, oc1 - oc0);
        for r in 0..rows {
            let gv = self.r0 + r;
            if !self.mask[gv] {
                continue;
            }
            let out = g.row_mut(r);
            for (cl, c) in (oc0..oc1).enumerate() {
                let mut v = self.p_out_row[(r, c)] * scale;
                if c == self.labels[gv] {
                    v -= scale;
                }
                out[cl] = v;
            }
        }
        g
    }

    /// Backward pass + replicated SGD step.
    pub fn backward(&mut self, ctx: &Ctx) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "run forward first");
        let mut g = self.output_gradient_block();
        ctx.charge_elementwise(g.len());
        for l in (0..l_total).rev() {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            // Row-all-gathered G slab serves Y_top, Y_bot, and the W_topᵀ
            // term.
            let parts = self.grid.row.allgather(g.clone(), Cat::DenseComm);
            let g_row = Mat::hstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            ctx.charge_gemm(self.hs[l].cols(), self.my_rows(), f_out);
            let yt_local = matmul_tn(&self.hs[l], &g_row);
            ctx.charge_gemm(self.ms[l].cols(), self.my_rows(), f_out);
            let yb_local = matmul_tn(&self.ms[l], &g_row);
            let yt_j = self.grid.col.allreduce_mat(&yt_local, Cat::DenseComm);
            let yb_j = self.grid.col.allreduce_mat(&yb_local, Cat::DenseComm);
            let yt_parts = self.grid.row.allgather(yt_j, Cat::DenseComm);
            let yb_parts = self.grid.row.allgather(yb_j, Cat::DenseComm);
            let y_top = Mat::vstack(&yt_parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            let y_bot = Mat::vstack(&yb_parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            let y = Mat::vstack(&[y_top, y_bot]);
            if l > 0 {
                let (jc0, jc1) = block_range(f_in, self.grid.pc, self.grid.j);
                let (w_top, w_bot) = (
                    self.weights[l].block(0, f_in, 0, f_out),
                    self.weights[l].block(f_in, 2 * f_in, 0, f_out),
                );
                // term1: G W_topᵀ, local from the gathered slab.
                ctx.charge_gemm(self.my_rows(), f_out, jc1 - jc0);
                let mut dh = matmul_nt(&g_row, &w_top.block(jc0, jc1, 0, f_out));
                // term2: (Āᵀ G) W_botᵀ via SUMMA + row all-gather.
                let atg = self.summa_spmm(ctx, &self.abt_ij, &g);
                let atg_parts = self.grid.row.allgather(atg, Cat::DenseComm);
                let atg_row =
                    Mat::hstack(&atg_parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
                ctx.charge_gemm(self.my_rows(), f_out, jc1 - jc0);
                add_assign(
                    &mut dh,
                    &matmul_nt(&atg_row, &w_bot.block(jc0, jc1, 0, f_out)),
                );
                hadamard_assign(&mut dh, &relu_prime(&self.zs[l - 1]));
                ctx.charge_elementwise(dh.len());
                g = dh;
            }
            axpy_neg(&mut self.weights[l], self.cfg.lr, &y);
            ctx.charge_elementwise(y.len());
        }
    }

    /// One epoch; returns pre-update loss.
    pub fn epoch(&mut self, ctx: &Ctx) -> f64 {
        let loss = self.forward(ctx);
        self.backward(ctx);
        loss
    }

    /// Replicated weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_comm::{Cluster, CostModel};
    use cagnet_sparse::generate::erdos_renyi;

    fn setup(seed: u64) -> (Problem, SageConfig) {
        let g = erdos_renyi(36, 4.0, seed);
        let problem = Problem::synthetic(&g, 6, 3, 1.0, seed + 1);
        let cfg = SageConfig {
            dims: vec![6, 5, 3],
            lr: 0.1,
            seed: 21,
        };
        (problem, cfg)
    }

    #[test]
    fn mean_aggregator_rows_sum_to_one() {
        let g = erdos_renyi(30, 4.0, 3);
        let abar = mean_aggregator(&g);
        for i in 0..30 {
            let s: f64 = abar.row_entries(i).map(|(_, v)| v).sum();
            if g.row_nnz(i) > 0 {
                assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
            } else {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn sage_loss_decreases() {
        let (problem, cfg) = setup(31);
        let mut t = SageSerialTrainer::new(&problem, cfg);
        let losses = t.train(30);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn sage_gradient_check() {
        // Finite-difference check over every weight entry of a tiny model.
        let g = erdos_renyi(10, 2.0, 33);
        let problem = Problem::synthetic(&g, 3, 2, 1.0, 34);
        let cfg = SageConfig {
            dims: vec![3, 3, 2],
            lr: 0.1,
            seed: 9,
        };
        let mut t = SageSerialTrainer::new(&problem, cfg.clone());
        let base: Vec<Mat> = t.weights().to_vec();
        // Analytic gradients: run forward+backward with lr folded out by
        // diffing weights before/after one step.
        let _ = t.forward();
        t.backward();
        let stepped: Vec<Mat> = t.weights().to_vec();
        let grads: Vec<Mat> = base
            .iter()
            .zip(&stepped)
            .map(|(b, s)| {
                let mut g = b.clone();
                for (gi, (&bi, &si)) in g
                    .as_mut_slice()
                    .iter_mut()
                    .zip(b.as_slice().iter().zip(s.as_slice()))
                {
                    *gi = (bi - si) / cfg.lr;
                }
                g
            })
            .collect();
        let eps = 1e-6;
        for l in 0..cfg.layers() {
            for i in 0..base[l].rows() {
                for j in 0..base[l].cols() {
                    let mut wp = base.clone();
                    wp[l][(i, j)] += eps;
                    t.set_weights(wp);
                    let lp = t.forward();
                    let mut wm = base.clone();
                    wm[l][(i, j)] -= eps;
                    t.set_weights(wm);
                    let lm = t.forward();
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = grads[l][(i, j)];
                    assert!(
                        (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                        "layer {l} ({i},{j}): fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_sage_matches_serial() {
        let (problem, cfg) = setup(35);
        let mut s = SageSerialTrainer::new(&problem, cfg.clone());
        let s_losses = s.train(4);
        for p in [1usize, 2, 4, 6] {
            let results = Cluster::new(p)
                .with_model(CostModel::summit_like())
                .run(|ctx| {
                    let mut t = SageOneDimTrainer::setup(ctx, &problem, &cfg);
                    let losses: Vec<f64> = (0..4).map(|_| t.epoch(ctx)).collect();
                    (losses, t.weights().to_vec())
                });
            let (d_losses, d_weights) = &results[0].0;
            for (e, (a, b)) in s_losses.iter().zip(d_losses).enumerate() {
                assert!(
                    (a - b).abs() < 1e-8,
                    "P={p} epoch {e}: serial {a} vs dist {b}"
                );
            }
            for (sw, dw) in s.weights().iter().zip(d_weights) {
                assert!(sw.max_abs_diff(dw) < 1e-8, "P={p}: weights differ");
            }
        }
    }

    #[test]
    fn sage_2d_matches_serial() {
        let (problem, cfg) = setup(37);
        let mut s = SageSerialTrainer::new(&problem, cfg.clone());
        let s_losses = s.train(3);
        for p in [1usize, 4, 9] {
            let results = Cluster::new(p)
                .with_model(CostModel::summit_like())
                .run(|ctx| {
                    let mut t = SageTwoDimTrainer::setup(ctx, &problem, &cfg);
                    let losses: Vec<f64> = (0..3).map(|_| t.epoch(ctx)).collect();
                    (losses, t.weights().to_vec())
                });
            let (d_losses, d_weights) = &results[0].0;
            for (e, (a, b)) in s_losses.iter().zip(d_losses).enumerate() {
                assert!(
                    (a - b).abs() < 1e-8,
                    "2D P={p} epoch {e}: serial {a} vs dist {b}"
                );
            }
            for (sw, dw) in s.weights().iter().zip(d_weights) {
                assert!(sw.max_abs_diff(dw) < 1e-8, "2D P={p}: weights differ");
            }
        }
    }

    #[test]
    fn sage_2d_moves_sparse_traffic() {
        // Unlike the 1D layout, the 2D SAGE broadcasts Ā blocks.
        let (problem, cfg) = setup(38);
        let results = Cluster::new(4).run(|ctx| {
            let mut t = SageTwoDimTrainer::setup(ctx, &problem, &cfg);
            t.epoch(ctx);
            ctx.report()
        });
        for (rep, _) in results {
            assert!(rep.words(Cat::SparseComm) > 0);
            assert!(rep.words(Cat::DenseComm) > 0);
        }
    }

    #[test]
    fn sage_communicates_like_gcn_1d() {
        // Same layout → same dense-broadcast structure; SAGE adds one
        // extra block-row SpMM per backward layer (the Āᵀ G product) but
        // no new collective kinds.
        let (problem, cfg) = setup(36);
        let results = Cluster::new(4).run(|ctx| {
            let mut t = SageOneDimTrainer::setup(ctx, &problem, &cfg);
            t.epoch(ctx);
            ctx.report()
        });
        for (rep, _) in results {
            assert!(rep.words(Cat::DenseComm) > 0);
            assert_eq!(rep.words(Cat::SparseComm), 0);
        }
    }
}
