//! 1.5D replicated block-row GCN training — the paper's §IV-B.
//!
//! The paper discusses 1.5D algorithms (after Koanantakool et al. \[20\]) as
//! the middle ground between 1D (no replication, most communication) and
//! 2D: a replication factor `c` buys a `c`-fold reduction in the dominant
//! broadcast volume at the price of `c`-fold memory replication. The paper
//! chose not to implement it because for GNNs `d = O(f)` makes the
//! replication burden unattractive (§IV-B) — we implement it anyway so
//! the trade-off can be *measured* (bench `comm_volume`, ablation over
//! `c`).
//!
//! Geometry: `P = p₁·c` ranks on a `p₁ x c` grid; rank `(i, r)` has world
//! id `i·c + r`. `Aᵀ` is partitioned into `p₁` *coarse* block rows whose
//! work is shared by the team `(i, ·)`; each replica stores only the
//! column slices it multiplies (the fine blocks `≡ r (mod c)`), so
//! per-rank adjacency storage stays `O(nnz/P)`. The §IV-B memory premium
//! appears instead in the *intermediates*: the forward partial sum spans
//! the whole coarse block (`c` fine blocks tall) and the backward
//! outer-product contribution spans `n/c` rows —
//! `tests/memory_replication.rs` pins this down. Dense matrices are
//! partitioned into `P` *fine* block rows, fine block `b = i·c + r`
//! living on rank `(i, r)`.
//!
//! Forward: replica `r` accumulates only the stages `b ≡ r (mod c)`
//! (column-group broadcasts of fine `H` blocks — each rank receives
//! `≈ n·f/c` words instead of 1D's `n·f`), then the team reduce-scatters
//! the coarse partial back to fine blocks. Backward mirrors it: team
//! all-gather of `G`, a column-sliced outer product per replica, and a
//! replica-group reduce-scatter back to fine blocks.

use crate::loss::{accuracy_counts, nll_sum, output_gradient};
use crate::model::GcnConfig;
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::problem::Problem;
use cagnet_comm::comm::Communicator;
use cagnet_comm::{Cat, Ctx, GatheredRows};
use cagnet_dense::activation::{log_softmax_rows, Activation};
use cagnet_dense::ops::hadamard_assign;
use cagnet_dense::{matmul_nt_with, matmul_tn_with, matmul_with, Mat};
use cagnet_sparse::partition::block_ranges;
use cagnet_sparse::spmm::{outer_product_from_transposed, spmm_acc_with};
use cagnet_sparse::Csr;
use std::cell::RefCell;
use std::sync::Arc;

/// Per-rank state of the 1.5D trainer.
pub struct One5DTrainer {
    cfg: GcnConfig,
    /// Replication factor `c`.
    c: usize,
    /// Team count `p₁ = P / c`.
    p1: usize,
    /// My team index `i`.
    ti: usize,
    /// Team communicator `(i, ·)` of size `c`.
    team: Communicator,
    /// Replica-group communicator `(·, r)` of size `p₁`.
    rep: Communicator,
    train_count: usize,
    /// Global start of my fine row block.
    fine_r0: usize,
    /// Forward stage operands: `Aᵀ(coarse rows i, fine cols i'·c + r)`
    /// for `i' = 0..p₁`.
    at_fwd: Vec<Csr>,
    /// Per forward stage `i'`: the sorted distinct columns of
    /// `at_fwd[i']` — the rows of the broadcast fine `H` block this rank
    /// actually reads (sparsity-aware mode).
    needed: Vec<Vec<usize>>,
    /// Column-compacted copies of `at_fwd` (columns renumbered to
    /// `needed[i']` order) for multiplying compact gathered operands.
    /// Built lazily on the first switch to sparsity-aware mode.
    at_compact: Vec<Csr>,
    /// Dense broadcast vs sparsity-aware row exchange for the forward
    /// stages.
    comm_mode: super::CommMode,
    /// Cached-mode halo cache: one slot per (layer, forward stage)
    /// replica-group fetch (see [`super::HaloCache`]; DESIGN.md §13).
    cache: RefCell<super::HaloCache>,
    /// Issue-ahead pipelining: prefetch stage `i'+1`'s fine block with a
    /// nonblocking collective while stage `i'` computes (DESIGN.md §10).
    overlap: bool,
    /// Backward operand: `Aᵀ(coarse rows i, ·)` restricted to the columns
    /// of all fine blocks `≡ r (mod c)`, concatenated in team order.
    at_bwd: Csr,
    labels: Arc<Vec<usize>>,
    mask: Arc<Vec<bool>>,
    weights: Vec<Mat>,
    opt: Optimizer,
    act: Activation,
    dropout: f64,
    training: bool,
    epoch_counter: u64,
    drop_masks: Vec<Option<Mat>>,
    zs: Vec<Mat>,
    /// Stored activations, shared so blocks enter broadcast stages
    /// without a copy.
    hs: Vec<Arc<Mat>>,
}

impl One5DTrainer {
    /// Slice this rank's blocks from the shared problem. `c` must divide
    /// the world size.
    pub fn setup(ctx: &Ctx, problem: &Problem, cfg: &GcnConfig, c: usize) -> Self {
        match Self::try_setup(ctx, problem, cfg, c) {
            Ok(t) => t,
            Err(e) => panic!("1.5D trainer setup: {e}"),
        }
    }

    /// Fallible constructor: returns [`super::SetupError`] instead of
    /// panicking when `c` does not divide `P` or the cluster does not
    /// fit the problem.
    pub fn try_setup(
        ctx: &Ctx,
        problem: &Problem,
        cfg: &GcnConfig,
        c: usize,
    ) -> Result<Self, super::SetupError> {
        let p = ctx.size;
        if c < 1 || !p.is_multiple_of(c) {
            return Err(super::SetupError::Geometry(format!(
                "replication factor {c} must divide P={p}"
            )));
        }
        let p1 = p / c;
        let n = problem.vertices();
        if p > n {
            return Err(super::SetupError::TooManyRanks {
                ranks: p,
                vertices: n,
            });
        }
        let ti = ctx.rank / c;
        let tr = ctx.rank % c;
        let team = ctx.world.split(ti as u64);
        let rep = ctx.world.split((p1 + tr) as u64); // offset to avoid color clash
        debug_assert_eq!(team.size(), c);
        debug_assert_eq!(rep.size(), p1);

        let fine = block_ranges(n, p);
        // Coarse block i = union of its fine blocks (alignment with the
        // balanced fine split is what makes the reduce-scatters land
        // exactly on fine blocks).
        let coarse = |i: usize| (fine[i * c].0, fine[(i + 1) * c - 1].1);
        let (cr0, cr1) = coarse(ti);
        let at_coarse = problem.adj_t.block(cr0, cr1, 0, n);
        let at_fwd: Vec<Csr> = (0..p1)
            .map(|ip| {
                let (b0, b1) = fine[ip * c + tr];
                at_coarse.block(0, cr1 - cr0, b0, b1)
            })
            .collect();
        let needed = at_fwd.iter().map(Csr::needed_cols).collect();
        // Backward: same column slices, concatenated in team order i'.
        let at_bwd = {
            let mut coo = cagnet_sparse::Coo::new(
                cr1 - cr0,
                (0..p1)
                    .map(|ip| {
                        let (b0, b1) = fine[ip * c + tr];
                        b1 - b0
                    })
                    .sum(),
            );
            let mut col_off = 0;
            for ip in 0..p1 {
                let (b0, b1) = fine[ip * c + tr];
                let blk = at_coarse.block(0, cr1 - cr0, b0, b1);
                for row in 0..blk.rows() {
                    for (col, v) in blk.row_entries(row) {
                        coo.push(row, col_off + col, v);
                    }
                }
                col_off += b1 - b0;
            }
            Csr::from_coo(coo)
        };

        let (fr0, fr1) = fine[ctx.rank];
        let h0 = problem.features.block(fr0, fr1, 0, problem.features.cols());
        Ok(One5DTrainer {
            cfg: cfg.clone(),
            c,
            p1,
            ti,
            team,
            rep,
            train_count: problem.train_count(),
            fine_r0: fr0,
            at_fwd,
            needed,
            at_compact: Vec::new(),
            comm_mode: super::CommMode::Dense,
            cache: RefCell::new(super::HaloCache::default()),
            overlap: true,
            at_bwd,
            labels: Arc::new(problem.labels.clone()),
            mask: Arc::new(problem.train_mask.clone()),
            opt: {
                let w = cfg.init_weights();
                Optimizer::for_weights(OptimizerKind::Sgd, cfg.lr, &w)
            },
            act: Activation::Relu,
            dropout: 0.0,
            training: false,
            epoch_counter: 0,
            drop_masks: Vec::new(),
            weights: cfg.init_weights(),
            zs: Vec::new(),
            hs: vec![Arc::new(h0)],
        })
    }

    /// Root-side dims of stage `i'`'s fine `H` block — known to every
    /// replica-group member from the balanced partition (`at_fwd[i']`
    /// has one column per root row), fingerprinted by receivers under
    /// CheckMode.
    fn stage_dims(&self, l: usize, ip: usize) -> (usize, usize) {
        (self.at_fwd[ip].cols(), self.hs[l].cols())
    }

    /// Cache slot of the (layer `l`, forward stage `ip`) fetch.
    fn slot(&self, l: usize, ip: usize) -> usize {
        l * self.p1 + ip
    }

    /// Whether the current pass serves stage operands from the halo cache
    /// (cached mode, training, non-refresh epoch).
    fn cached_serving(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && !self.cache.borrow().refreshing()
    }

    /// Whether the current pass must store its gathered blocks into the
    /// halo cache (cached mode, training, refresh epoch).
    fn cached_refreshing(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && self.cache.borrow().refreshing()
    }

    /// Serve stage `ip` of layer `l` with no replica-group collective:
    /// the team's own fine block compacts fresh locally (zero words);
    /// remote blocks come from the cache, metering the skipped gather's
    /// words under [`Cat::CacheHit`].
    fn serve_cached(&self, l: usize, ip: usize) -> Arc<Mat> {
        if ip == self.ti {
            GatheredRows::full(self.hs[l].clone()).compact(&self.needed[ip])
        } else {
            let row_words = self.hs[l].cols() as u64 + 1;
            self.rep.cache_hit(self.needed[ip].len() as u64 * row_words);
            self.cache.borrow().get(self.slot(l, ip))
        }
    }

    /// Store a freshly gathered compact block on refresh epochs (remote
    /// stages only).
    fn maybe_store(&self, l: usize, ip: usize, block: &Arc<Mat>) {
        if self.cached_refreshing() && ip != self.ti {
            self.cache
                .borrow_mut()
                .store(self.slot(l, ip), block.clone());
        }
    }

    /// Issue the stage-`ip` replica-group fetch of layer `l`'s fine `H`
    /// block as a nonblocking collective (dense broadcast or
    /// sparsity-aware row gather, per [`Self::set_comm_mode`]). In cached
    /// mode, refresh epochs gather through the `igather_rows_refresh`
    /// prefetch lane and serve epochs return the resident block with no
    /// collective.
    fn issue_fetch(&self, l: usize, ip: usize) -> super::Fetch<'_> {
        let payload = (ip == self.ti).then(|| self.hs[l].clone());
        match self.comm_mode {
            super::CommMode::Dense => {
                super::Fetch::Dense(self.rep.ibcast_shared(ip, payload, Cat::DenseComm))
            }
            super::CommMode::SparsityAware => super::Fetch::Sparse(self.rep.igather_rows(
                ip,
                payload,
                &self.needed[ip],
                Some(self.stage_dims(l, ip)),
                Cat::DenseComm,
            )),
            super::CommMode::Cached { .. } => {
                if self.cached_serving() {
                    super::Fetch::Cached(self.serve_cached(l, ip))
                } else if self.training {
                    super::Fetch::Sparse(self.rep.igather_rows_refresh(
                        ip,
                        payload,
                        &self.needed[ip],
                        Some(self.stage_dims(l, ip)),
                        Cat::DenseComm,
                    ))
                } else {
                    super::Fetch::Sparse(self.rep.igather_rows(
                        ip,
                        payload,
                        &self.needed[ip],
                        Some(self.stage_dims(l, ip)),
                        Cat::DenseComm,
                    ))
                }
            }
        }
    }

    /// Accumulate the coarse partial sum for layer `l`: replica `r`'s
    /// stages `b ≡ r (mod c)` via replica-group broadcasts of fine `H`
    /// blocks. With overlap on, stage `i'+1`'s block is in flight while
    /// stage `i'`'s SpMM computes (the pending op borrows `self.rep`, so
    /// the pipeline lives in this `&self` helper).
    fn coarse_partial(&self, ctx: &Ctx, l: usize, f_in: usize) -> Mat {
        let coarse_rows = self.at_fwd[0].rows();
        let mut partial = Mat::zeros(coarse_rows, f_in);
        let mut pending = self.overlap.then(|| self.issue_fetch(l, 0));
        for ip in 0..self.p1 {
            let h_b = match pending.take() {
                Some(op) => {
                    if ip + 1 < self.p1 {
                        pending = Some(self.issue_fetch(l, ip + 1));
                    }
                    op.wait(&self.needed[ip])
                }
                None => {
                    let payload = (ip == self.ti).then(|| self.hs[l].clone());
                    match self.comm_mode {
                        super::CommMode::Dense => {
                            self.rep.bcast_shared(ip, payload, Cat::DenseComm)
                        }
                        super::CommMode::SparsityAware => self
                            .rep
                            .gather_rows(
                                ip,
                                payload,
                                &self.needed[ip],
                                Some(self.stage_dims(l, ip)),
                                Cat::DenseComm,
                            )
                            .compact(&self.needed[ip]),
                        super::CommMode::Cached { .. } => {
                            if self.cached_serving() {
                                self.serve_cached(l, ip)
                            } else if self.training {
                                self.rep
                                    .gather_rows_refresh(
                                        ip,
                                        payload,
                                        &self.needed[ip],
                                        Some(self.stage_dims(l, ip)),
                                        Cat::DenseComm,
                                    )
                                    .compact(&self.needed[ip])
                            } else {
                                self.rep
                                    .gather_rows(
                                        ip,
                                        payload,
                                        &self.needed[ip],
                                        Some(self.stage_dims(l, ip)),
                                        Cat::DenseComm,
                                    )
                                    .compact(&self.needed[ip])
                            }
                        }
                    }
                }
            };
            self.maybe_store(l, ip, &h_b);
            // Same nnz/rows either way (compact only renumbers columns):
            // identical charged cost and accumulation order.
            let a = if self.comm_mode.sparse_exchange() {
                &self.at_compact[ip]
            } else {
                &self.at_fwd[ip]
            };
            ctx.charge_spmm(a.nnz(), coarse_rows, f_in);
            spmm_acc_with(ctx.parallel(), a, &h_b, &mut partial);
        }
        partial
    }

    /// Forward pass; returns global mean masked NLL loss.
    pub fn forward(&mut self, ctx: &Ctx) -> f64 {
        let l_total = self.cfg.layers();
        self.zs.clear();
        self.drop_masks = vec![None; l_total];
        self.hs.truncate(1);
        for l in 0..l_total {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            let partial = self.coarse_partial(ctx, l, f_in);
            // Team reduce-scatter: coarse partials → my fine block of T.
            let t = self.team.reduce_scatter_rows(&partial, Cat::DenseComm);
            ctx.charge_gemm(t.rows(), f_in, f_out);
            let z = matmul_with(ctx.parallel(), &t, &self.weights[l]);
            // Dense matrices are fine-block row partitioned: even
            // log_softmax is local, as in 1D.
            let h = if l + 1 == l_total {
                log_softmax_rows(&z)
            } else {
                let mut h = self.act.apply(&z);
                self.apply_dropout(l, self.fine_r0, f_out, 0, f_out, &mut h);
                h
            };
            ctx.charge_elementwise(z.len());
            self.zs.push(z);
            self.hs.push(Arc::new(h));
        }
        let local = nll_sum(
            super::output_block(&self.hs),
            &self.labels,
            &self.mask,
            self.fine_r0,
        );
        ctx.world.allreduce_scalar(local, Cat::DenseComm) / self.train_count as f64
    }

    /// Backward pass + replicated gradient-descent step.
    pub fn backward(&mut self, ctx: &Ctx) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "forward must run before backward");
        // Shared so my block enters the team all-gather without a copy.
        let mut g = Arc::new(output_gradient(
            &self.zs[l_total - 1],
            &self.labels,
            &self.mask,
            self.fine_r0,
            self.train_count,
        ));
        ctx.charge_elementwise(g.len());
        for l in (0..l_total).rev() {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            // Team all-gather: assemble the coarse G block (every replica
            // needs it for its column slice of the outer product).
            let parts = self.team.allgather_shared(g.clone(), Cat::DenseComm);
            let g_coarse = Mat::vstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            // Outer product restricted to output fine blocks ≡ r (mod c),
            // stacked in team order.
            ctx.charge_spmm(self.at_bwd.nnz(), self.at_bwd.rows(), f_out);
            let contrib = outer_product_from_transposed(&self.at_bwd, &g_coarse);
            // Replica-group reduce-scatter: piece i' sums across teams and
            // lands on rank (i', r) — exactly my fine block of A G.
            let ag = self.rep.reduce_scatter_rows(&contrib, Cat::DenseComm);
            debug_assert_eq!(ag.rows(), self.hs[l].rows());
            // With overlap on, the f x f all-reduce is in flight while
            // the next layer's gradient GEMM computes.
            ctx.charge_gemm(f_in, ag.rows(), f_out);
            let y_partial = matmul_tn_with(ctx.parallel(), &self.hs[l], &ag);
            let y_op = self
                .overlap
                .then(|| ctx.world.iallreduce_mat(&y_partial, Cat::DenseComm));
            if l > 0 {
                ctx.charge_gemm(ag.rows(), f_out, f_in);
                let mut next_g = matmul_nt_with(ctx.parallel(), &ag, &self.weights[l]);
                hadamard_assign(&mut next_g, &self.act.prime(&self.zs[l - 1]));
                if let Some(mask) = self.drop_masks[l - 1].take() {
                    hadamard_assign(&mut next_g, &mask);
                }
                ctx.charge_elementwise(next_g.len());
                g = Arc::new(next_g);
            }
            let y = match y_op {
                Some(op) => op.wait(),
                None => ctx.world.allreduce_mat(&y_partial, Cat::DenseComm),
            };
            self.opt.step(l, &mut self.weights[l], &y);
            ctx.charge_elementwise(y.len());
        }
    }

    /// One epoch; returns the pre-update loss.
    pub fn epoch(&mut self, ctx: &Ctx) -> f64 {
        self.training = true;
        self.epoch_counter += 1;
        if let Some(refresh) = self.comm_mode.cached_refresh() {
            self.cache
                .borrow_mut()
                .begin_epoch(refresh, self.epoch_counter as usize);
        }
        let loss = self.forward(ctx);
        self.backward(ctx);
        self.training = false;
        loss
    }

    /// Global training accuracy of the current model.
    pub fn accuracy(&mut self, ctx: &Ctx) -> f64 {
        let _ = self.forward(ctx);
        let (c, t) = accuracy_counts(
            super::output_block(&self.hs),
            &self.labels,
            &self.mask,
            self.fine_r0,
        );
        super::global_accuracy(ctx, c, t)
    }

    fn apply_dropout(
        &mut self,
        layer: usize,
        row_offset: usize,
        f_total: usize,
        c0: usize,
        c1: usize,
        h: &mut Mat,
    ) {
        if self.training && self.dropout > 0.0 {
            let mask = crate::dropout::mask_block(
                crate::dropout::DropoutKey {
                    base_seed: self.cfg.seed,
                    epoch: self.epoch_counter,
                    layer,
                },
                self.dropout,
                row_offset,
                h.rows(),
                f_total,
                c0,
                c1,
            );
            cagnet_dense::ops::hadamard_assign(h, &mask);
            self.drop_masks[layer] = Some(mask);
        }
    }

    /// Set the hidden-layer dropout rate (inverted dropout; a fresh
    /// deterministic mask per epoch, identical across layouts and ranks —
    /// see [`crate::dropout`]). 0 disables it; evaluation forwards never
    /// apply it.
    pub fn set_dropout(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        self.dropout = rate;
    }

    /// Choose dense broadcasts, the sparsity-aware row exchange, or the
    /// cached tier for the forward stages (see [`super::CommMode`]).
    /// `Dense` and `SparsityAware` train bit-identically; `Cached` is
    /// bit-identical only at `refresh: 1` (DESIGN.md §13). Must be set
    /// identically on every rank. Always drops any halo cache, so a mode
    /// change can never serve stale blocks.
    pub fn set_comm_mode(&mut self, mode: super::CommMode) {
        if mode.sparse_exchange() && self.at_compact.is_empty() {
            self.at_compact = self
                .at_fwd
                .iter()
                .zip(&self.needed)
                .map(|(a, nd)| a.compact_cols(nd))
                .collect();
        }
        self.cache.borrow_mut().invalidate();
        self.comm_mode = mode;
    }

    /// Enable or disable communication/computation overlap (default on).
    /// With overlap on, stage fetches and the weight-gradient all-reduce
    /// run as nonblocking collectives pipelined against compute; losses,
    /// weights, and metered words are bit-identical either way — only
    /// modeled (and wall-clock) time changes. Must be set identically on
    /// every rank.
    pub fn set_overlap(&mut self, overlap: bool) {
        self.overlap = overlap;
    }

    /// Select the hidden-layer activation (default ReLU, the paper's σ;
    /// the output layer stays log-softmax). Elementwise, so it changes no
    /// communication. Must be set identically on every rank.
    pub fn set_hidden_activation(&mut self, act: Activation) {
        self.act = act;
    }

    /// Select the optimizer (replicated state; no communication). Resets
    /// any accumulated moments. Must be called identically on every rank,
    /// before training.
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.opt = Optimizer::for_weights(kind, self.cfg.lr, &self.weights);
    }

    /// Replace the replicated weights (e.g. with a trained model for
    /// inference). Must be called identically on every rank.
    pub fn set_weights(&mut self, weights: Vec<Mat>) {
        assert_eq!(weights.len(), self.cfg.layers(), "weight stack length");
        for (l, w) in weights.iter().enumerate() {
            assert_eq!(
                w.shape(),
                (self.cfg.dims[l], self.cfg.dims[l + 1]),
                "weight {l} shape"
            );
        }
        self.weights = weights;
    }

    /// Replicated weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }

    /// Replication factor in effect.
    pub fn replication(&self) -> usize {
        self.c
    }

    /// Per-rank storage footprint (run after a forward pass). The
    /// adjacency term carries the `c`-fold replication of §IV-B. See
    /// [`super::StorageReport`].
    pub fn storage_words(&self) -> super::StorageReport {
        let f_max = self.cfg.f_max();
        let coarse_rows = self.at_fwd[0].rows();
        super::StorageReport {
            adjacency: self.at_fwd.iter().map(super::csr_words).sum::<usize>()
                + self.at_compact.iter().map(super::csr_words).sum::<usize>()
                + super::csr_words(&self.at_bwd),
            dense_state: super::mats_words(&self.hs) + super::mats_words(&self.zs),
            // Forward coarse partial + backward sliced outer product and
            // team-gathered G.
            intermediate: (coarse_rows * f_max)
                .max(self.at_bwd.cols() * f_max + coarse_rows * f_max),
        }
    }

    /// Assemble the full output embedding matrix on every rank (world rank
    /// order equals fine-block order by construction).
    pub fn gather_embeddings(&self, ctx: &Ctx) -> Mat {
        let blocks = ctx
            .world
            .allgather_shared(super::output_block_shared(&self.hs), Cat::DenseComm);
        super::assemble_row_blocks(&blocks)
    }
}
