//! Distributed GCN training algorithms — the paper's §IV.
//!
//! Four algorithms, one module each:
//!
//! * [`onedim`] — 1D block-row (Algorithm 1): `A` by block columns, `H`/`G`
//!   by block rows, `W` replicated. Forward is a block-row SpMM over `P`
//!   broadcasts; backward is a large 1D outer product reduce-scattered into
//!   block rows plus a small `f x f` all-reduce.
//! * [`onedim_row`] — the §IV-A.7 mirror: `A` by block rows, swapping the
//!   outer-product and block-row roles of forward and backward at equal
//!   total communication.
//! * [`one5d`] — 1.5D replicated block-row (§IV-B): interpolates between
//!   1D and 2D with a replication factor `c`, trading `c`-fold replication
//!   of `A` for a `c`-fold reduction of the dense broadcast volume.
//! * [`twodim`] — 2D SUMMA (Algorithm 2): everything on a `√P x √P` grid;
//!   SUMMA SpMM stages plus "partial SUMMA" against the replicated `W`,
//!   with a row all-gather for the non-elementwise `log_softmax`.
//! * [`threedim`] — Split-3D-SpMM (§IV-D): a `∛P`-sided mesh; independent
//!   2D SUMMAs per layer followed by fiber reduce-scatters. The paper
//!   analyzes but does not implement this algorithm; here it is
//!   implemented and verified.
//!
//! All four produce the same weights and embeddings as the serial
//! reference up to floating-point accumulation order, for any process
//! count that fits their geometry.

pub mod one5d;
pub mod onedim;
pub mod onedim_row;
pub mod threedim;
pub mod transpose;
pub mod twodim;

use cagnet_comm::{Cat, Ctx};
use cagnet_dense::Mat;

/// Per-rank storage footprint, in 8-byte words — the quantity behind the
/// paper's memory arguments: 2D "consumes optimal memory" (§I), 1.5D pays
/// `c`-fold replication (§IV-B), the 1D backward materializes `O(nf)`
/// low-rank intermediates (§IV-A.3), and 3D replicates intermediates by
/// `∛P` (§IV-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Sparse adjacency blocks held by this rank (2 words per stored
    /// nonzero + row pointers), counting replicas.
    pub adjacency: usize,
    /// Persistent dense state after a forward pass: feature block plus
    /// stored activations `H^l` and pre-activations `Z^l` for backprop.
    pub dense_state: usize,
    /// Largest transient buffer the algorithm materializes during an
    /// epoch (outer-product contributions, SUMMA partial sums,
    /// all-gathered row slabs).
    pub intermediate: usize,
}

impl StorageReport {
    /// Total words.
    pub fn total(&self) -> usize {
        self.adjacency + self.dense_state + self.intermediate
    }
}

/// Storage words of a CSR block: values + column indices + row pointers.
pub(crate) fn csr_words(a: &cagnet_sparse::Csr) -> usize {
    2 * a.nnz() + a.rows() + 1
}

/// Total elements across a stack of dense matrices.
pub(crate) fn mats_words(ms: &[Mat]) -> usize {
    ms.iter().map(Mat::len).sum()
}

/// All-gather per-rank `(correct, total)` accuracy counts and return the
/// global accuracy fraction. Shared by every distributed trainer.
pub(crate) fn global_accuracy(ctx: &Ctx, correct: usize, total: usize) -> f64 {
    let c = ctx.world.allreduce_scalar(correct as f64, Cat::DenseComm);
    let t = ctx.world.allreduce_scalar(total as f64, Cat::DenseComm);
    if t == 0.0 {
        0.0
    } else {
        c / t
    }
}

/// Assemble row blocks gathered in rank order into a full matrix.
pub(crate) fn assemble_row_blocks(blocks: &[std::sync::Arc<Mat>]) -> Mat {
    let parts: Vec<Mat> = blocks.iter().map(|b| (**b).clone()).collect();
    Mat::vstack(&parts)
}
