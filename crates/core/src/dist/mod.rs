//! Distributed GCN training algorithms — the paper's §IV.
//!
//! Four algorithms, one module each:
//!
//! * [`onedim`] — 1D block-row (Algorithm 1): `A` by block columns, `H`/`G`
//!   by block rows, `W` replicated. Forward is a block-row SpMM over `P`
//!   broadcasts; backward is a large 1D outer product reduce-scattered into
//!   block rows plus a small `f x f` all-reduce.
//! * [`onedim_row`] — the §IV-A.7 mirror: `A` by block rows, swapping the
//!   outer-product and block-row roles of forward and backward at equal
//!   total communication.
//! * [`one5d`] — 1.5D replicated block-row (§IV-B): interpolates between
//!   1D and 2D with a replication factor `c`, trading `c`-fold replication
//!   of `A` for a `c`-fold reduction of the dense broadcast volume.
//! * [`twodim`] — 2D SUMMA (Algorithm 2): everything on a `√P x √P` grid;
//!   SUMMA SpMM stages plus "partial SUMMA" against the replicated `W`,
//!   with a row all-gather for the non-elementwise `log_softmax`.
//! * [`threedim`] — Split-3D-SpMM (§IV-D): a `∛P`-sided mesh; independent
//!   2D SUMMAs per layer followed by fiber reduce-scatters. The paper
//!   analyzes but does not implement this algorithm; here it is
//!   implemented and verified.
//!
//! All four produce the same weights and embeddings as the serial
//! reference up to floating-point accumulation order, for any process
//! count that fits their geometry.

pub mod one5d;
pub mod onedim;
pub mod onedim_row;
pub mod threedim;
pub mod transpose;
pub mod twodim;

use cagnet_comm::{Cat, Ctx, GatheredRows, PendingOp};
use cagnet_dense::Mat;
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// How the distributed trainers move dense feature/gradient blocks
/// between ranks.
///
/// The broadcast stages of these algorithms send an *entire* dense block
/// every stage, but a receiver multiplying a sparse panel only reads the
/// rows matching that panel's nonzero columns. `SparsityAware` switches
/// the stages to [`gather_rows`], which moves only the requested rows
/// (plus their indices) — bit-identical training at a fraction of the
/// metered `Cat::DenseComm` words on sparse graphs. All five trainers
/// honor it: the row-distributed family (1D, 1D-row, 1.5D) on their
/// block broadcasts, and the grid family (2D, 3D) on the dense-panel
/// side of every SUMMA stage. See DESIGN.md §9 for the cost accounting,
/// the per-stage needed-row derivation, and when `Dense` still wins.
///
/// `Cached` layers DistGNN-style halo caching (arXiv:2104.06700) on top
/// of the sparsity-aware exchange: each rank keeps an epoch-stamped cache
/// of the compact row blocks it fetched, refreshes them every `refresh`
/// training epochs through the nonblocking prefetch lane, and on the
/// epochs in between skips the collective entirely, serving the (stale)
/// cached rows. Remote rows are then up to `refresh − 1` epochs stale;
/// the rank's own block is always fresh. Training results are **not**
/// bit-identical to exact training for `refresh > 1` — see DESIGN.md §13
/// for the staleness semantics and the convergence harness
/// (`cached_bench`). `refresh: 1` refreshes every epoch and is
/// bit-identical to `SparsityAware`. Evaluation forward passes never
/// read or write the cache.
///
/// [`gather_rows`]: cagnet_comm::comm::Communicator::gather_rows
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommMode {
    /// Broadcast full dense blocks every stage (the paper's baseline).
    #[default]
    Dense,
    /// Exchange only the rows each receiver's sparse block references.
    SparsityAware,
    /// Sparsity-aware exchange with rank-local halo caching: gather
    /// fresh rows every `refresh` training epochs, serve the cache on
    /// the epochs in between. `refresh` must be ≥ 1.
    Cached {
        /// Refresh period in training epochs (1 = refresh every epoch,
        /// bit-identical to [`CommMode::SparsityAware`]).
        refresh: usize,
    },
}

impl CommMode {
    /// The cached tier's refresh period, if this is [`CommMode::Cached`].
    pub fn cached_refresh(self) -> Option<usize> {
        match self {
            CommMode::Cached { refresh } => Some(refresh),
            _ => None,
        }
    }

    /// Whether stage operands move as compact needed-row sets (the
    /// sparsity-aware and cached tiers) rather than full-block
    /// broadcasts. Trainers use this to decide when to build and
    /// multiply against column-compacted sparse panels.
    pub(crate) fn sparse_exchange(self) -> bool {
        !matches!(self, CommMode::Dense)
    }
}

/// Why a distributed trainer cannot be constructed on this cluster
/// geometry and problem. Returned by the trainers' `try_setup`
/// constructors; the panicking `setup` wrappers render it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetupError {
    /// The block distribution would leave ranks without vertices.
    TooManyRanks {
        /// World size `P`.
        ranks: usize,
        /// Vertex count `n`.
        vertices: usize,
    },
    /// The rank count does not fit the algorithm's process geometry
    /// (square grid, cubic mesh, replication factor dividing `P`, ...).
    Geometry(String),
    /// A trainer-specific configuration parameter is invalid.
    Config(String),
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the historic "more ranks than vertices" wording —
            // callers and tests match on it.
            SetupError::TooManyRanks { ranks, vertices } => {
                write!(f, "more ranks than vertices (P={ranks}, n={vertices})")
            }
            SetupError::Geometry(msg) | SetupError::Config(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SetupError {}

/// A stage fetch in flight. The dense broadcast and the sparsity-aware
/// row gather resolve to different payloads (a full shared block vs a
/// compact [`GatheredRows`]), so the issue-ahead pipelines carry this
/// enum and collapse it to the dense operand the stage SpMM multiplies.
pub(crate) enum Fetch<'c> {
    /// Pending full-block broadcast (`CommMode::Dense`).
    Dense(PendingOp<'c, Arc<Mat>>),
    /// Pending row gather (`CommMode::SparsityAware`, and cached-mode
    /// refresh epochs).
    Sparse(PendingOp<'c, GatheredRows>),
    /// Stage operand already resident: a cached compact block served
    /// without any collective (`CommMode::Cached` non-refresh epochs),
    /// or a fresh locally-extracted compact of the rank's own block.
    Cached(Arc<Mat>),
}

impl Fetch<'_> {
    /// Block until the stage operand is available. In sparse mode the
    /// result holds exactly the `needed` rows in request order — pair it
    /// with the column-compacted sparse panel
    /// ([`cagnet_sparse::Csr::compact_cols`]) so accumulation order, and
    /// therefore every bit of the result, matches the dense path.
    pub(crate) fn wait(self, needed: &[usize]) -> Arc<Mat> {
        match self {
            Fetch::Dense(op) => op.wait(),
            Fetch::Sparse(op) => op.wait().compact(needed),
            Fetch::Cached(mat) => mat,
        }
    }
}

/// Rank-local cache of the compact stage operands a trainer fetched on
/// its last refresh epoch (`CommMode::Cached`, DESIGN.md §13). One slot
/// per (layer, stage) — trainers compute the slot index. The
/// refresh-vs-serve decision is taken **once per training epoch**
/// ([`HaloCache::begin_epoch`]) and replicated across ranks (epoch
/// counters and refresh periods are identical everywhere), so on serve
/// epochs no rank issues the collective and the BSP sequence stays
/// aligned; on refresh epochs every rank gathers through the
/// `*_refresh`-fingerprinted collectives.
#[derive(Debug, Default)]
pub(crate) struct HaloCache {
    slots: Vec<Option<Arc<Mat>>>,
    /// Whether the current training epoch refreshes (gathers fresh rows)
    /// instead of serving the cache.
    refresh_now: bool,
    /// A refresh epoch has completed since construction/invalidation.
    valid: bool,
}

impl HaloCache {
    /// Decide once, at the top of training epoch `epoch` (1-based), and
    /// for the whole forward+backward pass, whether this epoch refreshes.
    /// Refresh is due when the cache has never been filled (or was
    /// invalidated) or when the periodic schedule hits: epochs `1`,
    /// `1 + refresh`, `1 + 2·refresh`, ...
    pub(crate) fn begin_epoch(&mut self, refresh: usize, epoch: usize) {
        assert!(refresh >= 1, "CommMode::Cached refresh must be >= 1");
        self.refresh_now = !self.valid || (epoch.max(1) - 1).is_multiple_of(refresh);
        // The pass ahead repopulates every slot it will later serve, and
        // while `refresh_now` holds no slot is read — so the cache can be
        // declared valid immediately.
        if self.refresh_now {
            self.valid = true;
        }
    }

    /// Whether the current epoch gathers fresh rows (true) or serves the
    /// cache (false). Stable for the whole pass.
    pub(crate) fn refreshing(&self) -> bool {
        self.refresh_now
    }

    /// Drop every cached block and force the next training epoch to
    /// refresh — required whenever the precomputed needed-row sets or the
    /// adjacency may have changed (re-setup, `set_comm_mode`).
    pub(crate) fn invalidate(&mut self) {
        self.slots.clear();
        self.valid = false;
        self.refresh_now = false;
    }

    /// Store the compact block fetched for `slot` on a refresh epoch.
    pub(crate) fn store(&mut self, slot: usize, block: Arc<Mat>) {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        self.slots[slot] = Some(block);
    }

    /// Serve the cached compact block for `slot`.
    pub(crate) fn get(&self, slot: usize) -> Arc<Mat> {
        match self.slots.get(slot) {
            Some(Some(b)) => b.clone(),
            _ => panic!(
                "halo cache: serve of slot {slot} before any refresh epoch populated it \
                 (cache invalidation or refresh scheduling bug)"
            ),
        }
    }
}

/// The newest stored activation `H^L` — the trainer's output block.
/// Trainers seed `hs` with the feature block at construction, so this
/// cannot fail after `setup`; the message covers direct misuse. Generic
/// over the storage: plain `Mat` stacks and the `Arc<Mat>` stacks the
/// broadcast-based trainers keep (so their own block rides into
/// collectives without a copy) both work.
pub(crate) fn output_block<M: Borrow<Mat>>(hs: &[M]) -> &Mat {
    match hs.last() {
        Some(h) => h.borrow(),
        None => panic!("no stored activations: run setup/forward first"),
    }
}

/// [`output_block`] for the `Arc<Mat>` stacks: the shared handle itself,
/// so the output block enters `allgather_shared` without a deep copy.
pub(crate) fn output_block_shared(hs: &[Arc<Mat>]) -> Arc<Mat> {
    match hs.last() {
        Some(h) => h.clone(),
        None => panic!("no stored activations: run setup/forward first"),
    }
}

/// Per-rank storage footprint, in 8-byte words — the quantity behind the
/// paper's memory arguments: 2D "consumes optimal memory" (§I), 1.5D pays
/// `c`-fold replication (§IV-B), the 1D backward materializes `O(nf)`
/// low-rank intermediates (§IV-A.3), and 3D replicates intermediates by
/// `∛P` (§IV-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Sparse adjacency blocks held by this rank (2 words per stored
    /// nonzero + row pointers), counting replicas.
    pub adjacency: usize,
    /// Persistent dense state after a forward pass: feature block plus
    /// stored activations `H^l` and pre-activations `Z^l` for backprop.
    pub dense_state: usize,
    /// Largest transient buffer the algorithm materializes during an
    /// epoch (outer-product contributions, SUMMA partial sums,
    /// all-gathered row slabs).
    pub intermediate: usize,
}

impl StorageReport {
    /// Total words.
    pub fn total(&self) -> usize {
        self.adjacency + self.dense_state + self.intermediate
    }
}

/// Storage words of a CSR block: values + column indices + row pointers.
pub(crate) fn csr_words(a: &cagnet_sparse::Csr) -> usize {
    2 * a.nnz() + a.rows() + 1
}

/// Total elements across a stack of dense matrices.
pub(crate) fn mats_words<M: Borrow<Mat>>(ms: &[M]) -> usize {
    ms.iter().map(|m| m.borrow().len()).sum()
}

/// All-gather per-rank `(correct, total)` accuracy counts and return the
/// global accuracy fraction. Shared by every distributed trainer.
pub(crate) fn global_accuracy(ctx: &Ctx, correct: usize, total: usize) -> f64 {
    let c = ctx.world.allreduce_scalar(correct as f64, Cat::DenseComm);
    let t = ctx.world.allreduce_scalar(total as f64, Cat::DenseComm);
    if t == 0.0 {
        0.0
    } else {
        c / t
    }
}

/// Assemble row blocks gathered in rank order into a full matrix.
pub(crate) fn assemble_row_blocks(blocks: &[std::sync::Arc<Mat>]) -> Mat {
    let parts: Vec<Mat> = blocks.iter().map(|b| (**b).clone()).collect();
    Mat::vstack(&parts)
}
