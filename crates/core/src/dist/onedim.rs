//! 1D block-row parallel GCN training — the paper's Algorithm 1 (§IV-A).
//!
//! Data distribution (Table III): `A` partitioned by block *columns*
//! (equivalently, `Aᵀ` by block rows — one block row of `Aᵀ` per rank),
//! `H^l` and `G^l` by block rows, `W^l` fully replicated.
//!
//! Per layer, forward runs `P` broadcast stages
//! (`T_i ← T_i + Aᵀ_{ij} H_j`), then a local GEMM against the replicated
//! `W`. Backward computes the large 1D outer product `A_i G_i` (a
//! full-height `n x f` low-rank contribution per rank), reduce-scatters it
//! back into block rows (§IV-A.3), reuses the scattered intermediate
//! `A G` for the weight gradient `Y = (H^{l-1})ᵀ (A G)` via an `f x f`
//! all-reduce (§IV-A.4), and finishes with the replicated gradient-descent
//! step.

use crate::loss::{accuracy_counts, nll_sum, output_gradient};
use crate::model::GcnConfig;
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::problem::Problem;
use cagnet_comm::{Cat, Ctx, GatheredRows};
use cagnet_dense::activation::{log_softmax_rows, Activation};
use cagnet_dense::ops::hadamard_assign;
use cagnet_dense::{matmul_nt_with, matmul_tn_with, matmul_with, Mat};
use cagnet_sparse::partition::{block_range, block_ranges};
use cagnet_sparse::spmm::{outer_product_from_transposed, spmm_acc_with};
use cagnet_sparse::Csr;
use std::cell::RefCell;
use std::sync::Arc;

/// Per-rank state of the 1D trainer.
pub struct OneDimTrainer {
    cfg: GcnConfig,
    n: usize,
    train_count: usize,
    /// My global row range `[r0, r1)`.
    r0: usize,
    /// Block row `i` of `Aᵀ` split into `P` column blocks
    /// (`Aᵀ_{ij}`, each `n_i x n_j`).
    at_blocks: Vec<Csr>,
    /// Per stage `j`: the sorted distinct columns of `Aᵀ_{ij}` — the rows
    /// of `H_j` this rank actually reads (sparsity-aware mode).
    needed: Vec<Vec<usize>>,
    /// Column-compacted copies of `at_blocks` (columns renumbered to
    /// `needed[j]` order) for multiplying compact gathered operands.
    /// Built lazily on the first switch to sparsity-aware mode.
    at_compact: Vec<Csr>,
    /// Dense broadcast vs sparsity-aware row exchange for the forward
    /// stages.
    comm_mode: super::CommMode,
    /// Cached-mode halo cache: one slot per (layer, stage) forward fetch
    /// (see [`super::HaloCache`]; DESIGN.md §13). Interior-mutable so the
    /// `&self` fetch helpers can store refreshed blocks.
    cache: RefCell<super::HaloCache>,
    /// Issue-ahead pipelining: prefetch stage `j+1`'s block with a
    /// nonblocking collective while stage `j` computes (DESIGN.md §10).
    overlap: bool,
    /// The full block row `Aᵀ_i` (`n_i x n`) — the CSR-of-transpose of
    /// `A`'s column block `i`, used directly by the backward outer
    /// product.
    at_row: Csr,
    labels: Arc<Vec<usize>>,
    mask: Arc<Vec<bool>>,
    /// Replicated weights.
    weights: Vec<Mat>,
    opt: Optimizer,
    act: Activation,
    dropout: f64,
    training: bool,
    epoch_counter: u64,
    drop_masks: Vec<Option<Mat>>,
    /// Stored block-row pre-activations from the last forward pass.
    zs: Vec<Mat>,
    /// Stored block-row activations (`hs\[0\]` = my feature block),
    /// shared so the owner's block enters broadcast stages without a
    /// copy.
    hs: Vec<Arc<Mat>>,
}

impl OneDimTrainer {
    /// Slice this rank's blocks out of the shared problem (uncharged
    /// setup, like the paper's data loading).
    ///
    /// # Panics
    /// When the geometry is invalid; see [`OneDimTrainer::try_setup`] for
    /// the fallible variant.
    pub fn setup(ctx: &Ctx, problem: &Problem, cfg: &GcnConfig) -> Self {
        match Self::try_setup(ctx, problem, cfg) {
            Ok(t) => t,
            Err(e) => panic!("1D trainer setup: {e}"),
        }
    }

    /// Fallible constructor: returns [`super::SetupError`] instead of
    /// panicking when the cluster does not fit the problem.
    pub fn try_setup(
        ctx: &Ctx,
        problem: &Problem,
        cfg: &GcnConfig,
    ) -> Result<Self, super::SetupError> {
        let n = problem.vertices();
        let p = ctx.size;
        if p > n {
            return Err(super::SetupError::TooManyRanks {
                ranks: p,
                vertices: n,
            });
        }
        let (r0, r1) = block_range(n, p, ctx.rank);
        let at_row = problem.adj_t.block(r0, r1, 0, n);
        let at_blocks: Vec<Csr> = block_ranges(n, p)
            .into_iter()
            .map(|(c0, c1)| at_row.block(0, r1 - r0, c0, c1))
            .collect();
        let needed = at_blocks.iter().map(Csr::needed_cols).collect();
        let h0 = problem.features.block(r0, r1, 0, problem.features.cols());
        Ok(OneDimTrainer {
            cfg: cfg.clone(),
            n,
            train_count: problem.train_count(),
            r0,
            at_blocks,
            needed,
            at_compact: Vec::new(),
            comm_mode: super::CommMode::Dense,
            cache: RefCell::new(super::HaloCache::default()),
            overlap: true,
            at_row,
            labels: Arc::new(problem.labels.clone()),
            mask: Arc::new(problem.train_mask.clone()),
            opt: {
                let w = cfg.init_weights();
                Optimizer::for_weights(OptimizerKind::Sgd, cfg.lr, &w)
            },
            act: Activation::Relu,
            dropout: 0.0,
            training: false,
            epoch_counter: 0,
            drop_masks: Vec::new(),
            weights: cfg.init_weights(),
            zs: Vec::new(),
            hs: vec![Arc::new(h0)],
        })
    }

    fn my_rows(&self) -> usize {
        self.at_row.rows()
    }

    /// Root-side dims of stage `j`'s broadcast block — every rank knows
    /// them from the balanced partition (`at_blocks[j]` has one column
    /// per root row), so receivers fingerprint them and a wrong-shaped
    /// panel is attributed to the root (CheckMode).
    fn stage_dims(&self, l: usize, j: usize) -> (usize, usize) {
        (self.at_blocks[j].cols(), self.hs[l].cols())
    }

    /// Cache slot of the (layer `l`, stage `j`) forward fetch.
    fn slot(&self, l: usize, j: usize) -> usize {
        l * self.at_blocks.len() + j
    }

    /// Whether the current pass serves stage operands from the halo cache
    /// (cached mode, training, non-refresh epoch). Evaluation forwards
    /// always gather fresh.
    fn cached_serving(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && !self.cache.borrow().refreshing()
    }

    /// Whether the current pass must store its gathered blocks into the
    /// halo cache (cached mode, training, refresh epoch).
    fn cached_refreshing(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && self.cache.borrow().refreshing()
    }

    /// Serve stage `j` of layer `l` without any collective: the rank's
    /// own block compacts fresh from local state (zero words, like the
    /// root of the skipped gather); remote blocks come from the cache,
    /// metering the words the skipped gather would have moved under
    /// [`Cat::CacheHit`].
    fn serve_cached(&self, ctx: &Ctx, l: usize, j: usize) -> Arc<Mat> {
        if j == ctx.rank {
            GatheredRows::full(self.hs[l].clone()).compact(&self.needed[j])
        } else {
            let row_words = self.hs[l].cols() as u64 + 1;
            ctx.world.cache_hit(self.needed[j].len() as u64 * row_words);
            self.cache.borrow().get(self.slot(l, j))
        }
    }

    /// Store a freshly gathered compact block on refresh epochs (remote
    /// stages only — the rank's own block is always served fresh).
    fn maybe_store(&self, ctx: &Ctx, l: usize, j: usize, block: &Arc<Mat>) {
        if self.cached_refreshing() && j != ctx.rank {
            self.cache
                .borrow_mut()
                .store(self.slot(l, j), block.clone());
        }
    }

    /// Issue the stage-`j` fetch of layer `l`'s activation block as a
    /// nonblocking collective (dense broadcast or sparsity-aware row
    /// gather, per [`Self::set_comm_mode`]). In cached mode, refresh
    /// epochs gather through the `igather_rows_refresh` prefetch lane and
    /// serve epochs return the resident block with no collective at all.
    fn issue_fetch<'c>(&self, ctx: &'c Ctx, l: usize, j: usize) -> super::Fetch<'c> {
        let payload = (j == ctx.rank).then(|| self.hs[l].clone());
        match self.comm_mode {
            super::CommMode::Dense => {
                super::Fetch::Dense(ctx.world.ibcast_shared(j, payload, Cat::DenseComm))
            }
            super::CommMode::SparsityAware => super::Fetch::Sparse(ctx.world.igather_rows(
                j,
                payload,
                &self.needed[j],
                Some(self.stage_dims(l, j)),
                Cat::DenseComm,
            )),
            super::CommMode::Cached { .. } => {
                if self.cached_serving() {
                    super::Fetch::Cached(self.serve_cached(ctx, l, j))
                } else if self.training {
                    super::Fetch::Sparse(ctx.world.igather_rows_refresh(
                        j,
                        payload,
                        &self.needed[j],
                        Some(self.stage_dims(l, j)),
                        Cat::DenseComm,
                    ))
                } else {
                    super::Fetch::Sparse(ctx.world.igather_rows(
                        j,
                        payload,
                        &self.needed[j],
                        Some(self.stage_dims(l, j)),
                        Cat::DenseComm,
                    ))
                }
            }
        }
    }

    /// Forward pass (Algorithm 1 per layer); returns the global mean
    /// masked NLL loss.
    pub fn forward(&mut self, ctx: &Ctx) -> f64 {
        let l_total = self.cfg.layers();
        let p = ctx.size;
        self.zs.clear();
        self.drop_masks = vec![None; l_total];
        self.hs.truncate(1);
        for l in 0..l_total {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            let mut t = Mat::zeros(self.my_rows(), f_in);
            // Issue-ahead pipeline: stage j+1's block is in flight while
            // stage j's SpMM computes, so its α–β cost hides behind the
            // compute lane. Every rank issues and waits in the same
            // order, so results stay bit-identical to the blocking loop.
            let mut pending = self.overlap.then(|| self.issue_fetch(ctx, l, 0));
            for j in 0..p {
                let hj = match pending.take() {
                    Some(op) => {
                        if j + 1 < p {
                            pending = Some(self.issue_fetch(ctx, l, j + 1));
                        }
                        op.wait(&self.needed[j])
                    }
                    None => {
                        // Arc clone only — the owner's resident block is
                        // never deep-copied, root or not.
                        let payload = (j == ctx.rank).then(|| self.hs[l].clone());
                        match self.comm_mode {
                            super::CommMode::Dense => {
                                ctx.world.bcast_shared(j, payload, Cat::DenseComm)
                            }
                            super::CommMode::SparsityAware => ctx
                                .world
                                .gather_rows(
                                    j,
                                    payload,
                                    &self.needed[j],
                                    Some(self.stage_dims(l, j)),
                                    Cat::DenseComm,
                                )
                                .compact(&self.needed[j]),
                            super::CommMode::Cached { .. } => {
                                if self.cached_serving() {
                                    self.serve_cached(ctx, l, j)
                                } else if self.training {
                                    ctx.world
                                        .gather_rows_refresh(
                                            j,
                                            payload,
                                            &self.needed[j],
                                            Some(self.stage_dims(l, j)),
                                            Cat::DenseComm,
                                        )
                                        .compact(&self.needed[j])
                                } else {
                                    ctx.world
                                        .gather_rows(
                                            j,
                                            payload,
                                            &self.needed[j],
                                            Some(self.stage_dims(l, j)),
                                            Cat::DenseComm,
                                        )
                                        .compact(&self.needed[j])
                                }
                            }
                        }
                    }
                };
                self.maybe_store(ctx, l, j, &hj);
                // The compact panel has the same nnz/rows as the full
                // block (columns are only renumbered), so the charged
                // SpMM cost — and the accumulation order — is identical
                // in both modes.
                let a = if self.comm_mode.sparse_exchange() {
                    &self.at_compact[j]
                } else {
                    &self.at_blocks[j]
                };
                ctx.charge_spmm(a.nnz(), a.rows(), f_in);
                spmm_acc_with(ctx.parallel(), a, &hj, &mut t);
            }
            let z = matmul_with(ctx.parallel(), &t, &self.weights[l]);
            ctx.charge_gemm(t.rows(), f_in, f_out);
            // In the 1D distribution H is row-partitioned, so even the
            // non-elementwise log_softmax needs no communication
            // (§IV-A.2).
            let h = if l + 1 == l_total {
                log_softmax_rows(&z)
            } else {
                let mut h = self.act.apply(&z);
                self.apply_dropout(l, self.r0, f_out, 0, f_out, &mut h);
                h
            };
            ctx.charge_elementwise(z.len());
            self.zs.push(z);
            self.hs.push(Arc::new(h));
        }
        let local = nll_sum(
            super::output_block(&self.hs),
            &self.labels,
            &self.mask,
            self.r0,
        );
        ctx.world.allreduce_scalar(local, Cat::DenseComm) / self.train_count as f64
    }

    /// Backward pass + replicated gradient-descent step.
    pub fn backward(&mut self, ctx: &Ctx) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "forward must run before backward");
        let mut g = output_gradient(
            &self.zs[l_total - 1],
            &self.labels,
            &self.mask,
            self.r0,
            self.train_count,
        );
        ctx.charge_elementwise(g.len());
        for l in (0..l_total).rev() {
            let f_out = self.cfg.dims[l + 1];
            let f_in = self.cfg.dims[l];
            // Large 1D outer product: A(:, my block) · G_i, a full-height
            // low-rank contribution (§IV-A.3).
            ctx.charge_spmm(self.at_row.nnz(), self.at_row.rows(), f_out);
            let contrib = outer_product_from_transposed(&self.at_row, &g);
            debug_assert_eq!(contrib.shape(), (self.n, f_out));
            let ag = ctx.world.reduce_scatter_rows(&contrib, Cat::DenseComm);
            // Small 1D outer product for Y (§IV-A.4), reusing A·G. With
            // overlap on, the f x f all-reduce is in flight while the
            // next layer's gradient GEMM computes; the weight update only
            // needs Y afterwards.
            ctx.charge_gemm(f_in, ag.rows(), f_out);
            let y_partial = matmul_tn_with(ctx.parallel(), &self.hs[l], &ag);
            let y_op = self
                .overlap
                .then(|| ctx.world.iallreduce_mat(&y_partial, Cat::DenseComm));
            if l > 0 {
                ctx.charge_gemm(ag.rows(), f_out, f_in);
                g = matmul_nt_with(ctx.parallel(), &ag, &self.weights[l]);
                hadamard_assign(&mut g, &self.act.prime(&self.zs[l - 1]));
                if let Some(mask) = self.drop_masks[l - 1].take() {
                    hadamard_assign(&mut g, &mask);
                }
                ctx.charge_elementwise(g.len());
            }
            let y = match y_op {
                Some(op) => op.wait(),
                None => ctx.world.allreduce_mat(&y_partial, Cat::DenseComm),
            };
            self.opt.step(l, &mut self.weights[l], &y);
            ctx.charge_elementwise(y.len());
        }
    }

    /// One epoch (forward + backward); returns the pre-update loss.
    pub fn epoch(&mut self, ctx: &Ctx) -> f64 {
        self.training = true;
        self.epoch_counter += 1;
        if let Some(refresh) = self.comm_mode.cached_refresh() {
            self.cache
                .borrow_mut()
                .begin_epoch(refresh, self.epoch_counter as usize);
        }
        let loss = self.forward(ctx);
        self.backward(ctx);
        self.training = false;
        loss
    }

    /// Global training accuracy of the current model (runs a forward
    /// pass).
    pub fn accuracy(&mut self, ctx: &Ctx) -> f64 {
        let _ = self.forward(ctx);
        let (c, t) = accuracy_counts(
            super::output_block(&self.hs),
            &self.labels,
            &self.mask,
            self.r0,
        );
        super::global_accuracy(ctx, c, t)
    }

    fn apply_dropout(
        &mut self,
        layer: usize,
        row_offset: usize,
        f_total: usize,
        c0: usize,
        c1: usize,
        h: &mut Mat,
    ) {
        if self.training && self.dropout > 0.0 {
            let mask = crate::dropout::mask_block(
                crate::dropout::DropoutKey {
                    base_seed: self.cfg.seed,
                    epoch: self.epoch_counter,
                    layer,
                },
                self.dropout,
                row_offset,
                h.rows(),
                f_total,
                c0,
                c1,
            );
            cagnet_dense::ops::hadamard_assign(h, &mask);
            self.drop_masks[layer] = Some(mask);
        }
    }

    /// Set the hidden-layer dropout rate (inverted dropout; a fresh
    /// deterministic mask per epoch, identical across layouts and ranks —
    /// see [`crate::dropout`]). 0 disables it; evaluation forwards never
    /// apply it.
    pub fn set_dropout(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        self.dropout = rate;
    }

    /// Choose dense broadcasts, the sparsity-aware row exchange, or the
    /// cached tier for the forward stages (see [`super::CommMode`]).
    /// `Dense` and `SparsityAware` train bit-identically; `Cached` is
    /// bit-identical only at `refresh: 1` (DESIGN.md §13). Must be set
    /// identically on every rank. Always drops any halo cache, so a mode
    /// change (or re-set after mutating state) can never serve stale
    /// blocks.
    pub fn set_comm_mode(&mut self, mode: super::CommMode) {
        if mode.sparse_exchange() && self.at_compact.is_empty() {
            self.at_compact = self
                .at_blocks
                .iter()
                .zip(&self.needed)
                .map(|(a, nd)| a.compact_cols(nd))
                .collect();
        }
        self.cache.borrow_mut().invalidate();
        self.comm_mode = mode;
    }

    /// Enable or disable communication/computation overlap (default on).
    /// With overlap on, stage fetches and the weight-gradient all-reduce
    /// run as nonblocking collectives pipelined against compute; losses,
    /// weights, and metered words are bit-identical either way — only
    /// modeled (and wall-clock) time changes. Must be set identically on
    /// every rank.
    pub fn set_overlap(&mut self, overlap: bool) {
        self.overlap = overlap;
    }

    /// Select the hidden-layer activation (default ReLU, the paper's σ;
    /// the output layer stays log-softmax). Elementwise, so it changes no
    /// communication. Must be set identically on every rank.
    pub fn set_hidden_activation(&mut self, act: Activation) {
        self.act = act;
    }

    /// Select the optimizer (replicated state; no communication). Resets
    /// any accumulated moments. Must be called identically on every rank,
    /// before training.
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.opt = Optimizer::for_weights(kind, self.cfg.lr, &self.weights);
    }

    /// Replace the replicated weights (e.g. with a trained model for
    /// inference). Must be called identically on every rank.
    pub fn set_weights(&mut self, weights: Vec<Mat>) {
        assert_eq!(weights.len(), self.cfg.layers(), "weight stack length");
        for (l, w) in weights.iter().enumerate() {
            assert_eq!(
                w.shape(),
                (self.cfg.dims[l], self.cfg.dims[l + 1]),
                "weight {l} shape"
            );
        }
        self.weights = weights;
    }

    /// Replicated weights (identical on every rank).
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }

    /// Per-rank storage footprint (run after at least one forward pass so
    /// the stored activations exist). See [`super::StorageReport`].
    pub fn storage_words(&self) -> super::StorageReport {
        let f_max = self.cfg.f_max();
        super::StorageReport {
            adjacency: super::csr_words(&self.at_row)
                + self.at_blocks.iter().map(super::csr_words).sum::<usize>()
                + self.at_compact.iter().map(super::csr_words).sum::<usize>(),
            dense_state: super::mats_words(&self.hs) + super::mats_words(&self.zs),
            // The §IV-A.3 full-height low-rank product: n x f, regardless
            // of P — 1D's memory-scalability problem.
            intermediate: self.n * f_max,
        }
    }

    /// Assemble the full output embedding matrix `H^L` on every rank.
    pub fn gather_embeddings(&self, ctx: &Ctx) -> Mat {
        let blocks = ctx
            .world
            .allgather_shared(super::output_block_shared(&self.hs), Cat::DenseComm);
        super::assemble_row_blocks(&blocks)
    }
}
