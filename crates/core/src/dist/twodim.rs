//! 2D SUMMA parallel GCN training — the paper's Algorithm 2 (§IV-C), the
//! variant the paper implements and evaluates on up to 100 GPUs — on
//! square **or rectangular** process grids (§IV-C.6).
//!
//! Data distribution (Table IV): `A`, `H^l`, `G^l` all block-2D on a
//! `Pr x Pc` grid; `W^l` fully replicated.
//!
//! Per layer, forward runs a SUMMA SpMM over the shared vertex dimension,
//! then a "partial SUMMA" against the replicated `W` (only `T` blocks
//! move, along process rows). The output layer's `log_softmax` is not
//! elementwise, so each process row all-gathers its `Z` blocks before
//! applying it (§IV-C.2). Backward runs the SUMMA SpMM for `A G^l`,
//! reuses the row-all-gathered `A G` for both the weight gradient
//! `Y = (H^{l-1})ᵀ A G` (§IV-C.4) and the `A G (W^l)ᵀ` product, and
//! finishes with the replicated update.
//!
//! **Stage structure.** The vertex dimension is partitioned into
//! `K = lcm(Pr, Pc)` *fine* blocks; `A`'s column groups and `H`'s row
//! groups are unions of consecutive fine blocks, so each SUMMA stage
//! broadcasts one fine panel from its (column-group, row-group) owners.
//! On a square grid `K = Pr = Pc` and this is exactly Algorithm 2's
//! per-process staging. The `stages_per_block` knob subdivides each fine
//! stage into narrower panels — the paper's blocking parameter `b`:
//! volume is unchanged but latency scales with the stage count (swept by
//! the ablation bench).
//!
//! §IV-C.6's trade-off is observable here: growing `Pr/Pc` shrinks the
//! sparse-matrix traffic (`nnz/Pr`) at the cost of the dense terms — see
//! `tests/rect_grid.rs`.

use crate::analysis::gcf;
use crate::loss::{accuracy_counts, nll_sum};
use crate::model::GcnConfig;
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::problem::Problem;
use cagnet_comm::grid::int_sqrt;
use cagnet_comm::{Cat, Ctx, GatheredRows, Grid2D, PendingOp};
use cagnet_dense::activation::{log_softmax_rows, softmax_rows, Activation};
use cagnet_dense::ops::hadamard_assign;
use cagnet_dense::{matmul_acc_with, matmul_nt_with, matmul_tn_with, Mat};
use cagnet_sparse::partition::{block_range, block_ranges};
use cagnet_sparse::spmm::spmm_acc_with;
use cagnet_sparse::Csr;
use std::cell::RefCell;
use std::sync::Arc;

/// Tuning knobs of the 2D trainer.
#[derive(Clone, Copy, Debug)]
pub struct TwoDimConfig {
    /// SUMMA sub-stages per fine block (the blocking parameter `b` of
    /// Algorithm 2 expressed as a divisor). 1 = one stage per fine block
    /// (widest panels, fewest messages).
    pub stages_per_block: usize,
    /// Charge the paper-implementation's per-epoch matrix-transpose cost
    /// ("trpose" in Figure 3): two local sparse transposes per epoch.
    pub charge_transpose: bool,
}

impl Default for TwoDimConfig {
    fn default() -> Self {
        TwoDimConfig {
            stages_per_block: 1,
            charge_transpose: true,
        }
    }
}

/// Per-rank state of the 2D SUMMA trainer.
pub struct TwoDimTrainer {
    cfg: GcnConfig,
    tcfg: TwoDimConfig,
    grid: Grid2D,
    train_count: usize,
    /// Fine vertex blocks (`K = lcm(Pr, Pc)` of them).
    fine: Vec<(usize, usize)>,
    /// My global vertex-row range (a union of `K/Pr` fine blocks).
    r0: usize,
    r1: usize,
    /// My global vertex-column range (a union of `K/Pc` fine blocks).
    c0: usize,
    /// `Aᵀ` block `(i, j)`.
    at_ij: Csr,
    /// `A` block `(i, j)` (equal to `at_ij` for undirected graphs, sliced
    /// independently to support directed input).
    a_ij: Csr,
    /// Per SUMMA stage `(k, t)` (index `k·stages_per_block + t`): the
    /// sorted distinct nonzero columns of my grid row's `Aᵀ` panel,
    /// relative to the stage's column range — the rows of the stage `D`
    /// panel this grid row actually reads (sparsity-aware mode). Derived
    /// at setup from the global adjacency: only the owning grid column
    /// holds the panel locally, but every rank of a grid row shares the
    /// same panel and therefore the same needed set.
    needed_fwd: Vec<Vec<usize>>,
    /// Same, from the `A` panels of the backward SUMMA.
    needed_bwd: Vec<Vec<usize>>,
    /// Dense panel broadcasts vs sparsity-aware row exchange for the
    /// SUMMA stages.
    comm_mode: super::CommMode,
    /// Cached-mode halo cache: one slot per (layer, SUMMA stage) `D`
    /// panel fetch, forward layers first, backward layers after (see
    /// [`super::HaloCache`]; DESIGN.md §13). `S` panels (adjacency) and
    /// the partial-W/reduction stages are never cached. Interior-mutable
    /// so the `&self` stage helpers can store refreshed panels.
    cache: RefCell<super::HaloCache>,
    /// Issue-ahead pipelining: prefetch the next SUMMA stage's panels
    /// with nonblocking broadcasts while the current stage's SpMM
    /// computes (DESIGN.md §10).
    overlap: bool,
    labels: Arc<Vec<usize>>,
    mask: Arc<Vec<bool>>,
    weights: Vec<Mat>,
    opt: Optimizer,
    act: Activation,
    dropout: f64,
    training: bool,
    epoch_counter: u64,
    drop_masks: Vec<Option<Mat>>,
    /// Stored pre-activation blocks from the last forward pass, shared
    /// so the output layer's block enters the row all-gather without a
    /// copy.
    zs: Vec<Arc<Mat>>,
    /// Stored activation blocks (`hs\[0\]` = my feature block).
    hs: Vec<Mat>,
    /// Full-width row block of output log-probabilities (valid after
    /// forward; identical across a process row), shared so
    /// `gather_embeddings` moves it without a copy.
    h_out_row: Arc<Mat>,
    /// Full-width row block of output softmax (for `G^L`).
    p_out_row: Mat,
}

/// Vertex ranges of the `Pr` row groups and `Pc` column groups derived
/// from the fine partition (`group i` = union of its consecutive fine
/// blocks). Using unions keeps every coarse boundary on a fine boundary
/// even when `n` is not divisible.
fn coarse_ranges(fine: &[(usize, usize)], parts: usize) -> Vec<(usize, usize)> {
    let per = fine.len() / parts;
    (0..parts)
        .map(|g| (fine[g * per].0, fine[(g + 1) * per - 1].1))
        .collect()
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcf(a, b) * b
}

impl TwoDimTrainer {
    /// Square-grid setup (Algorithm 2 as the paper runs it). World size
    /// must be a perfect square.
    pub fn setup(ctx: &Ctx, problem: &Problem, cfg: &GcnConfig, tcfg: TwoDimConfig) -> Self {
        match Self::try_setup(ctx, problem, cfg, tcfg) {
            Ok(t) => t,
            Err(e) => panic!("2D trainer setup: {e}"),
        }
    }

    /// Fallible square-grid constructor: returns [`super::SetupError`]
    /// instead of panicking on an invalid geometry.
    pub fn try_setup(
        ctx: &Ctx,
        problem: &Problem,
        cfg: &GcnConfig,
        tcfg: TwoDimConfig,
    ) -> Result<Self, super::SetupError> {
        let Some(q) = int_sqrt(ctx.size) else {
            return Err(super::SetupError::Geometry(format!(
                "2D trainer needs a square process count, got {}",
                ctx.size
            )));
        };
        Self::try_setup_rect(ctx, problem, cfg, tcfg, q, q)
    }

    /// Rectangular-grid setup (§IV-C.6). `pr * pc` must equal the world
    /// size.
    pub fn setup_rect(
        ctx: &Ctx,
        problem: &Problem,
        cfg: &GcnConfig,
        tcfg: TwoDimConfig,
        pr: usize,
        pc: usize,
    ) -> Self {
        match Self::try_setup_rect(ctx, problem, cfg, tcfg, pr, pc) {
            Ok(t) => t,
            Err(e) => panic!("2D trainer setup: {e}"),
        }
    }

    /// Fallible rectangular-grid constructor. Validation happens before
    /// the grid's communicator splits, so on error every rank returns
    /// without touching the collectives.
    pub fn try_setup_rect(
        ctx: &Ctx,
        problem: &Problem,
        cfg: &GcnConfig,
        tcfg: TwoDimConfig,
        pr: usize,
        pc: usize,
    ) -> Result<Self, super::SetupError> {
        if tcfg.stages_per_block < 1 {
            return Err(super::SetupError::Config(
                "stages_per_block must be >= 1".into(),
            ));
        }
        let n = problem.vertices();
        let k = lcm(pr, pc);
        if k > n {
            return Err(super::SetupError::Geometry(
                "stage count exceeds vertex count".into(),
            ));
        }
        let grid = Grid2D::new(ctx, pr, pc);
        let fine = block_ranges(n, k);
        let rows = coarse_ranges(&fine, pr);
        let cols = coarse_ranges(&fine, pc);
        let (r0, r1) = rows[grid.i];
        let (c0, c1) = cols[grid.j];
        let at_ij = problem.adj_t.block(r0, r1, c0, c1);
        let a_ij = problem.adj.block(r0, r1, c0, c1);
        // Per-stage needed sets for sparsity-aware mode (uncharged setup,
        // like the slicing above).
        let sub = tcfg.stages_per_block;
        let mut needed_fwd = Vec::with_capacity(k * sub);
        let mut needed_bwd = Vec::with_capacity(k * sub);
        for &(fk0, fk1) in &fine {
            for t in 0..sub {
                let (t0, t1) = block_range(fk1 - fk0, sub, t);
                needed_fwd.push(problem.adj_t.needed_cols_in(r0, r1, fk0 + t0, fk0 + t1));
                needed_bwd.push(problem.adj.needed_cols_in(r0, r1, fk0 + t0, fk0 + t1));
            }
        }
        let f0 = problem.features.cols();
        let (fc0, fc1) = block_range(f0, pc, grid.j);
        let h0 = problem.features.block(r0, r1, fc0, fc1);
        Ok(TwoDimTrainer {
            cfg: cfg.clone(),
            tcfg,
            grid,
            train_count: problem.train_count(),
            fine,
            r0,
            r1,
            c0,
            at_ij,
            a_ij,
            needed_fwd,
            needed_bwd,
            comm_mode: super::CommMode::Dense,
            cache: RefCell::new(super::HaloCache::default()),
            overlap: true,
            labels: Arc::new(problem.labels.clone()),
            mask: Arc::new(problem.train_mask.clone()),
            opt: {
                let w = cfg.init_weights();
                Optimizer::for_weights(OptimizerKind::Sgd, cfg.lr, &w)
            },
            act: Activation::Relu,
            dropout: 0.0,
            training: false,
            epoch_counter: 0,
            drop_masks: Vec::new(),
            weights: cfg.init_weights(),
            zs: Vec::new(),
            hs: vec![h0],
            h_out_row: Arc::new(Mat::zeros(0, 0)),
            p_out_row: Mat::zeros(0, 0),
        })
    }

    fn my_rows(&self) -> usize {
        self.r1 - self.r0
    }

    /// Cache slot base of layer `l`'s forward SUMMA (`K·sub` slots per
    /// layer, one per `(k, t)` stage).
    fn fwd_slot_base(&self, l: usize) -> usize {
        l * self.fine.len() * self.tcfg.stages_per_block
    }

    /// Cache slot base of layer `l`'s backward SUMMA (after all forward
    /// layers).
    fn bwd_slot_base(&self, l: usize) -> usize {
        (self.cfg.layers() + l) * self.fine.len() * self.tcfg.stages_per_block
    }

    /// Whether the current pass serves `D` panels from the halo cache
    /// (cached mode, training, non-refresh epoch). Evaluation forwards
    /// always gather fresh.
    fn cached_serving(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && !self.cache.borrow().refreshing()
    }

    /// Whether the current pass must store its gathered panels into the
    /// halo cache (cached mode, training, refresh epoch).
    fn cached_refreshing(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && self.cache.borrow().refreshing()
    }

    /// Serve a stage `D` panel without any collective: the owning grid
    /// row compacts fresh from its local block for SUMMA stage
    /// `(fk0, t0, t1)` (zero words, like the root of the skipped
    /// gather); other grid rows read the cache, metering the words
    /// the skipped gather would have moved under
    /// [`Cat::CacheHit`].
    fn serve_cached(
        &self,
        d_mine: &Mat,
        needed: &[usize],
        owner_row: usize,
        stage: (usize, usize, usize),
        slot: usize,
    ) -> Arc<Mat> {
        let (fk0, t0, t1) = stage;
        if self.grid.i == owner_row {
            let lo = fk0 - self.r0;
            GatheredRows::full(Arc::new(d_mine.block(lo + t0, lo + t1, 0, d_mine.cols())))
                .compact(needed)
        } else {
            let row_words = d_mine.cols() as u64 + 1;
            self.grid.col.cache_hit(needed.len() as u64 * row_words);
            self.cache.borrow().get(slot)
        }
    }

    /// Store a freshly gathered compact `D` panel on refresh epochs
    /// (panels owned by other grid rows only — the owner's panel is
    /// always served fresh).
    fn maybe_store(&self, owner_row: usize, slot: usize, panel: &Arc<Mat>) {
        if self.cached_refreshing() && self.grid.i != owner_row {
            self.cache.borrow_mut().store(slot, panel.clone());
        }
    }

    /// Issue SUMMA stage `(k, t)`'s two panel exchanges (the `S` panel
    /// along the process row, the `D` panel along the process column) as
    /// nonblocking collectives. In sparsity-aware mode the owner serves
    /// the column-compacted `S` panel (same nnz — identical SparseComm
    /// words) and the `D` panel moves as a row gather of each grid row's
    /// needed rows instead of a full broadcast.
    #[allow(clippy::type_complexity)]
    fn issue_summa_stage<'s>(
        &'s self,
        s_mine: &Csr,
        d_mine: &Mat,
        needed_tbl: &[Vec<usize>],
        slot_base: usize,
        k: usize,
        t: usize,
    ) -> (PendingOp<'s, Arc<Csr>>, super::Fetch<'s>) {
        let k_total = self.fine.len();
        let owner_col = k / (k_total / self.grid.pc);
        let owner_row = k / (k_total / self.grid.pr);
        let (fk0, fk1) = self.fine[k];
        let sub = self.tcfg.stages_per_block;
        let (t0, t1) = block_range(fk1 - fk0, sub, t);
        let needed = &needed_tbl[k * sub + t];
        let a_op = self.grid.row.ibcast(
            owner_col,
            (self.grid.j == owner_col).then(|| {
                // Local slice of my Aᵀ block covering fine stage k.
                let lo = fk0 - self.c0;
                let panel = s_mine.block(0, s_mine.rows(), lo + t0, lo + t1);
                if self.comm_mode.sparse_exchange() {
                    panel.compact_cols(needed)
                } else {
                    panel
                }
            }),
            Cat::SparseComm,
        );
        let d_payload = || {
            (self.grid.i == owner_row).then(|| {
                let lo = fk0 - self.r0;
                Arc::new(d_mine.block(lo + t0, lo + t1, 0, d_mine.cols()))
            })
        };
        let dims = Some((t1 - t0, d_mine.cols()));
        let d_op = match self.comm_mode {
            super::CommMode::Dense => super::Fetch::Dense(self.grid.col.ibcast(
                owner_row,
                (self.grid.i == owner_row).then(|| {
                    let lo = fk0 - self.r0;
                    d_mine.block(lo + t0, lo + t1, 0, d_mine.cols())
                }),
                Cat::DenseComm,
            )),
            super::CommMode::SparsityAware => super::Fetch::Sparse(self.grid.col.igather_rows(
                owner_row,
                d_payload(),
                needed,
                dims,
                Cat::DenseComm,
            )),
            super::CommMode::Cached { .. } => {
                if self.cached_serving() {
                    super::Fetch::Cached(self.serve_cached(
                        d_mine,
                        needed,
                        owner_row,
                        (fk0, t0, t1),
                        slot_base + k * sub + t,
                    ))
                } else if self.training {
                    super::Fetch::Sparse(self.grid.col.igather_rows_refresh(
                        owner_row,
                        d_payload(),
                        needed,
                        dims,
                        Cat::DenseComm,
                    ))
                } else {
                    super::Fetch::Sparse(self.grid.col.igather_rows(
                        owner_row,
                        d_payload(),
                        needed,
                        dims,
                        Cat::DenseComm,
                    ))
                }
            }
        };
        (a_op, d_op)
    }

    /// SUMMA SpMM: `out_ij += Σ_k SPMM(S(:, fine k), D(fine k, :))` over
    /// the `K` fine stages, each owned by one grid column (the `S` panel)
    /// and one grid row (the `D` panel). Sub-blocked into
    /// `stages_per_block` panels per fine stage. With overlap on, the
    /// next stage's panels are in flight while the current stage's SpMM
    /// computes.
    fn summa_spmm(
        &self,
        ctx: &Ctx,
        s_mine: &Csr,
        d_mine: &Mat,
        f_cols: usize,
        needed_tbl: &[Vec<usize>],
        slot_base: usize,
    ) -> Mat {
        let k_total = self.fine.len();
        let col_per = k_total / self.grid.pc;
        let row_per = k_total / self.grid.pr;
        let sub = self.tcfg.stages_per_block;
        let mut out = Mat::zeros(self.my_rows(), f_cols);
        let stages: Vec<(usize, usize)> = (0..k_total)
            .flat_map(|k| (0..sub).map(move |t| (k, t)))
            .collect();
        let mut pending = self.overlap.then(|| {
            self.issue_summa_stage(
                s_mine,
                d_mine,
                needed_tbl,
                slot_base,
                stages[0].0,
                stages[0].1,
            )
        });
        for (idx, &(k, t)) in stages.iter().enumerate() {
            let needed = &needed_tbl[k * sub + t];
            let (a_panel, d_panel) = match pending.take() {
                Some((a_op, d_op)) => {
                    if let Some(&(nk, nt)) = stages.get(idx + 1) {
                        pending = Some(
                            self.issue_summa_stage(s_mine, d_mine, needed_tbl, slot_base, nk, nt),
                        );
                    }
                    (a_op.wait(), d_op.wait(needed))
                }
                None => {
                    let owner_col = k / col_per;
                    let owner_row = k / row_per;
                    let (fk0, fk1) = self.fine[k];
                    let (t0, t1) = block_range(fk1 - fk0, sub, t);
                    let a_panel = self.grid.row.bcast(
                        owner_col,
                        (self.grid.j == owner_col).then(|| {
                            // Local slice of my Aᵀ block covering fine
                            // stage k.
                            let lo = fk0 - self.c0;
                            let panel = s_mine.block(0, s_mine.rows(), lo + t0, lo + t1);
                            if self.comm_mode.sparse_exchange() {
                                panel.compact_cols(needed)
                            } else {
                                panel
                            }
                        }),
                        Cat::SparseComm,
                    );
                    let d_payload = || {
                        (self.grid.i == owner_row).then(|| {
                            let lo = fk0 - self.r0;
                            Arc::new(d_mine.block(lo + t0, lo + t1, 0, d_mine.cols()))
                        })
                    };
                    let dims = Some((t1 - t0, d_mine.cols()));
                    let d_panel = match self.comm_mode {
                        super::CommMode::Dense => self.grid.col.bcast(
                            owner_row,
                            (self.grid.i == owner_row).then(|| {
                                let lo = fk0 - self.r0;
                                d_mine.block(lo + t0, lo + t1, 0, d_mine.cols())
                            }),
                            Cat::DenseComm,
                        ),
                        super::CommMode::SparsityAware => self
                            .grid
                            .col
                            .gather_rows(owner_row, d_payload(), needed, dims, Cat::DenseComm)
                            .compact(needed),
                        super::CommMode::Cached { .. } => {
                            if self.cached_serving() {
                                self.serve_cached(
                                    d_mine,
                                    needed,
                                    owner_row,
                                    (fk0, t0, t1),
                                    slot_base + k * sub + t,
                                )
                            } else if self.training {
                                self.grid
                                    .col
                                    .gather_rows_refresh(
                                        owner_row,
                                        d_payload(),
                                        needed,
                                        dims,
                                        Cat::DenseComm,
                                    )
                                    .compact(needed)
                            } else {
                                self.grid
                                    .col
                                    .gather_rows(
                                        owner_row,
                                        d_payload(),
                                        needed,
                                        dims,
                                        Cat::DenseComm,
                                    )
                                    .compact(needed)
                            }
                        }
                    };
                    (a_panel, d_panel)
                }
            };
            self.maybe_store(k / row_per, slot_base + k * sub + t, &d_panel);
            // In sparse mode both panels are compact: the S panel's
            // columns are renumbered to needed order (same nnz/rows) and
            // the D panel holds exactly those rows, so the accumulation
            // order — and the charged cost — matches dense mode bit for
            // bit.
            ctx.charge_spmm(a_panel.nnz(), a_panel.rows(), d_panel.cols());
            spmm_acc_with(ctx.parallel(), &a_panel, &d_panel, &mut out);
        }
        out
    }

    /// Partial SUMMA against the replicated `W`: `out_ij += Σ_s T_is ·
    /// W[in-block s, out-block j]`, with `Wᵀ` slices when `transpose_w`
    /// (the backward product). These stages stay dense broadcasts in
    /// every [`super::CommMode`]: the stage GEMM reads *all* rows of the
    /// broadcast `T` block, so a row gather would request every row and
    /// only add the per-row index words.
    fn partial_summa_w(
        &self,
        ctx: &Ctx,
        t_mine: &Arc<Mat>,
        w: &Mat,
        f_in: usize,
        f_out: usize,
        transpose_w: bool,
    ) -> Mat {
        let pc = self.grid.pc;
        let (oc0, oc1) = block_range(f_out, pc, self.grid.j);
        let mut out = Mat::zeros(self.my_rows(), oc1 - oc0);
        // Issue-ahead pipeline over the pc broadcast stages, as in
        // summa_spmm. Arc payloads: my own T block is never deep-copied
        // into the collective.
        let issue = |s: usize| {
            self.grid.row.ibcast_shared(
                s,
                (self.grid.j == s).then(|| t_mine.clone()),
                Cat::DenseComm,
            )
        };
        let mut pending = self.overlap.then(|| issue(0));
        for s in 0..pc {
            let t_hat = match pending.take() {
                Some(op) => {
                    if s + 1 < pc {
                        pending = Some(issue(s + 1));
                    }
                    op.wait()
                }
                None => self.grid.row.bcast_shared(
                    s,
                    (self.grid.j == s).then(|| t_mine.clone()),
                    Cat::DenseComm,
                ),
            };
            let (ic0, ic1) = block_range(f_in, pc, s);
            debug_assert_eq!(ic1 - ic0, t_hat.cols(), "stage width mismatch");
            if ic1 == ic0 || oc1 == oc0 {
                continue;
            }
            ctx.charge_gemm(t_hat.rows(), ic1 - ic0, oc1 - oc0);
            if transpose_w {
                // out += t_hat · (W[oc, ic])ᵀ
                let w_slice = w.block(oc0, oc1, ic0, ic1);
                let add = matmul_nt_with(ctx.parallel(), &t_hat, &w_slice);
                cagnet_dense::ops::add_assign(&mut out, &add);
            } else {
                let w_slice = w.block(ic0, ic1, oc0, oc1);
                matmul_acc_with(ctx.parallel(), &t_hat, &w_slice, &mut out);
            }
        }
        out
    }

    /// Forward pass; returns global mean masked NLL loss.
    pub fn forward(&mut self, ctx: &Ctx) -> f64 {
        let l_total = self.cfg.layers();
        let pc = self.grid.pc;
        self.zs.clear();
        self.drop_masks = vec![None; l_total];
        self.hs.truncate(1);
        for l in 0..l_total {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            // Phase 1: T = Aᵀ H (SUMMA SpMM).
            let t = Arc::new(self.summa_spmm(
                ctx,
                &self.at_ij,
                &self.hs[l],
                self.hs[l].cols(),
                &self.needed_fwd,
                self.fwd_slot_base(l),
            ));
            // Phase 2: Z = T W (partial SUMMA; W replicated).
            let z = Arc::new(self.partial_summa_w(ctx, &t, &self.weights[l], f_in, f_out, false));
            let h = if l + 1 == l_total {
                // log_softmax is not elementwise: all-gather Z along the
                // process row to assemble full rows (§IV-C.2).
                let parts = self.grid.row.allgather_shared(z.clone(), Cat::DenseComm);
                let z_row = Mat::hstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
                ctx.charge_elementwise(2 * z_row.len());
                self.h_out_row = Arc::new(log_softmax_rows(&z_row));
                self.p_out_row = softmax_rows(&z_row);
                let (oc0, oc1) = block_range(f_out, pc, self.grid.j);
                self.h_out_row.block(0, z_row.rows(), oc0, oc1)
            } else {
                ctx.charge_elementwise(z.len());
                let mut h = self.act.apply(&z);
                let (dc0, dc1) = block_range(f_out, self.grid.pc, self.grid.j);
                self.apply_dropout(l, self.r0, f_out, dc0, dc1, &mut h);
                h
            };
            self.zs.push(z);
            self.hs.push(h);
        }
        // Loss: one rank per process row contributes its row block.
        let local = if self.grid.j == 0 {
            nll_sum(&self.h_out_row, &self.labels, &self.mask, self.r0)
        } else {
            0.0
        };
        ctx.world.allreduce_scalar(local, Cat::DenseComm) / self.train_count as f64
    }

    /// Output-layer gradient block `G^L_ij` from the stored row softmax.
    fn output_gradient_block(&self) -> Mat {
        let pc = self.grid.pc;
        let f_out = self.cfg.f_out();
        let (oc0, oc1) = block_range(f_out, pc, self.grid.j);
        let rows = self.my_rows();
        let scale = 1.0 / self.train_count as f64;
        let mut g = Mat::zeros(rows, oc1 - oc0);
        for r in 0..rows {
            let gv = self.r0 + r;
            if !self.mask[gv] {
                continue;
            }
            let out = g.row_mut(r);
            for (cl, c) in (oc0..oc1).enumerate() {
                let mut v = self.p_out_row[(r, c)] * scale;
                if c == self.labels[gv] {
                    v -= scale;
                }
                out[cl] = v;
            }
        }
        g
    }

    /// Backward pass + replicated gradient-descent step.
    pub fn backward(&mut self, ctx: &Ctx) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "forward must run before backward");
        if self.tcfg.charge_transpose {
            // The paper's implementation pays local transposes twice per
            // epoch (cf. §IV-A.7 "only twice per epoch"); Figure 3 reports
            // them as "trpose".
            ctx.charge_transpose(2 * self.a_ij.nnz());
        }
        let mut g = self.output_gradient_block();
        ctx.charge_elementwise(g.len());
        for l in (0..l_total).rev() {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            // SUMMA SpMM: AG = A G (saved and reused, §IV-C.4).
            let ag = self.summa_spmm(
                ctx,
                &self.a_ij,
                &g,
                g.cols(),
                &self.needed_bwd,
                self.bwd_slot_base(l),
            );
            // Row all-gather of AG: serves both Y and A G Wᵀ. The local
            // block moves into the collective, not a copy of it.
            let parts = self.grid.row.allgather_shared(Arc::new(ag), Cat::DenseComm);
            let ag_row = Mat::hstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            debug_assert_eq!(ag_row.shape(), (self.my_rows(), f_out));
            // Y = (H^{l-1})ᵀ (A G): local slab product, column-group
            // reduction, row replication (2D dense SUMMA + all-gather in
            // the paper's terms).
            ctx.charge_gemm(self.hs[l].cols(), self.my_rows(), f_out);
            let y_local = matmul_tn_with(ctx.parallel(), &self.hs[l], &ag_row);
            // With overlap on, the column-group Y reduction is in flight
            // while the G^{l-1} GEMM computes (both read only ag_row and
            // replicated state). The dropout mask is taken up front so
            // no &mut self is needed while the op borrows the grid.
            let drop_mask = (l > 0).then(|| self.drop_masks[l - 1].take()).flatten();
            let y_op = self
                .overlap
                .then(|| self.grid.col.iallreduce_mat(&y_local, Cat::DenseComm));
            if l > 0 {
                // G^{l-1} = A G (W^l)ᵀ ⊙ σ'(Z^{l-1}): local against
                // replicated W using the already-gathered AG row slab.
                let (jc0, jc1) = block_range(f_in, self.grid.pc, self.grid.j);
                let w_slice = self.weights[l].block(jc0, jc1, 0, f_out);
                ctx.charge_gemm(self.my_rows(), f_out, jc1 - jc0);
                g = matmul_nt_with(ctx.parallel(), &ag_row, &w_slice);
                hadamard_assign(&mut g, &self.act.prime(&self.zs[l - 1]));
                if let Some(mask) = drop_mask {
                    hadamard_assign(&mut g, &mask);
                }
                ctx.charge_elementwise(g.len());
            }
            let y_j = match y_op {
                Some(op) => op.wait(),
                None => self.grid.col.allreduce_mat(&y_local, Cat::DenseComm),
            };
            let y_parts = self.grid.row.allgather(y_j, Cat::DenseComm);
            let y = Mat::vstack(&y_parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            debug_assert_eq!(y.shape(), (f_in, f_out));
            self.opt.step(l, &mut self.weights[l], &y);
            ctx.charge_elementwise(y.len());
        }
    }

    /// One epoch; returns the pre-update loss.
    pub fn epoch(&mut self, ctx: &Ctx) -> f64 {
        self.training = true;
        self.epoch_counter += 1;
        if let Some(refresh) = self.comm_mode.cached_refresh() {
            self.cache
                .borrow_mut()
                .begin_epoch(refresh, self.epoch_counter as usize);
        }
        let loss = self.forward(ctx);
        self.backward(ctx);
        self.training = false;
        loss
    }

    /// Global training accuracy of the current model.
    pub fn accuracy(&mut self, ctx: &Ctx) -> f64 {
        let _ = self.forward(ctx);
        let (c, t) = if self.grid.j == 0 {
            accuracy_counts(&self.h_out_row, &self.labels, &self.mask, self.r0)
        } else {
            (0, 0)
        };
        super::global_accuracy(ctx, c, t)
    }

    fn apply_dropout(
        &mut self,
        layer: usize,
        row_offset: usize,
        f_total: usize,
        c0: usize,
        c1: usize,
        h: &mut Mat,
    ) {
        if self.training && self.dropout > 0.0 {
            let mask = crate::dropout::mask_block(
                crate::dropout::DropoutKey {
                    base_seed: self.cfg.seed,
                    epoch: self.epoch_counter,
                    layer,
                },
                self.dropout,
                row_offset,
                h.rows(),
                f_total,
                c0,
                c1,
            );
            cagnet_dense::ops::hadamard_assign(h, &mask);
            self.drop_masks[layer] = Some(mask);
        }
    }

    /// Set the hidden-layer dropout rate (inverted dropout; a fresh
    /// deterministic mask per epoch, identical across layouts and ranks —
    /// see [`crate::dropout`]). 0 disables it; evaluation forwards never
    /// apply it.
    pub fn set_dropout(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        self.dropout = rate;
    }

    /// Select the hidden-layer activation (default ReLU, the paper's σ;
    /// the output layer stays log-softmax). Elementwise, so it changes no
    /// communication. Must be set identically on every rank.
    pub fn set_hidden_activation(&mut self, act: Activation) {
        self.act = act;
    }

    /// Choose dense panel broadcasts, the sparsity-aware row exchange,
    /// or the cached tier for the SUMMA stages (see
    /// [`super::CommMode`]): in the sparse modes the stage `D` panel
    /// moves as a per-grid-row gather of the rows its `Aᵀ`/`A` panel
    /// references, and the `S` panel is served column-compacted (same
    /// nnz, so SparseComm words are unchanged). Partial-W stages and
    /// reductions stay dense — every row is needed there — and are never
    /// cached. `Dense` and `SparsityAware` train bit-identically;
    /// `Cached` is bit-identical only at `refresh: 1` (DESIGN.md §13).
    /// Must be set identically on every rank. Always drops any halo
    /// cache, so a mode change (or re-set after mutating state) can
    /// never serve stale panels.
    pub fn set_comm_mode(&mut self, mode: super::CommMode) {
        self.cache.borrow_mut().invalidate();
        self.comm_mode = mode;
    }

    /// Enable or disable communication/computation overlap (default on).
    /// With overlap on, SUMMA panel broadcasts and the column-group Y
    /// reduction run as nonblocking collectives pipelined against
    /// compute; losses, weights, and metered words are bit-identical
    /// either way — only modeled (and wall-clock) time changes. Must be
    /// set identically on every rank.
    pub fn set_overlap(&mut self, overlap: bool) {
        self.overlap = overlap;
    }

    /// Select the optimizer (replicated state; no communication). Resets
    /// any accumulated moments. Must be called identically on every rank,
    /// before training.
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.opt = Optimizer::for_weights(kind, self.cfg.lr, &self.weights);
    }

    /// Replace the replicated weights (e.g. with a trained model for
    /// inference). Must be called identically on every rank.
    pub fn set_weights(&mut self, weights: Vec<Mat>) {
        assert_eq!(weights.len(), self.cfg.layers(), "weight stack length");
        for (l, w) in weights.iter().enumerate() {
            assert_eq!(
                w.shape(),
                (self.cfg.dims[l], self.cfg.dims[l + 1]),
                "weight {l} shape"
            );
        }
        self.weights = weights;
    }

    /// Replicated weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }

    /// Per-rank storage footprint (run after a forward pass). 2D is the
    /// memory-optimal distribution (§I): every term scales as 1/P or
    /// 1/√P. See [`super::StorageReport`].
    pub fn storage_words(&self) -> super::StorageReport {
        let f_max = self.cfg.f_max();
        super::StorageReport {
            adjacency: super::csr_words(&self.at_ij) + super::csr_words(&self.a_ij),
            dense_state: super::mats_words(&self.hs)
                + super::mats_words(&self.zs)
                + self.h_out_row.len()
                + self.p_out_row.len(),
            // Row-all-gathered AG slab (n/Pr x f) dominates transients.
            intermediate: self.my_rows() * f_max,
        }
    }

    /// Assemble the full output embedding matrix on every rank.
    pub fn gather_embeddings(&self, ctx: &Ctx) -> Mat {
        let pc = self.grid.pc;
        let blocks = ctx
            .world
            .allgather_shared(self.h_out_row.clone(), Cat::DenseComm);
        let parts: Vec<Mat> = (0..self.grid.pr)
            .map(|i| (*blocks[i * pc]).clone())
            .collect();
        Mat::vstack(&parts)
    }
}
