//! Split-3D-SpMM parallel GCN training — the paper's §IV-D.
//!
//! The paper derives this algorithm's cost (another `O(P^{1/6})` reduction
//! in words over 2D) but does not implement it, citing high constants,
//! complexity, and the `∛P` memory replication of intermediates. This
//! module implements it, which both verifies the §IV-D analysis
//! empirically (bench `comm_volume`) and exercises the replication
//! behaviour the paper warns about.
//!
//! Geometry (Table V, "Block Split 3D"): `P = q³` ranks on a `q x q x q`
//! mesh; each 2D plane is a *layer*. The adjacency block `A_{ij}` of the
//! `q x q` grid is split along columns into `q` slices, slice `k` living
//! on layer `k` (`n/q x n/q²` per rank). Dense matrices are split along
//! rows across layers (`n/q² x f/q` per rank). Forward per layer `k` runs
//! an independent 2D SUMMA producing an `n/q x f/q` partial sum, which is
//! then reduce-scattered along the *fiber* dimension — the `∛P`-factor
//! intermediate replication the paper highlights — yielding the Block
//! Split 3D result.

use crate::loss::{accuracy_counts, nll_sum};
use crate::model::GcnConfig;
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::problem::Problem;
use cagnet_comm::comm::Communicator;
use cagnet_comm::grid::int_cbrt;
use cagnet_comm::{Cat, Ctx, GatheredRows, Grid3D};
use cagnet_dense::activation::{log_softmax_rows, softmax_rows, Activation};
use cagnet_dense::ops::hadamard_assign;
use cagnet_dense::{matmul_acc_with, matmul_nt_with, matmul_tn_with, Mat};
use cagnet_sparse::partition::block_range;
use cagnet_sparse::spmm::spmm_acc_with;
use cagnet_sparse::Csr;
use std::cell::RefCell;
use std::sync::Arc;

/// Per-rank state of the 3D trainer.
pub struct ThreeDimTrainer {
    cfg: GcnConfig,
    grid: Grid3D,
    /// Communicator over all ranks sharing my grid column `j` (size `q²`),
    /// used for the weight-gradient reduction.
    jgroup: Communicator,
    train_count: usize,
    /// Global row offset of my Block Split rows (block `i`, sub-block
    /// `k`).
    r0: usize,
    /// `Aᵀ(rows i, cols j, col-split k)` — `n/q x ~n/q²`. Shared so the
    /// stage broadcasts move a handle, not a copy of the block.
    at_ijk: Arc<Csr>,
    /// `A(rows i, cols j, col-split k)`.
    a_ijk: Arc<Csr>,
    /// Column-compacted `at_ijk` (columns renumbered to my stage's
    /// needed set) served on the row broadcast in sparsity-aware mode.
    /// Built lazily on the first switch to that mode.
    at_compact: Option<Arc<Csr>>,
    /// Same for `a_ijk` (backward stages).
    a_compact: Option<Arc<Csr>>,
    /// Per SUMMA stage `s`: the sorted distinct nonzero columns of my
    /// fiber's `Aᵀ` panel for stage `s` — the rows of the broadcast `D`
    /// block this rank actually reads (sparsity-aware mode). Derived at
    /// setup from the global adjacency; identical across each row
    /// communicator because its members share the panel.
    needed_fwd: Vec<Vec<usize>>,
    /// Same, from the `A` panels of the backward stages.
    needed_bwd: Vec<Vec<usize>>,
    /// Per stage `s`: rows of the stage's dense `D` block (known to all
    /// ranks from the balanced partition; fingerprinted by gather
    /// receivers under CheckMode).
    stage_rows: Vec<usize>,
    /// Dense block broadcasts vs sparsity-aware row exchange for the
    /// SUMMA stages.
    comm_mode: super::CommMode,
    /// Cached-mode halo cache: one slot per (layer, stage) `D` block
    /// fetch, forward layers first, backward layers after (see
    /// [`super::HaloCache`]; DESIGN.md §13). `S` broadcasts, partial-W
    /// stages, and the fiber/j-group reductions are never cached.
    /// Interior-mutable so the `&self` stage helpers can store refreshed
    /// blocks.
    cache: RefCell<super::HaloCache>,
    /// Issue-ahead pipelining: prefetch the next SUMMA stage's panels
    /// with nonblocking broadcasts while the current stage's SpMM
    /// computes (DESIGN.md §10).
    overlap: bool,
    labels: Arc<Vec<usize>>,
    mask: Arc<Vec<bool>>,
    weights: Vec<Mat>,
    opt: Optimizer,
    act: Activation,
    dropout: f64,
    training: bool,
    epoch_counter: u64,
    drop_masks: Vec<Option<Mat>>,
    /// Stored pre-activation blocks, shared so the output layer's block
    /// enters the row all-gather without a copy.
    zs: Vec<Arc<Mat>>,
    /// Stored activation blocks, shared so whole blocks enter the stage
    /// broadcasts without a copy.
    hs: Vec<Arc<Mat>>,
    /// Output log-probabilities over my Block Split rows, all classes;
    /// shared so `gather_embeddings` moves it without a copy.
    h_out_row: Arc<Mat>,
    /// Output softmax over my Block Split rows (for `G^L`).
    p_out_row: Mat,
}

impl ThreeDimTrainer {
    /// Slice this rank's mesh blocks from the shared problem. World size
    /// must be a perfect cube.
    pub fn setup(ctx: &Ctx, problem: &Problem, cfg: &GcnConfig) -> Self {
        match Self::try_setup(ctx, problem, cfg) {
            Ok(t) => t,
            Err(e) => panic!("3D trainer setup: {e}"),
        }
    }

    /// Fallible constructor: returns [`super::SetupError`] instead of
    /// panicking on an invalid geometry. Validation happens before the
    /// mesh's communicator splits, so on error every rank returns without
    /// touching the collectives.
    pub fn try_setup(
        ctx: &Ctx,
        problem: &Problem,
        cfg: &GcnConfig,
    ) -> Result<Self, super::SetupError> {
        let Some(q) = int_cbrt(ctx.size) else {
            return Err(super::SetupError::Geometry(format!(
                "3D trainer needs a cubic process count, got {}",
                ctx.size
            )));
        };
        let n = problem.vertices();
        if q * q > n {
            return Err(super::SetupError::Geometry(
                "mesh too fine for vertex count".into(),
            ));
        }
        let grid = Grid3D::new(ctx, q);
        let jgroup = ctx.world.split(grid.j as u64);
        let (i, j, k) = (grid.i, grid.j, grid.k);
        // A blocks: rows block i; columns = sub-block k of column block j.
        let (r0b, r1b) = block_range(n, q, i);
        let (c0, c1) = block_range(n, q, j);
        let sub = block_range(c1 - c0, q, k);
        let at_ijk = problem.adj_t.block(r0b, r1b, c0 + sub.0, c0 + sub.1);
        let a_ijk = problem.adj.block(r0b, r1b, c0 + sub.0, c0 + sub.1);
        // Per-stage needed sets and stage block heights for
        // sparsity-aware mode (uncharged setup, like the slicing above).
        let mut needed_fwd = Vec::with_capacity(q);
        let mut needed_bwd = Vec::with_capacity(q);
        let mut stage_rows = Vec::with_capacity(q);
        for s in 0..q {
            let (cs0, cs1) = block_range(n, q, s);
            let ssub = block_range(cs1 - cs0, q, k);
            stage_rows.push(ssub.1 - ssub.0);
            needed_fwd.push(
                problem
                    .adj_t
                    .needed_cols_in(r0b, r1b, cs0 + ssub.0, cs0 + ssub.1),
            );
            needed_bwd.push(
                problem
                    .adj
                    .needed_cols_in(r0b, r1b, cs0 + ssub.0, cs0 + ssub.1),
            );
        }
        // Dense blocks: rows = sub-block k of row block i; cols block j of f.
        let rsub = block_range(r1b - r0b, q, k);
        let r0 = r0b + rsub.0;
        let f0 = problem.features.cols();
        let (fc0, fc1) = block_range(f0, q, j);
        let h0 = problem.features.block(r0, r0b + rsub.1, fc0, fc1);
        Ok(ThreeDimTrainer {
            cfg: cfg.clone(),
            grid,
            jgroup,
            train_count: problem.train_count(),
            r0,
            at_ijk: Arc::new(at_ijk),
            a_ijk: Arc::new(a_ijk),
            at_compact: None,
            a_compact: None,
            needed_fwd,
            needed_bwd,
            stage_rows,
            comm_mode: super::CommMode::Dense,
            cache: RefCell::new(super::HaloCache::default()),
            overlap: true,
            labels: Arc::new(problem.labels.clone()),
            mask: Arc::new(problem.train_mask.clone()),
            opt: {
                let w = cfg.init_weights();
                Optimizer::for_weights(OptimizerKind::Sgd, cfg.lr, &w)
            },
            act: Activation::Relu,
            dropout: 0.0,
            training: false,
            epoch_counter: 0,
            drop_masks: Vec::new(),
            weights: cfg.init_weights(),
            zs: Vec::new(),
            hs: vec![Arc::new(h0)],
            h_out_row: Arc::new(Mat::zeros(0, 0)),
            p_out_row: Mat::zeros(0, 0),
        })
    }

    /// Rows of my Block Split dense pieces (`≈ n/q²`).
    fn my_rows(&self) -> usize {
        self.hs[0].rows()
    }

    /// The sparse block to serve as stage owner on the row broadcast:
    /// the full block in dense mode, the column-compacted one (same nnz,
    /// identical SparseComm words) in the sparse-exchange modes.
    fn bcast_block<'a>(
        &'a self,
        full: &'a Arc<Csr>,
        compact: &'a Option<Arc<Csr>>,
    ) -> &'a Arc<Csr> {
        match (self.comm_mode.sparse_exchange(), compact) {
            (true, Some(c)) => c,
            _ => full,
        }
    }

    /// Cache slot base of layer `l`'s forward Split-3D-SpMM (`q` stage
    /// slots per layer).
    fn fwd_slot_base(&self, l: usize) -> usize {
        l * self.grid.q
    }

    /// Cache slot base of layer `l`'s backward Split-3D-SpMM (after all
    /// forward layers).
    fn bwd_slot_base(&self, l: usize) -> usize {
        (self.cfg.layers() + l) * self.grid.q
    }

    /// Whether the current pass serves `D` blocks from the halo cache
    /// (cached mode, training, non-refresh epoch). Evaluation forwards
    /// always gather fresh.
    fn cached_serving(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && !self.cache.borrow().refreshing()
    }

    /// Whether the current pass must store its gathered blocks into the
    /// halo cache (cached mode, training, refresh epoch).
    fn cached_refreshing(&self) -> bool {
        matches!(self.comm_mode, super::CommMode::Cached { .. })
            && self.training
            && self.cache.borrow().refreshing()
    }

    /// Serve stage `s`'s `D` block without any collective: the owning
    /// mesh row compacts fresh from its resident block (zero words, like
    /// the root of the skipped gather); other rows read the cache,
    /// metering the words the skipped gather would have moved under
    /// [`Cat::CacheHit`].
    fn serve_cached(&self, d_mine: &Arc<Mat>, needed: &[usize], s: usize, slot: usize) -> Arc<Mat> {
        if self.grid.i == s {
            GatheredRows::full(d_mine.clone()).compact(needed)
        } else {
            let row_words = d_mine.cols() as u64 + 1;
            self.grid.col.cache_hit(needed.len() as u64 * row_words);
            self.cache.borrow().get(slot)
        }
    }

    /// Store a freshly gathered compact `D` block on refresh epochs
    /// (blocks owned by other mesh rows only — the owner's block is
    /// always served fresh).
    fn maybe_store(&self, s: usize, slot: usize, block: &Arc<Mat>) {
        if self.cached_refreshing() && self.grid.i != s {
            self.cache.borrow_mut().store(slot, block.clone());
        }
    }

    /// One full Split-3D-SpMM: per-layer 2D SUMMA (`q` stages of paired
    /// row/column exchanges) followed by a fiber reduce-scatter of the
    /// `n/q x f/q` partial sums. In sparsity-aware mode the dense block
    /// moves as a row gather of each receiver's needed rows instead of a
    /// full broadcast; `s_mine` is then the compact panel, so the SpMM's
    /// accumulation order — and its charged cost — matches dense mode
    /// bit for bit.
    fn split3d_spmm(
        &self,
        ctx: &Ctx,
        s_mine: &Arc<Csr>,
        d_mine: &Arc<Mat>,
        needed_tbl: &[Vec<usize>],
        slot_base: usize,
    ) -> Mat {
        let q = self.grid.q;
        let f_cols = d_mine.cols();
        let mut partial = Mat::zeros(self.at_ijk.rows(), f_cols);
        // Issue-ahead pipeline: stage s+1's panels are in flight while
        // stage s's SpMM computes. Arc payloads: the owner's resident
        // block is never deep-copied into the collective.
        let issue = |s: usize| {
            let a_op = self.grid.row.ibcast_shared(
                s,
                (self.grid.j == s).then(|| s_mine.clone()),
                Cat::SparseComm,
            );
            let d_payload = || (self.grid.i == s).then(|| d_mine.clone());
            let dims = Some((self.stage_rows[s], f_cols));
            let d_op = match self.comm_mode {
                super::CommMode::Dense => {
                    super::Fetch::Dense(self.grid.col.ibcast_shared(s, d_payload(), Cat::DenseComm))
                }
                super::CommMode::SparsityAware => super::Fetch::Sparse(self.grid.col.igather_rows(
                    s,
                    d_payload(),
                    &needed_tbl[s],
                    dims,
                    Cat::DenseComm,
                )),
                super::CommMode::Cached { .. } => {
                    if self.cached_serving() {
                        super::Fetch::Cached(self.serve_cached(
                            d_mine,
                            &needed_tbl[s],
                            s,
                            slot_base + s,
                        ))
                    } else if self.training {
                        super::Fetch::Sparse(self.grid.col.igather_rows_refresh(
                            s,
                            d_payload(),
                            &needed_tbl[s],
                            dims,
                            Cat::DenseComm,
                        ))
                    } else {
                        super::Fetch::Sparse(self.grid.col.igather_rows(
                            s,
                            d_payload(),
                            &needed_tbl[s],
                            dims,
                            Cat::DenseComm,
                        ))
                    }
                }
            };
            (a_op, d_op)
        };
        let mut pending = self.overlap.then(|| issue(0));
        for (s, needed) in needed_tbl.iter().enumerate().take(q) {
            let (a_hat, d_hat) = match pending.take() {
                Some((a_op, d_op)) => {
                    if s + 1 < q {
                        pending = Some(issue(s + 1));
                    }
                    (a_op.wait(), d_op.wait(needed))
                }
                None => {
                    let a_hat = self.grid.row.bcast_shared(
                        s,
                        (self.grid.j == s).then(|| s_mine.clone()),
                        Cat::SparseComm,
                    );
                    let d_payload = || (self.grid.i == s).then(|| d_mine.clone());
                    let dims = Some((self.stage_rows[s], f_cols));
                    let d_hat = match self.comm_mode {
                        super::CommMode::Dense => {
                            self.grid.col.bcast_shared(s, d_payload(), Cat::DenseComm)
                        }
                        super::CommMode::SparsityAware => self
                            .grid
                            .col
                            .gather_rows(s, d_payload(), needed, dims, Cat::DenseComm)
                            .compact(needed),
                        super::CommMode::Cached { .. } => {
                            if self.cached_serving() {
                                self.serve_cached(d_mine, needed, s, slot_base + s)
                            } else if self.training {
                                self.grid
                                    .col
                                    .gather_rows_refresh(
                                        s,
                                        d_payload(),
                                        needed,
                                        dims,
                                        Cat::DenseComm,
                                    )
                                    .compact(needed)
                            } else {
                                self.grid
                                    .col
                                    .gather_rows(s, d_payload(), needed, dims, Cat::DenseComm)
                                    .compact(needed)
                            }
                        }
                    };
                    (a_hat, d_hat)
                }
            };
            self.maybe_store(s, slot_base + s, &d_hat);
            ctx.charge_spmm(a_hat.nnz(), a_hat.rows(), d_hat.cols());
            spmm_acc_with(ctx.parallel(), &a_hat, &d_hat, &mut partial);
        }
        // Fiber reduction: the ∛P-replicated partials collapse into the
        // Block Split 3D distribution.
        self.grid
            .fiber
            .reduce_scatter_rows(&partial, Cat::DenseComm)
    }

    /// Partial Split-3D-SpMM against the replicated `W` (within-layer row
    /// broadcasts only, §IV-D.1). These stages stay dense broadcasts in
    /// every [`super::CommMode`]: the stage GEMM reads *all* rows of the
    /// broadcast `T` block, so a row gather would request every row and
    /// only add the per-row index words.
    fn partial_w(
        &self,
        ctx: &Ctx,
        t_mine: &Arc<Mat>,
        w: &Mat,
        f_in: usize,
        f_out: usize,
        transpose_w: bool,
    ) -> Mat {
        let q = self.grid.q;
        let (oc0, oc1) = block_range(f_out, q, self.grid.j);
        let mut out = Mat::zeros(self.my_rows(), oc1 - oc0);
        // Issue-ahead pipeline over the q broadcast stages, as in
        // split3d_spmm. Arc payloads: my own T block is never
        // deep-copied into the collective.
        let issue = |s: usize| {
            self.grid.row.ibcast_shared(
                s,
                (self.grid.j == s).then(|| t_mine.clone()),
                Cat::DenseComm,
            )
        };
        let mut pending = self.overlap.then(|| issue(0));
        for s in 0..q {
            let t_hat = match pending.take() {
                Some(op) => {
                    if s + 1 < q {
                        pending = Some(issue(s + 1));
                    }
                    op.wait()
                }
                None => self.grid.row.bcast_shared(
                    s,
                    (self.grid.j == s).then(|| t_mine.clone()),
                    Cat::DenseComm,
                ),
            };
            let (ic0, ic1) = block_range(f_in, q, s);
            debug_assert_eq!(ic1 - ic0, t_hat.cols(), "stage width mismatch");
            if ic1 == ic0 || oc1 == oc0 {
                continue;
            }
            ctx.charge_gemm(t_hat.rows(), ic1 - ic0, oc1 - oc0);
            if transpose_w {
                let w_slice = w.block(oc0, oc1, ic0, ic1);
                let add = matmul_nt_with(ctx.parallel(), &t_hat, &w_slice);
                cagnet_dense::ops::add_assign(&mut out, &add);
            } else {
                let w_slice = w.block(ic0, ic1, oc0, oc1);
                matmul_acc_with(ctx.parallel(), &t_hat, &w_slice, &mut out);
            }
        }
        out
    }

    /// Forward pass; returns the global mean masked NLL loss.
    pub fn forward(&mut self, ctx: &Ctx) -> f64 {
        let l_total = self.cfg.layers();
        let q = self.grid.q;
        self.zs.clear();
        self.drop_masks = vec![None; l_total];
        self.hs.truncate(1);
        for l in 0..l_total {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            let t = Arc::new(self.split3d_spmm(
                ctx,
                self.bcast_block(&self.at_ijk, &self.at_compact),
                &self.hs[l],
                &self.needed_fwd,
                self.fwd_slot_base(l),
            ));
            let z = Arc::new(self.partial_w(ctx, &t, &self.weights[l], f_in, f_out, false));
            let h = if l + 1 == l_total {
                // log_softmax: within-layer row all-gather assembles full
                // class rows; no cross-layer communication (§IV-D.2).
                let parts = self.grid.row.allgather_shared(z.clone(), Cat::DenseComm);
                let z_row = Mat::hstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
                ctx.charge_elementwise(2 * z_row.len());
                self.h_out_row = Arc::new(log_softmax_rows(&z_row));
                self.p_out_row = softmax_rows(&z_row);
                let (oc0, oc1) = block_range(f_out, q, self.grid.j);
                self.h_out_row.block(0, z_row.rows(), oc0, oc1)
            } else {
                ctx.charge_elementwise(z.len());
                let mut h = self.act.apply(&z);
                let (dc0, dc1) = block_range(f_out, self.grid.q, self.grid.j);
                self.apply_dropout(l, self.r0, f_out, dc0, dc1, &mut h);
                h
            };
            self.zs.push(z);
            self.hs.push(Arc::new(h));
        }
        let local = if self.grid.j == 0 {
            nll_sum(&self.h_out_row, &self.labels, &self.mask, self.r0)
        } else {
            0.0
        };
        ctx.world.allreduce_scalar(local, Cat::DenseComm) / self.train_count as f64
    }

    /// Output-layer gradient block from the stored row softmax.
    fn output_gradient_block(&self) -> Mat {
        let q = self.grid.q;
        let f_out = self.cfg.f_out();
        let (oc0, oc1) = block_range(f_out, q, self.grid.j);
        let rows = self.my_rows();
        let scale = 1.0 / self.train_count as f64;
        let mut g = Mat::zeros(rows, oc1 - oc0);
        for r in 0..rows {
            let gv = self.r0 + r;
            if !self.mask[gv] {
                continue;
            }
            let out = g.row_mut(r);
            for (cl, c) in (oc0..oc1).enumerate() {
                let mut v = self.p_out_row[(r, c)] * scale;
                if c == self.labels[gv] {
                    v -= scale;
                }
                out[cl] = v;
            }
        }
        g
    }

    /// Backward pass + replicated gradient-descent step.
    pub fn backward(&mut self, ctx: &Ctx) {
        let l_total = self.cfg.layers();
        assert_eq!(self.zs.len(), l_total, "forward must run before backward");
        let mut g = Arc::new(self.output_gradient_block());
        ctx.charge_elementwise(g.len());
        for l in (0..l_total).rev() {
            let f_in = self.cfg.dims[l];
            let f_out = self.cfg.dims[l + 1];
            // A G via full Split-3D-SpMM; saved and reused (§IV-D.4).
            let ag = self.split3d_spmm(
                ctx,
                self.bcast_block(&self.a_ijk, &self.a_compact),
                &g,
                &self.needed_bwd,
                self.bwd_slot_base(l),
            );
            let parts = self.grid.row.allgather_shared(Arc::new(ag), Cat::DenseComm);
            let ag_row = Mat::hstack(&parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            debug_assert_eq!(ag_row.shape(), (self.my_rows(), f_out));
            // Y = (H^{l-1})ᵀ A G: local slab product, reduction over all
            // ranks sharing grid column j, then row replication.
            ctx.charge_gemm(self.hs[l].cols(), self.my_rows(), f_out);
            let y_local = matmul_tn_with(ctx.parallel(), &self.hs[l], &ag_row);
            // With overlap on, the j-group Y reduction is in flight while
            // the G^{l-1} GEMM computes (both read only ag_row and
            // replicated state). The dropout mask is taken up front so
            // no &mut self is needed while the op borrows the jgroup.
            let drop_mask = (l > 0).then(|| self.drop_masks[l - 1].take()).flatten();
            let y_op = self
                .overlap
                .then(|| self.jgroup.iallreduce_mat(&y_local, Cat::DenseComm));
            if l > 0 {
                let (jc0, jc1) = block_range(f_in, self.grid.q, self.grid.j);
                let w_slice = self.weights[l].block(jc0, jc1, 0, f_out);
                ctx.charge_gemm(self.my_rows(), f_out, jc1 - jc0);
                let mut next_g = matmul_nt_with(ctx.parallel(), &ag_row, &w_slice);
                hadamard_assign(&mut next_g, &self.act.prime(&self.zs[l - 1]));
                if let Some(mask) = drop_mask {
                    hadamard_assign(&mut next_g, &mask);
                }
                ctx.charge_elementwise(next_g.len());
                g = Arc::new(next_g);
            }
            let y_j = match y_op {
                Some(op) => op.wait(),
                None => self.jgroup.allreduce_mat(&y_local, Cat::DenseComm),
            };
            let y_parts = self.grid.row.allgather(y_j, Cat::DenseComm);
            let y = Mat::vstack(&y_parts.iter().map(|p| (**p).clone()).collect::<Vec<_>>());
            debug_assert_eq!(y.shape(), (f_in, f_out));
            self.opt.step(l, &mut self.weights[l], &y);
            ctx.charge_elementwise(y.len());
        }
    }

    /// One epoch; returns the pre-update loss.
    pub fn epoch(&mut self, ctx: &Ctx) -> f64 {
        self.training = true;
        self.epoch_counter += 1;
        if let Some(refresh) = self.comm_mode.cached_refresh() {
            self.cache
                .borrow_mut()
                .begin_epoch(refresh, self.epoch_counter as usize);
        }
        let loss = self.forward(ctx);
        self.backward(ctx);
        self.training = false;
        loss
    }

    /// Global training accuracy of the current model.
    pub fn accuracy(&mut self, ctx: &Ctx) -> f64 {
        let _ = self.forward(ctx);
        let (c, t) = if self.grid.j == 0 {
            accuracy_counts(&self.h_out_row, &self.labels, &self.mask, self.r0)
        } else {
            (0, 0)
        };
        super::global_accuracy(ctx, c, t)
    }

    fn apply_dropout(
        &mut self,
        layer: usize,
        row_offset: usize,
        f_total: usize,
        c0: usize,
        c1: usize,
        h: &mut Mat,
    ) {
        if self.training && self.dropout > 0.0 {
            let mask = crate::dropout::mask_block(
                crate::dropout::DropoutKey {
                    base_seed: self.cfg.seed,
                    epoch: self.epoch_counter,
                    layer,
                },
                self.dropout,
                row_offset,
                h.rows(),
                f_total,
                c0,
                c1,
            );
            cagnet_dense::ops::hadamard_assign(h, &mask);
            self.drop_masks[layer] = Some(mask);
        }
    }

    /// Set the hidden-layer dropout rate (inverted dropout; a fresh
    /// deterministic mask per epoch, identical across layouts and ranks —
    /// see [`crate::dropout`]). 0 disables it; evaluation forwards never
    /// apply it.
    pub fn set_dropout(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        self.dropout = rate;
    }

    /// Select the hidden-layer activation (default ReLU, the paper's σ;
    /// the output layer stays log-softmax). Elementwise, so it changes no
    /// communication. Must be set identically on every rank.
    pub fn set_hidden_activation(&mut self, act: Activation) {
        self.act = act;
    }

    /// Enable or disable communication/computation overlap (default on).
    /// With overlap on, SUMMA panel broadcasts and the j-group Y
    /// reduction run as nonblocking collectives pipelined against
    /// compute; losses, weights, and metered words are bit-identical
    /// either way — only modeled (and wall-clock) time changes. Must be
    /// set identically on every rank.
    pub fn set_overlap(&mut self, overlap: bool) {
        self.overlap = overlap;
    }

    /// Select how Split-3D-SpMM stages move the dense operand. Under
    /// [`CommMode::SparsityAware`](super::CommMode::SparsityAware) each
    /// stage's dense block broadcast becomes a `gather_rows` of only the
    /// rows the receivers' sparse blocks touch, and the stage owner ships
    /// the column-compacted sparse block (same nnz — identical SparseComm
    /// words). The trailing weight product (`partial_w`) stays dense in
    /// every mode: the GEMM reads all rows of the broadcast T block, so a
    /// gather would add index words for zero savings. `Dense` and
    /// `SparsityAware` train bit-identically; `Cached` is bit-identical
    /// only at `refresh: 1` (DESIGN.md §13). Must be set identically on
    /// every rank. Always drops any halo cache, so a mode change (or
    /// re-set after mutating state) can never serve stale blocks.
    pub fn set_comm_mode(&mut self, mode: super::CommMode) {
        self.cache.borrow_mut().invalidate();
        self.comm_mode = mode;
        if mode.sparse_exchange() {
            if self.at_compact.is_none() {
                self.at_compact = Some(Arc::new(
                    self.at_ijk.compact_cols(&self.needed_fwd[self.grid.j]),
                ));
            }
            if self.a_compact.is_none() {
                self.a_compact = Some(Arc::new(
                    self.a_ijk.compact_cols(&self.needed_bwd[self.grid.j]),
                ));
            }
        }
    }

    /// Select the optimizer (replicated state; no communication). Resets
    /// any accumulated moments. Must be called identically on every rank,
    /// before training.
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.opt = Optimizer::for_weights(kind, self.cfg.lr, &self.weights);
    }

    /// Replace the replicated weights (e.g. with a trained model for
    /// inference). Must be called identically on every rank.
    pub fn set_weights(&mut self, weights: Vec<Mat>) {
        assert_eq!(weights.len(), self.cfg.layers(), "weight stack length");
        for (l, w) in weights.iter().enumerate() {
            assert_eq!(
                w.shape(),
                (self.cfg.dims[l], self.cfg.dims[l + 1]),
                "weight {l} shape"
            );
        }
        self.weights = weights;
    }

    /// Replicated weights.
    pub fn weights(&self) -> &[Mat] {
        &self.weights
    }

    /// Per-rank storage footprint (run after a forward pass). The
    /// intermediate term is the §IV-D replication: each SUMMA partial is
    /// `n/q x f/q` — `q = ∛P` times larger than the rank's own
    /// `n/q² x f/q` state blocks.
    pub fn storage_words(&self) -> super::StorageReport {
        let f_max = self.cfg.f_max();
        let q = self.grid.q;
        super::StorageReport {
            adjacency: super::csr_words(&self.at_ijk)
                + super::csr_words(&self.a_ijk)
                + self.at_compact.as_ref().map_or(0, |c| super::csr_words(c))
                + self.a_compact.as_ref().map_or(0, |c| super::csr_words(c)),
            dense_state: super::mats_words(&self.hs)
                + super::mats_words(&self.zs)
                + self.h_out_row.len()
                + self.p_out_row.len(),
            // Pre-fiber-reduction partial: n/q rows x ~f/q cols.
            intermediate: self.at_ijk.rows() * f_max.div_ceil(q) + self.my_rows() * f_max,
        }
    }

    /// Assemble the full output embedding matrix on every rank.
    pub fn gather_embeddings(&self, ctx: &Ctx) -> Mat {
        let q = self.grid.q;
        let blocks = ctx
            .world
            .allgather_shared(self.h_out_row.clone(), Cat::DenseComm);
        // Global row order: row block i, then sub-block k; contributed by
        // rank (i, j=0, k) = k·q² + i·q.
        let mut parts = Vec::with_capacity(q * q);
        for i in 0..q {
            for k in 0..q {
                parts.push((*blocks[k * q * q + i * q]).clone());
            }
        }
        Mat::vstack(&parts)
    }
}
