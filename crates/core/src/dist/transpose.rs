//! Distributed matrix transposition — the communication step of the
//! paper's §IV-A.7 transposing 1D variant.
//!
//! Given a block-row-distributed sparse matrix (rank `i` holds rows
//! `block_i`), produce the block-row distribution of its transpose: every
//! rank slices its block by destination columns and all-to-alls the
//! pieces, then each rank transposes and merges what it received. Charged
//! under [`Cat::SparseComm`] for the exchange and [`Cat::Transpose`] for
//! the local work — the paper prices the whole step at
//! `α·P² + β·nnz(A)/P` per epoch pair and notes it happens "only twice
//! per epoch (once after forward propagation and once after
//! backpropagation), not at every layer".

use cagnet_comm::{Cat, Ctx};
use cagnet_sparse::partition::block_ranges;
use cagnet_sparse::{Coo, Csr};

/// Transpose a block-row-distributed sparse matrix.
///
/// `my_block` is this rank's rows (`n_i x n_total`); `row_offset` is the
/// global index of its first row. Returns this rank's block row of the
/// transpose (`n'_i x n_total_rows_of_original` where the transpose's
/// rows are the original's columns, distributed by the same balanced
/// block ranges).
pub fn transpose_block_rows(
    ctx: &Ctx,
    my_block: &Csr,
    row_offset: usize,
    n_rows_total: usize,
) -> Csr {
    let p = ctx.size;
    let n_cols_total = my_block.cols();
    // Destination rank owns transpose-rows = original columns.
    let dest_ranges = block_ranges(n_cols_total, p);
    // Slice my block by destination column ranges; each piece goes to one
    // rank. Local slicing is transpose-flavored work.
    ctx.charge_transpose(my_block.nnz());
    let pieces: Vec<Csr> = dest_ranges
        .iter()
        .map(|&(c0, c1)| my_block.block(0, my_block.rows(), c0, c1))
        .collect();
    let received = ctx.world.alltoall(pieces, Cat::SparseComm);
    // Received piece from rank j: its rows are rank j's original rows,
    // its columns are my transpose-rows (local ids). Transpose each piece
    // and merge into my block row of Aᵀ.
    let my_dest = dest_ranges[ctx.rank];
    let my_rows_t = my_dest.1 - my_dest.0;
    let src_ranges = block_ranges(n_rows_total, p);
    let mut coo = Coo::new(my_rows_t, n_rows_total);
    for (j, piece) in received.iter().enumerate() {
        ctx.charge_transpose(piece.nnz());
        let (s0, _) = src_ranges[j];
        for r in 0..piece.rows() {
            for (c, v) in piece.row_entries(r) {
                // Original entry (s0 + r, my_dest.0 + c) becomes
                // transpose entry (c, s0 + r) in my local block.
                coo.push(c, s0 + r, v);
            }
        }
    }
    let _ = row_offset; // the offset is implied by rank, kept for clarity
    Csr::from_coo(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_comm::{Cluster, TimelineReport};
    use cagnet_dense::Mat;
    use cagnet_sparse::generate::erdos_renyi;
    use cagnet_sparse::partition::block_range;

    fn run_transpose(n: usize, p: usize, seed: u64) -> (Csr, Vec<(Csr, TimelineReport)>) {
        let a = erdos_renyi(n, 3.0, seed);
        let a2 = a.clone();
        let parts = Cluster::new(p).run(move |ctx| {
            let (r0, r1) = block_range(n, p, ctx.rank);
            let my = a2.block(r0, r1, 0, n);
            transpose_block_rows(ctx, &my, r0, n)
        });
        (a, parts)
    }

    #[test]
    fn distributed_transpose_matches_local() {
        for (n, p) in [(20usize, 4usize), (17, 3), (30, 5), (8, 8), (12, 1)] {
            let (a, parts) = run_transpose(n, p, 7);
            let expect = a.transpose();
            let dense_parts: Vec<Mat> = parts.iter().map(|(b, _)| b.to_dense()).collect();
            let got = Mat::vstack(&dense_parts);
            assert!(
                got.approx_eq(&expect.to_dense(), 0.0),
                "transpose mismatch at n={n}, p={p}"
            );
        }
    }

    #[test]
    fn transpose_traffic_is_sparse_and_bounded() {
        let n = 64;
        let p = 4;
        let (a, parts) = run_transpose(n, p, 9);
        for (_, rep) in &parts {
            // All exchange traffic is sparse-category.
            assert_eq!(rep.words(cagnet_comm::Cat::DenseComm), 0);
            // Each rank receives at most the whole matrix: 2 words/nnz.
            assert!(rep.words(cagnet_comm::Cat::SparseComm) <= 2 * a.nnz() as u64);
        }
        // Aggregate received words ≈ 2·nnz (off-diagonal pieces move once).
        let total: u64 = parts
            .iter()
            .map(|(_, r)| r.words(cagnet_comm::Cat::SparseComm))
            .sum();
        assert!(total <= 2 * a.nnz() as u64);
        assert!(total > 0);
    }

    #[test]
    fn double_transpose_roundtrips() {
        let n = 25;
        let p = 3;
        let a = erdos_renyi(n, 4.0, 11);
        let a2 = a.clone();
        let parts = Cluster::new(p).run(move |ctx| {
            let (r0, r1) = block_range(n, p, ctx.rank);
            let my = a2.block(r0, r1, 0, n);
            let t = transpose_block_rows(ctx, &my, r0, n);
            let (t0, _) = block_range(n, p, ctx.rank);
            transpose_block_rows(ctx, &t, t0, n)
        });
        let dense_parts: Vec<Mat> = parts.iter().map(|(b, _)| b.to_dense()).collect();
        assert!(Mat::vstack(&dense_parts).approx_eq(&a.to_dense(), 0.0));
    }
}
