//! Property-based tests of the simulated collectives: semantic identities
//! (reduce-scatter ∘ all-gather == all-reduce), exact cost-formula
//! charging, and word-counter consistency for arbitrary group sizes and
//! payload shapes.

use cagnet_comm::{Cat, Cluster, CostModel};
use cagnet_dense::Mat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn reduce_scatter_then_allgather_equals_allreduce(
        p in 1usize..7,
        rows in 1usize..12,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let results = Cluster::new(p).run(|ctx| {
            let m = Mat::from_fn(rows, cols, |i, j| {
                ((ctx.rank * 31 + i * 7 + j) as f64 + seed as f64).sin()
            });
            let direct = ctx.world.allreduce_mat(&m, Cat::DenseComm);
            let scattered = ctx.world.reduce_scatter_rows(&m, Cat::DenseComm);
            let parts = ctx.world.allgather(scattered, Cat::DenseComm);
            let composed = Mat::vstack(
                &parts.iter().map(|b| (**b).clone()).collect::<Vec<_>>(),
            );
            (direct, composed)
        });
        for (rank, ((direct, composed), _)) in results.iter().enumerate() {
            prop_assert!(
                direct.approx_eq(composed, 1e-12),
                "rank {rank}: composition mismatch"
            );
        }
    }

    #[test]
    fn bcast_cost_matches_model_exactly(
        p in 2usize..8,
        rows in 1usize..16,
        cols in 1usize..8,
        root in 0usize..8,
    ) {
        let root = root % p;
        let model = CostModel::summit_like();
        let expect = model.bcast_time(p, (rows * cols) as u64);
        let results = Cluster::new(p).with_model(model).run(|ctx| {
            let data = (ctx.rank == root).then(|| Mat::zeros(rows, cols));
            let _ = ctx.world.bcast(root, data, Cat::DenseComm);
            ctx.clock()
        });
        for (clock, _) in results {
            prop_assert!((clock - expect).abs() < 1e-15, "clock {clock} vs {expect}");
        }
    }

    #[test]
    fn allreduce_cost_and_words_match_model(
        p in 2usize..8,
        rows in 1usize..12,
        cols in 1usize..6,
    ) {
        let model = CostModel::summit_like();
        let w = (rows * cols) as u64;
        let expect_t = model.allreduce_time(p, w);
        let expect_w = 2 * w * (p as u64 - 1) / p as u64;
        let results = Cluster::new(p).with_model(model).run(|ctx| {
            let m = Mat::filled(rows, cols, ctx.rank as f64);
            let _ = ctx.world.allreduce_mat(&m, Cat::DenseComm);
            ctx.report()
        });
        for (rep, _) in results {
            prop_assert!((rep.clock - expect_t).abs() < 1e-15);
            prop_assert_eq!(rep.words(Cat::DenseComm), expect_w);
        }
    }

    #[test]
    fn allgather_preserves_all_contributions(p in 1usize..8, len in 1usize..20) {
        let results = Cluster::new(p).run(|ctx| {
            let data: Vec<f64> = (0..len).map(|i| (ctx.rank * 1000 + i) as f64).collect();
            let got = ctx.world.allgather(data, Cat::DenseComm);
            got.iter().map(|v| (**v).clone()).collect::<Vec<Vec<f64>>>()
        });
        for (got, _) in results {
            prop_assert_eq!(got.len(), p);
            for (src, v) in got.iter().enumerate() {
                for (i, &x) in v.iter().enumerate() {
                    prop_assert_eq!(x, (src * 1000 + i) as f64);
                }
            }
        }
    }

    #[test]
    fn split_then_collectives_stay_isolated(
        p1 in 1usize..4,
        p2 in 1usize..4,
        val in -100.0f64..100.0,
    ) {
        // Two color groups run different numbers of collectives without
        // interfering.
        let p = p1 + p2;
        let results = Cluster::new(p).run(|ctx| {
            let color = u64::from(ctx.rank >= p1);
            let sub = ctx.world.split(color);
            let mut acc = 0.0;
            let rounds = if color == 0 { 2 } else { 3 };
            for _ in 0..rounds {
                acc = sub.allreduce_scalar(val, Cat::DenseComm);
            }
            (color, acc)
        });
        for (rank, ((color, acc), _)) in results.iter().enumerate() {
            let group = if *color == 0 { p1 } else { p2 };
            prop_assert!(
                (acc - val * group as f64).abs() < 1e-9,
                "rank {rank}: {acc} vs {}",
                val * group as f64
            );
        }
    }

    #[test]
    fn bsp_clock_is_max_plus_cost(p in 2usize..6, work in 0.0f64..10.0) {
        let model = CostModel::summit_like();
        let barrier = model.barrier_time(p);
        let results = Cluster::new(p).with_model(model).run(|ctx| {
            // Rank r does r * work seconds of local compute.
            ctx.charge(Cat::Misc, ctx.rank as f64 * work);
            ctx.world.barrier();
            ctx.clock()
        });
        let expect = (p - 1) as f64 * work + barrier;
        for (clock, _) in results {
            prop_assert!((clock - expect).abs() < 1e-12);
        }
    }
}
