//! Execution-trace invariants: recorded events tile each rank's modeled
//! clock exactly — no gaps, no overlaps, durations summing to the final
//! clock.

use cagnet_comm::trace::to_chrome_json;
use cagnet_comm::{Cat, Cluster};
use cagnet_dense::Mat;

#[test]
fn events_tile_the_clock_exactly() {
    let results = Cluster::new(3).run(|ctx| {
        ctx.enable_tracing();
        // A mix of compute, collectives, and imbalance-induced waits.
        ctx.charge(Cat::Spmm, 1e-3 * (ctx.rank + 1) as f64);
        ctx.world.barrier();
        let m = Mat::filled(16, 16, ctx.rank as f64);
        let _ = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        ctx.charge_gemm(64, 64, 64);
        ctx.world.barrier();
        (ctx.take_trace(), ctx.clock())
    });
    for (rank, ((trace, clock), _)) in results.iter().enumerate() {
        assert!(!trace.is_empty());
        // Events are contiguous and ordered.
        let mut cursor = 0.0f64;
        for e in trace {
            assert!(
                (e.start - cursor).abs() < 1e-12,
                "rank {rank}: gap/overlap at {} (cursor {cursor})",
                e.start
            );
            assert!(e.end >= e.start);
            cursor = e.end;
        }
        assert!(
            (cursor - clock).abs() < 1e-12,
            "rank {rank}: trace ends at {cursor}, clock {clock}"
        );
        // Durations sum to the clock.
        let total: f64 = trace.iter().map(|e| e.duration()).sum();
        assert!((total - clock).abs() < 1e-12);
    }
    // The slower ranks wait less: rank 2 (most compute) has the least
    // wait time.
    let wait = |idx: usize| -> f64 {
        results[idx]
            .0
             .0
            .iter()
            .filter(|e| e.name == "wait")
            .map(|e| e.duration())
            .sum()
    };
    assert!(wait(0) > wait(2), "rank 0 should wait more than rank 2");
}

#[test]
fn chrome_export_of_real_run_is_valid_json_shape() {
    let results = Cluster::new(2).run(|ctx| {
        ctx.enable_tracing();
        ctx.charge(Cat::Misc, 1e-4);
        ctx.world.barrier();
        ctx.take_trace()
    });
    let traces: Vec<_> = results.into_iter().map(|(t, _)| t).collect();
    let json = to_chrome_json(&traces);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.matches("\"tid\":0").count() >= 1);
    assert!(json.matches("\"tid\":1").count() >= 1);
    // Balanced braces (cheap well-formedness proxy).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn tracing_off_by_default_and_resettable() {
    let results = Cluster::new(1).run(|ctx| {
        ctx.charge(Cat::Spmm, 1.0);
        let empty = ctx.take_trace();
        ctx.enable_tracing();
        ctx.charge(Cat::Spmm, 1.0);
        let one = ctx.take_trace();
        // take_trace disables until re-enabled.
        ctx.charge(Cat::Spmm, 1.0);
        let again = ctx.take_trace();
        (empty.len(), one.len(), again.len())
    });
    let (e, o, a) = results[0].0;
    assert_eq!(e, 0);
    assert_eq!(o, 1);
    assert_eq!(a, 0);
}
