//! CheckMode must be free: on matching collectives the checked runtime
//! publishes and verifies fingerprints but charges nothing, so results,
//! cost totals, and traces are bit-identical with the check on and off.

use cagnet_comm::trace::TraceEvent;
use cagnet_comm::{Cat, CheckMode, Cluster, TimelineReport};
use cagnet_dense::Mat;

/// A workload touching every collective (and a sub-communicator); returns
/// a result checksum plus the rank's trace.
fn workload(p: usize, check: CheckMode) -> Vec<((f64, Vec<TraceEvent>), TimelineReport)> {
    Cluster::new(p).with_check(check).run(move |ctx| {
        ctx.enable_tracing();
        let r = ctx.rank;
        let mut sum = 0.0;

        let b = ctx
            .world
            .bcast(0, (r == 0).then(|| vec![1.0, 2.0]), Cat::DenseComm);
        sum += b.iter().sum::<f64>();

        let m = Mat::from_fn(2 * p, 3, |i, j| (r + i * 5 + j) as f64);
        sum += ctx.world.allreduce_mat(&m, Cat::DenseComm).as_slice()[0];
        sum += ctx.world.allreduce_scalar(r as f64, Cat::DenseComm);
        sum += ctx.world.reduce_scatter_rows(&m, Cat::DenseComm).as_slice()[0];

        let parts = ctx.world.allgather(vec![r as f64], Cat::SparseComm);
        sum += parts.iter().map(|v| v[0]).sum::<f64>();

        let swapped = ctx
            .world
            .alltoall((0..p).map(|j| (r * p + j) as f64).collect(), Cat::DenseComm);
        sum += swapped.iter().sum::<f64>();

        if let Some(all) = ctx.world.gather(0, r as f64, Cat::DenseComm) {
            sum += all.iter().map(|v| **v).sum::<f64>();
        }
        sum += ctx.world.scatter(
            0,
            (r == 0).then(|| (0..p).map(|j| j as f64).collect::<Vec<_>>()),
            Cat::DenseComm,
        );

        if p > 1 {
            let partner = r ^ 1;
            let got = ctx
                .world
                .sendrecv(Some(partner), Some(vec![r as f64]), Cat::DenseComm);
            if let Some(v) = got {
                sum += v[0];
            }
        }

        let sub = ctx.world.split((r % 2) as u64);
        sub.barrier();
        sum += sub.allreduce_scalar(1.0, Cat::DenseComm);
        ctx.world.barrier();

        (sum, ctx.take_trace())
    })
}

#[test]
fn check_mode_is_a_bit_identical_noop() {
    for p in [1usize, 2, 4, 8] {
        let off = workload(p, CheckMode::Off);
        let on = workload(p, CheckMode::On);
        assert_eq!(off.len(), on.len());
        for (rank, (((s_off, t_off), rep_off), ((s_on, t_on), rep_on))) in
            off.iter().zip(&on).enumerate()
        {
            assert_eq!(
                s_off.to_bits(),
                s_on.to_bits(),
                "P={p} rank {rank}: results differ"
            );
            assert_eq!(rep_off, rep_on, "P={p} rank {rank}: cost totals differ");
            assert_eq!(t_off, t_on, "P={p} rank {rank}: traces differ");
        }
    }
}

#[test]
fn check_mode_adds_no_modeled_cost() {
    for p in [2usize, 4] {
        for check in [CheckMode::Off, CheckMode::On] {
            let reports = workload(p, check);
            let clock0 = reports[0].1.clock;
            for (rank, (_, rep)) in reports.iter().enumerate() {
                assert_eq!(
                    rep.clock.to_bits(),
                    clock0.to_bits(),
                    "P={p} {check:?} rank {rank}: BSP clocks diverge"
                );
            }
        }
    }
}
