//! Socket-transport behaviour under faults: worker death mid-collective
//! must surface as a named-rank error (not a hang), hostile frames must
//! be rejected before any allocation, and connecting to a dead hub must
//! fail promptly instead of blocking forever.
//!
//! Every test here forces `TransportKind::Socket` explicitly, so the
//! suite exercises real worker processes regardless of
//! `CAGNET_TRANSPORT`.

#![cfg(unix)]

use std::time::{Duration, Instant};

use cagnet_comm::{Cat, Cluster, TransportKind};

/// Sanity: a collective round-trips over real processes with the same
/// value the shared backend computes.
#[test]
fn socket_allreduce_matches_shared() {
    let run = |transport| {
        Cluster::new(3).with_transport(transport).run_wire(|ctx| {
            ctx.world
                .allreduce_scalar(ctx.rank as f64 + 1.0, Cat::DenseComm)
        })
    };
    let shared = run(TransportKind::Shared);
    let socket = run(TransportKind::Socket);
    for ((s, srep), (k, krep)) in shared.iter().zip(socket.iter()) {
        assert_eq!(s, k);
        assert_eq!(s, &6.0);
        assert_eq!(srep.clock.to_bits(), krep.clock.to_bits());
    }
}

/// Derived (split) communicators must rendezvous correctly across
/// processes: distinct comm ids, correct sub-group membership.
#[test]
fn socket_split_communicators_work() {
    let results = Cluster::new(4)
        .with_transport(TransportKind::Socket)
        .run_wire(|ctx| {
            let color = (ctx.rank % 2) as u64;
            let sub = ctx.world.split(color);
            sub.allreduce_scalar(ctx.rank as f64, Cat::DenseComm)
        });
    // Evens sum to 0 + 2, odds to 1 + 3.
    let expect = [2.0, 4.0, 2.0, 4.0];
    for (rank, (sum, _)) in results.iter().enumerate() {
        assert_eq!(*sum, expect[rank], "rank {rank}");
    }
}

/// A worker killed mid-collective must take the run down with an error
/// naming the dead rank — peers must not hang until the collective
/// timeout.
#[test]
fn killed_worker_fails_run_with_named_rank() {
    let start = Instant::now();
    let result = std::panic::catch_unwind(|| {
        Cluster::new(3)
            .with_transport(TransportKind::Socket)
            // Generous timeout: the failure must come from death
            // detection, not from this expiring.
            .with_timeout(Duration::from_secs(60))
            .run_wire(|ctx| {
                if ctx.rank == 1 {
                    // Simulate a crashed worker process. This closure
                    // only runs rank 1 inside a spawned worker, so the
                    // launcher (and the test harness) survive.
                    std::process::exit(7);
                }
                ctx.world.barrier();
            })
    });
    let err = result.expect_err("run must fail when a worker dies");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "(non-string panic)".to_string());
    assert!(
        msg.contains("rank 1"),
        "error must name the dead rank: {msg}"
    );
    assert!(
        msg.contains("died"),
        "error must say the worker died: {msg}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "death must be detected well before the collective timeout"
    );
}

/// Connecting to a socket nobody is listening on must fail with a clear
/// error once the retry budget is spent — the fallback path a worker
/// takes when its launcher is already gone.
#[test]
fn connect_to_dead_hub_fails_promptly() {
    let path = std::env::temp_dir().join("cagnet-test-dead-hub.sock");
    let _ = std::fs::remove_file(&path);
    let start = Instant::now();
    let err = cagnet_comm::connect_with_retry(&path, Duration::from_millis(100))
        .expect_err("no listener — the connect must fail");
    assert!(err.contains("could not connect"), "got: {err}");
    assert!(start.elapsed() < Duration::from_secs(5));
}

/// CheckMode fingerprints piggyback on deposit frames: with checking on
/// and every rank agreeing, a socket run succeeds and produces the same
/// bits as an unchecked one.
#[test]
fn checkmode_piggybacks_cleanly_over_socket() {
    let run = |check| {
        Cluster::new(2)
            .with_transport(TransportKind::Socket)
            .with_check(check)
            .run_wire(|ctx| ctx.world.allreduce_scalar(ctx.rank as f64, Cat::DenseComm))
    };
    let unchecked = run(cagnet_comm::CheckMode::Off);
    let checked = run(cagnet_comm::CheckMode::On);
    assert_eq!(unchecked, checked, "checking must never change results");
}

/// A collective mismatch (different broadcast roots) must be caught by
/// the fingerprint verifier with checking on — the fingerprints crossed
/// the wire on the deposit frames.
#[test]
fn checkmode_catches_mismatch_over_socket() {
    let result = std::panic::catch_unwind(|| {
        Cluster::new(2)
            .with_transport(TransportKind::Socket)
            .with_check(cagnet_comm::CheckMode::On)
            .run_wire(|ctx| {
                // Each rank names itself root: same collective, same
                // slot, conflicting fingerprints.
                let root = ctx.rank;
                let data = Some(vec![ctx.rank as f64]);
                ctx.world.bcast(root, data, Cat::DenseComm).len()
            })
    });
    let err = result.expect_err("mismatched roots must fail the checked run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "(non-string panic)".to_string());
    assert!(
        msg.contains("collective check failed"),
        "expected a fingerprint verdict, got: {msg}"
    );
}

/// The deadlock watchdog runs in the launcher over the hub's mirrored
/// rank states: a worker that returns while rank 0 still waits must be
/// declared a quiescent deadlock long before the collective timeout.
#[test]
fn watchdog_detects_deadlock_over_socket() {
    let start = Instant::now();
    let result = std::panic::catch_unwind(|| {
        Cluster::new(2)
            .with_transport(TransportKind::Socket)
            .with_check(cagnet_comm::CheckMode::On)
            // Generous timeout: the watchdog, not this, must fire.
            .with_timeout(Duration::from_secs(60))
            .run_wire(|ctx| {
                if ctx.rank == 0 {
                    ctx.world.barrier(); // rank 1 never joins
                }
            })
    });
    let err = result.expect_err("a deadlocked run must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "(non-string panic)".to_string());
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock report: {msg}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "the watchdog must beat the collective timeout"
    );
}

/// Hostile frame headers are rejected by `read_frame` before any body
/// allocation: a corrupt magic, a bogus length, and a truncated header
/// each produce a typed error, never an allocation or a hang.
#[test]
fn corrupt_frames_rejected_before_allocation() {
    use cagnet_comm::frame::{read_frame, FrameError, MAX_FRAME};

    // Corrupt magic.
    let mut bad_magic = vec![b'X', b'Y', b'Z', b'W', 1, 1];
    bad_magic.extend_from_slice(&8u32.to_le_bytes());
    match read_frame(&mut &bad_magic[..]) {
        Err(FrameError::BadMagic(_)) => {}
        other => panic!("bad magic must be rejected, got {other:?}"),
    }

    // Oversize body length: only the 10 header bytes exist, so an
    // attempted allocation of the claimed body would fail the test by
    // OOM or error — the length check must fire first.
    let mut oversize = vec![b'C', b'G', b'N', b'T', 1, 2];
    oversize.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    match read_frame(&mut &oversize[..]) {
        Err(FrameError::Oversize(_)) => {}
        other => panic!("oversize header must be rejected, got {other:?}"),
    }

    // Truncated header.
    let truncated = [b'C', b'G', b'N'];
    match read_frame(&mut &truncated[..]) {
        Err(FrameError::Io(_)) => {}
        other => panic!("truncated header must be rejected, got {other:?}"),
    }
}
