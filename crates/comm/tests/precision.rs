//! Integration tests for compressed wire precision (DESIGN.md §14):
//! `f64` mode must be bit-identical to the historical behaviour, packed
//! modes must replicate identically on every rank, halve (f32) or
//! quarter (bf16) the metered dense words under their own categories,
//! keep root-resident data exact, and fail CheckMode with a *named*
//! dtype when ranks disagree on the wire precision.

use cagnet_comm::{Cat, CheckMode, Cluster, CostModel, Precision};
use cagnet_dense::Mat;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A deterministic matrix of values that are *not* exactly representable
/// in f32, so rounding is observable.
fn irr_mat(rows: usize, cols: usize, salt: u64) -> Mat {
    Mat::from_fn(rows, cols, |i, j| {
        ((salt as f64 + 1.0) * (i as f64 + 0.1) - (j as f64 + 0.7)).sin() / 3.0
    })
}

/// What a rank receives after one f32 round trip: rounded exactly once
/// at the sender, widened exactly at every receiver.
fn round_f32(m: &Mat) -> Mat {
    Mat::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] as f32 as f64)
}

#[test]
fn f64_mode_is_bitwise_identical_to_default() {
    let workload = |cluster: Cluster| {
        cluster.run(|ctx| {
            let m = irr_mat(6, 5, ctx.rank as u64);
            let summed = ctx.world.allreduce_mat(&m, Cat::DenseComm);
            let payload = (ctx.rank == 0).then(|| irr_mat(4, 3, 99));
            let b = ctx.world.bcast(0, payload, Cat::DenseComm);
            let part = ctx.world.reduce_scatter_rows(&m, Cat::DenseComm);
            (summed, (*b).clone(), part, ctx.report())
        })
    };
    let base = workload(Cluster::new(3));
    let explicit = workload(Cluster::new(3).with_precision(Precision::F64));
    for ((s0, b0, p0, r0), (s1, b1, p1, r1)) in base
        .iter()
        .map(|(v, _)| v)
        .zip(explicit.iter().map(|(v, _)| v))
    {
        assert_eq!(s0, s1);
        assert_eq!(b0, b1);
        assert_eq!(p0, p1);
        assert_eq!(r0.clock, r1.clock);
        assert_eq!(r0.words(Cat::DenseComm), r1.words(Cat::DenseComm));
        assert_eq!(r0.words(Cat::DenseComm32), 0);
        assert_eq!(r1.words(Cat::DenseComm32), 0);
    }
}

#[test]
fn f32_bcast_replicates_rounded_values_on_every_rank() {
    let src = irr_mat(7, 3, 5);
    let expect = round_f32(&src);
    let results = Cluster::new(4).with_precision(Precision::F32).run(|ctx| {
        let payload = (ctx.rank == 1).then(|| src.clone());
        let got = ctx.world.bcast(1, payload, Cat::DenseComm);
        ((*got).clone(), ctx.report())
    });
    for (rank, ((got, rep), _)) in results.iter().enumerate() {
        // The replication invariant: the *root included*, every rank
        // holds the widened packed payload, never the original.
        assert_eq!(got, &expect, "rank {rank} diverged");
        assert_ne!(got, &src, "rounding must be observable");
        assert_eq!(rep.words(Cat::DenseComm), 0);
    }
    // Word metering: every rank (root included, matching the f64 bcast
    // convention) records ceil(n·4/8) packed words under the f32
    // category — half the 21 words the uncompressed payload moves.
    let packed_words = (7u64 * 3 * 4).div_ceil(8);
    for (rank, ((_, rep), _)) in results.iter().enumerate() {
        assert_eq!(rep.words(Cat::DenseComm32), packed_words, "rank {rank}");
    }
}

#[test]
fn f32_allreduce_sums_widened_parts_in_member_order() {
    let p = 4;
    let mats: Vec<Mat> = (0..p).map(|r| irr_mat(5, 4, r as u64)).collect();
    // Every rank's contribution rounds once at its sender; the sum runs
    // over the widened f64 values in member order.
    let mut expect = Mat::zeros(5, 4);
    for m in &mats {
        cagnet_dense::ops::add_assign(&mut expect, &round_f32(m));
    }
    let mats = Arc::new(mats);
    let results = Cluster::new(p).with_precision(Precision::F32).run(|ctx| {
        let summed = ctx.world.allreduce_mat(&mats[ctx.rank], Cat::DenseComm);
        (summed, ctx.report())
    });
    let w = (5u64 * 4 * 4).div_ceil(8);
    let expect_words = 2 * w * (p as u64 - 1) / p as u64;
    let expect_t = CostModel::summit_like().allreduce_time(p, w);
    for (rank, ((summed, rep), _)) in results.iter().enumerate() {
        assert_eq!(summed, &expect, "rank {rank} sum diverged");
        assert_eq!(rep.words(Cat::DenseComm32), expect_words);
        assert_eq!(rep.words(Cat::DenseComm), 0);
        assert!((rep.clock - expect_t).abs() < 1e-15);
        // The dual-lane reconciliation invariant holds for the new
        // categories: Σ per-category seconds == clock.
        assert!((rep.busy_seconds() - rep.clock).abs() < 1e-12);
    }
}

#[test]
fn bf16_quarters_the_dense_words() {
    let p = 2;
    let (rows, cols) = (8, 8);
    let words_at = |prec: Precision| -> u64 {
        let results = Cluster::new(p).with_precision(prec).run(|ctx| {
            let m = irr_mat(rows, cols, ctx.rank as u64);
            let _ = ctx.world.allreduce_mat(&m, Cat::DenseComm);
            ctx.report()
        });
        let (rep, _) = &results[0];
        rep.words(Cat::DenseComm) + rep.words(Cat::DenseComm32) + rep.words(Cat::DenseComm16)
    };
    let full = words_at(Precision::F64);
    let half = words_at(Precision::F32);
    let quarter = words_at(Precision::Bf16);
    assert_eq!(half * 2, full);
    assert_eq!(quarter * 4, full);
}

#[test]
fn f32_gather_rows_keeps_root_exact_and_rounds_receivers() {
    let block = irr_mat(8, 3, 17);
    let block2 = block.clone();
    let needed: &[usize] = &[1, 3, 6];
    let results = Cluster::new(3).with_precision(Precision::F32).run(|ctx| {
        let payload = (ctx.rank == 0).then(|| block2.clone());
        let got = ctx.world.gather_rows(
            0,
            payload.map(Arc::new),
            needed,
            Some((8, 3)),
            Cat::DenseComm,
        );
        ((**got.mat()).clone(), got.rows().is_some(), ctx.report())
    });
    // Root-resident data never rides the wire, so it is never rounded.
    let (root_mat, root_compact, root_rep) = &results[0].0;
    assert_eq!(root_mat, &block);
    assert!(!root_compact);
    assert_eq!(root_rep.words(Cat::DenseComm32), 0);
    // Receivers hold the f32-rounded requested rows, metered at packed
    // row width plus one full-price index word per row.
    let rounded = round_f32(&block);
    let row_words = 1 + (3u64 * 4).div_ceil(8);
    for (rank, result) in results.iter().enumerate().skip(1) {
        let (mat, compact, rep) = &result.0;
        assert!(*compact);
        assert_eq!(mat.rows(), needed.len());
        for (i, &r) in needed.iter().enumerate() {
            assert_eq!(mat.row(i), rounded.row(r), "rank {rank} row {r}");
        }
        assert_eq!(rep.words(Cat::DenseComm32), needed.len() as u64 * row_words);
        assert_eq!(rep.words(Cat::DenseComm), 0);
    }
}

#[test]
fn packed_nonblocking_forms_match_blocking() {
    let results = Cluster::new(3).with_precision(Precision::F32).run(|ctx| {
        let m = irr_mat(6, 4, ctx.rank as u64);
        let blocking = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        let pending = ctx.world.iallreduce_mat(&m, Cat::DenseComm);
        let nonblocking = pending.wait();
        let payload = (ctx.rank == 2).then(|| irr_mat(3, 3, 8));
        let b = ctx.world.bcast(2, payload.clone(), Cat::DenseComm);
        let ib = ctx.world.ibcast(2, payload, Cat::DenseComm).wait();
        let ig = ctx
            .world
            .igather_rows(
                2,
                (ctx.rank == 2).then(|| Arc::new(irr_mat(5, 2, 4))),
                &[0, 4],
                Some((5, 2)),
                Cat::DenseComm,
            )
            .wait();
        (
            blocking,
            nonblocking,
            (*b).clone(),
            (*ib).clone(),
            (**ig.mat()).clone(),
        )
    });
    let ig_expect_receiver = {
        let rounded = round_f32(&irr_mat(5, 2, 4));
        let mut m = Mat::zeros(2, 2);
        m.row_mut(0).copy_from_slice(rounded.row(0));
        m.row_mut(1).copy_from_slice(rounded.row(4));
        m
    };
    for (rank, ((blocking, nonblocking, b, ib, ig), _)) in results.iter().enumerate() {
        assert_eq!(blocking, nonblocking, "rank {rank} iallreduce diverged");
        assert_eq!(b, ib, "rank {rank} ibcast diverged");
        if rank == 2 {
            assert_eq!(*ig, irr_mat(5, 2, 4), "igather root must stay exact");
        } else {
            assert_eq!(*ig, ig_expect_receiver, "rank {rank} igather diverged");
        }
    }
}

#[test]
fn non_dense_categories_and_scalars_stay_full_precision() {
    let results = Cluster::new(2).with_precision(Precision::Bf16).run(|ctx| {
        // Misc-category dense payloads (e.g. label shards) and scalar
        // reductions are off the dense hot path and must stay exact.
        let m = irr_mat(4, 4, ctx.rank as u64);
        let exact = ctx.world.allreduce_mat(&m, Cat::Misc);
        let s = ctx
            .world
            .allreduce_scalar(0.1 + ctx.rank as f64, Cat::DenseComm);
        (exact, s, ctx.report())
    });
    let mut expect = irr_mat(4, 4, 0);
    cagnet_dense::ops::add_assign(&mut expect, &irr_mat(4, 4, 1));
    for ((exact, s, rep), _) in &results {
        assert_eq!(exact, &expect);
        assert_eq!(*s, 0.1 + (0.1 + 1.0));
        assert_eq!(rep.words(Cat::DenseComm16), 0);
    }
}

#[test]
fn precision_mismatch_fails_check_with_named_dtype() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(2).with_check(CheckMode::On).run(|ctx| {
            // Rank 0 silently flips its wire precision — the classic
            // misconfigured-rank fault. CheckMode must name the packed
            // dtype, not die in a payload downcast.
            if ctx.rank == 0 {
                ctx.world.set_precision(Precision::F32);
            }
            let m = irr_mat(3, 3, ctx.rank as u64);
            let _ = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        });
    }))
    .expect_err("mismatched wire precisions must fail the fingerprint check");
    let msg = match err.downcast::<String>() {
        Ok(s) => *s,
        Err(other) => *other
            .downcast::<&'static str>()
            .map(|s| Box::new(s.to_string()))
            .unwrap(),
    };
    assert!(msg.contains("collective fingerprint mismatch"), "{msg}");
    assert!(msg.contains("packed-f32"), "{msg}");
}

#[test]
fn single_rank_runs_never_round() {
    let results = Cluster::new(1).with_precision(Precision::Bf16).run(|ctx| {
        let m = irr_mat(5, 5, 3);
        let summed = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        let b = ctx.world.bcast(0, Some(m.clone()), Cat::DenseComm);
        (summed, (*b).clone())
    });
    let (summed, b) = &results[0].0;
    // Compression is a wire property; with no wire there is no rounding.
    assert_eq!(summed, &irr_mat(5, 5, 3));
    assert_eq!(b, &irr_mat(5, 5, 3));
}
