//! Fault-injection tests for the checked runtime (`CheckMode::On`):
//! deliberately mismatched collectives, deadlocks, and rank panics must
//! each die with a diagnostic naming the offending rank and collective —
//! never hang and never corrupt silently.

use cagnet_comm::{Cat, CheckMode, Cluster};
use cagnet_dense::Mat;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Run `f`, require it to panic, and return the panic message.
fn panic_text<F: FnOnce()>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a panic");
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(other) => match other.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => panic!("non-string panic payload"),
        },
    }
}

#[test]
fn root_mismatch_names_offender() {
    let msg = panic_text(|| {
        Cluster::new(2).with_check(CheckMode::On).run(|ctx| {
            // Each rank believes itself the broadcast root: same slot,
            // different root fields.
            let root = ctx.rank;
            let payload = Some(vec![1.0f64]);
            let _ = ctx.world.bcast(root, payload, Cat::DenseComm);
        });
    });
    assert!(msg.contains("collective fingerprint mismatch"), "{msg}");
    assert!(msg.contains("bcast"), "{msg}");
    assert!(msg.contains("offending rank(s)"), "{msg}");
}

#[test]
fn shape_mismatch_names_offender() {
    let msg = panic_text(|| {
        Cluster::new(4).with_check(CheckMode::On).run(|ctx| {
            // Rank 2 contributes a differently-shaped matrix.
            let rows = if ctx.rank == 2 { 3 } else { 2 };
            let m = Mat::zeros(rows, 2);
            let _ = ctx.world.allreduce_mat(&m, Cat::DenseComm);
        });
    });
    assert!(msg.contains("collective fingerprint mismatch"), "{msg}");
    assert!(msg.contains("allreduce"), "{msg}");
    assert!(msg.contains("rank 2"), "{msg}");
}

#[test]
fn kind_mismatch_names_both_collectives() {
    let msg = panic_text(|| {
        Cluster::new(2).with_check(CheckMode::On).run(|ctx| {
            // Same communicator, same sequence number, different
            // collectives — the classic mismatched-call-order bug.
            if ctx.rank == 0 {
                ctx.world.barrier();
            } else {
                let _ = ctx.world.allreduce_scalar(1.0, Cat::DenseComm);
            }
        });
    });
    assert!(msg.contains("collective fingerprint mismatch"), "{msg}");
    assert!(
        msg.contains("barrier") && msg.contains("allreduce"),
        "{msg}"
    );
}

#[test]
fn gather_rows_wrong_root_panel_shape_names_offender() {
    // The root serves a panel with the wrong dimensions mid-"SUMMA":
    // receivers fingerprint the dims they expect, so the checked run
    // attributes the bad panel to the root instead of mis-slicing.
    let msg = panic_text(|| {
        Cluster::new(4).with_check(CheckMode::On).run(|ctx| {
            use std::sync::Arc;
            // Everyone expects a 6x3 block; the root deposits 5x3.
            let payload = (ctx.rank == 1).then(|| Arc::new(Mat::zeros(5, 3)));
            let _ = ctx
                .world
                .gather_rows(1, payload, &[0, 2], Some((6, 3)), Cat::DenseComm);
        });
    });
    assert!(msg.contains("collective fingerprint mismatch"), "{msg}");
    assert!(msg.contains("gather_rows"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
}

#[test]
fn igather_rows_wrong_root_panel_shape_names_offender() {
    // Same fault through the nonblocking path: fingerprints deposit at
    // issue, so the mismatch surfaces at wait() with the same attribution.
    let msg = panic_text(|| {
        Cluster::new(4).with_check(CheckMode::On).run(|ctx| {
            use std::sync::Arc;
            let payload = (ctx.rank == 2).then(|| Arc::new(Mat::zeros(8, 2)));
            let _ = ctx
                .world
                .igather_rows(2, payload, &[1], Some((4, 2)), Cat::DenseComm)
                .wait();
        });
    });
    assert!(msg.contains("collective fingerprint mismatch"), "{msg}");
    assert!(msg.contains("rank 2"), "{msg}");
}

#[test]
fn cross_communicator_deadlock_is_detected() {
    // 2x2 grid: row comms {0,1} {2,3}, column comms {0,2} {1,3}. The
    // barrier orderings below form a 4-cycle in the wait-for graph
    // (0→1→3→2→0), which no timeout-free schedule can resolve.
    let msg = panic_text(|| {
        Cluster::new(4).with_check(CheckMode::On).run(|ctx| {
            let row = ctx.world.split((ctx.rank / 2) as u64);
            let col = ctx.world.split((ctx.rank % 2) as u64);
            match ctx.rank {
                0 | 3 => {
                    row.barrier();
                    col.barrier();
                }
                _ => {
                    col.barrier();
                    row.barrier();
                }
            }
        });
    });
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("wait cycle"), "{msg}");
    assert!(msg.contains("blocked in barrier"), "{msg}");
}

#[test]
fn orphaned_collective_is_detected() {
    // Rank 1 exits without matching rank 0's barrier: not a cycle, but
    // still unresolvable — the watchdog reports the lone blocked rank.
    let msg = panic_text(|| {
        Cluster::new(2).with_check(CheckMode::On).run(|ctx| {
            if ctx.rank == 0 {
                ctx.world.barrier();
            }
        });
    });
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("rank 0: blocked in barrier"), "{msg}");
}

#[test]
fn unchecked_timeout_still_reports_order_mismatch() {
    // With the watchdog off, the rendezvous timeout is the backstop; its
    // message must still explain the likely cause.
    let msg = panic_text(|| {
        Cluster::new(2)
            .with_check(CheckMode::Off)
            .with_timeout(Duration::from_millis(300))
            .run(|ctx| {
                if ctx.rank == 0 {
                    ctx.world.barrier();
                }
            });
    });
    assert!(msg.contains("collective deadlock"), "{msg}");
    assert!(msg.contains("different orders"), "{msg}");
}

#[test]
fn peer_panic_unblocks_waiters_and_names_first_failure() {
    // Rank 1 dies before its collective; rank 0 is already blocked in the
    // allreduce. The harness must name rank 1's original panic rather
    // than hanging rank 0 or burying the cause under follow-on errors.
    let msg = panic_text(|| {
        Cluster::new(2).with_check(CheckMode::On).run(|ctx| {
            if ctx.rank == 1 {
                panic!("injected fault on rank 1");
            }
            let _ = ctx.world.allreduce_scalar(1.0, Cat::DenseComm);
        });
    });
    assert!(msg.contains("rank 1 panicked first"), "{msg}");
    assert!(msg.contains("injected fault on rank 1"), "{msg}");
}
