//! Shared run-wide diagnostics: rank lifecycle states, wait
//! registrations for the watchdog, per-rank collective histories, the
//! first-panic record, and the abort flag that lets one failing rank
//! take the whole run down with a single clear error instead of leaving
//! its peers parked until the collective timeout.
//!
//! Every lock here recovers from poisoning (`PoisonError::into_inner`):
//! this state is diagnostic metadata that must stay readable precisely
//! when some rank has panicked.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use cagnet_check::waitgraph::{HistoryEntry, RankPhase, RankSnapshot, WaitSlot};

/// How many collective history entries are kept per rank for deadlock
/// and timeout reports.
pub(crate) const HISTORY_LEN: usize = 16;

/// The first rank-level failure of a run: which rank, what it was doing,
/// and the original panic message. Recorded once; later failures (the
/// abort cascade) keep the original.
#[derive(Clone, Debug)]
pub(crate) struct FirstPanic {
    pub rank: usize,
    pub during: String,
    pub message: String,
}

impl FirstPanic {
    pub fn render(&self) -> String {
        format!(
            "rank {} panicked first during {}: {}",
            self.rank, self.during, self.message
        )
    }
}

/// Run-wide diagnostic state shared by all ranks and the watchdog.
#[derive(Debug, Default)]
pub(crate) struct Diagnostics {
    states: Mutex<Vec<RankSnapshot>>,
    history: Mutex<Vec<VecDeque<HistoryEntry>>>,
    first_panic: Mutex<Option<FirstPanic>>,
    abort: Mutex<Option<String>>,
}

impl Diagnostics {
    /// Size the per-rank tables; called once per cluster run.
    pub fn init(&self, size: usize) {
        *lock(&self.states) = vec![RankSnapshot::running(); size];
        *lock(&self.history) = vec![VecDeque::with_capacity(HISTORY_LEN); size];
    }

    /// Record a collective entry in `rank`'s history ring.
    pub fn record_history(&self, rank: usize, entry: HistoryEntry) {
        let mut h = lock(&self.history);
        if let Some(ring) = h.get_mut(rank) {
            if ring.len() == HISTORY_LEN {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
    }

    /// Set a rank's lifecycle phase (clears any wait registration).
    ///
    /// `Done` and `Panicked` are terminal. On the socket transport a
    /// rank's frames are handled by per-connection threads: the peer
    /// that completes a collective marks the served members `Running`
    /// *after* sending their collect frames, so a fast member can ship
    /// its `RESULT` (→ `Done`) in that window and then be stomped back
    /// to `Running` by the slower thread. The watchdog only exits when
    /// every rank is terminal, so that lost update would hang the
    /// launcher; refusing to leave a terminal phase closes the race.
    pub fn set_phase(&self, rank: usize, phase: RankPhase) {
        let mut s = lock(&self.states);
        if let Some(snap) = s.get_mut(rank) {
            if terminal(snap.phase) {
                return;
            }
            snap.phase = phase;
            snap.wait = None;
        }
    }

    /// Mark `rank` blocked on `wait`; the returned guard restores it to
    /// running when the collective completes (or unwinds).
    pub fn enter_wait<'d>(&'d self, rank: usize, wait: WaitSlot) -> WaitGuard<'d> {
        {
            let mut s = lock(&self.states);
            if let Some(snap) = s.get_mut(rank) {
                snap.phase = RankPhase::Blocked;
                snap.wait = Some(wait);
            }
        }
        WaitGuard { diag: self, rank }
    }

    /// Mark `rank` blocked on `wait` with no guard: used by the socket
    /// hub to mirror a remote worker's WAIT frame into the launcher's
    /// diagnostics (the matching transition back to running happens when
    /// the hub serves the collect or the rank reports a result).
    pub fn set_blocked(&self, rank: usize, wait: WaitSlot) {
        let mut s = lock(&self.states);
        if let Some(snap) = s.get_mut(rank) {
            if terminal(snap.phase) {
                return;
            }
            snap.phase = RankPhase::Blocked;
            snap.wait = Some(wait);
        }
    }

    /// Clone the current rank states.
    pub fn snapshot(&self) -> Vec<RankSnapshot> {
        lock(&self.states).clone()
    }

    /// Clone the per-rank collective histories.
    pub fn histories(&self) -> Vec<Vec<HistoryEntry>> {
        lock(&self.history)
            .iter()
            .map(|ring| ring.iter().copied().collect())
            .collect()
    }

    /// The label of the collective `rank` most recently entered, for
    /// "panicked during ..." context.
    pub fn last_collective_label(&self, rank: usize) -> String {
        if let Some(w) = lock(&self.states).get(rank).and_then(|s| s.wait.clone()) {
            return format!("{} on {}", w.kind, w.slot);
        }
        match lock(&self.history).get(rank).and_then(|h| h.back()) {
            Some(e) => format!("{} on {}", e.kind, e.slot),
            None => "(no collective in flight)".to_string(),
        }
    }

    /// Record the run's first panic; later records are ignored.
    pub fn record_first_panic(&self, fp: FirstPanic) {
        let mut slot = lock(&self.first_panic);
        if slot.is_none() {
            *slot = Some(fp);
        }
    }

    /// The first panic, rendered, if any rank has failed.
    pub fn first_panic_render(&self) -> Option<String> {
        lock(&self.first_panic).as_ref().map(FirstPanic::render)
    }

    /// Raise the abort flag (first writer wins). Blocked ranks observe
    /// it within one wait tick and panic with the message.
    pub fn set_abort(&self, message: String) {
        let mut slot = lock(&self.abort);
        if slot.is_none() {
            *slot = Some(message);
        }
    }

    /// The abort message, if the run is being taken down.
    pub fn abort_message(&self) -> Option<String> {
        lock(&self.abort).clone()
    }
}

/// RAII wait registration: restores the rank to running on drop, even
/// when the collective panics out of the rendezvous.
pub(crate) struct WaitGuard<'d> {
    diag: &'d Diagnostics,
    rank: usize,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.diag.set_phase(self.rank, RankPhase::Running);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a phase is terminal: the rank has reported a result or a
/// failure and can never re-enter the run.
fn terminal(phase: RankPhase) -> bool {
    matches!(phase, RankPhase::Done | RankPhase::Panicked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagnet_check::fingerprint::CollectiveKind;
    use cagnet_check::waitgraph::SlotId;

    #[test]
    fn wait_guard_restores_running() {
        let d = Diagnostics::default();
        d.init(2);
        {
            let _g = d.enter_wait(
                1,
                WaitSlot {
                    slot: SlotId { comm: 1, seq: 0 },
                    kind: CollectiveKind::Barrier,
                    members: vec![0, 1],
                },
            );
            assert_eq!(d.snapshot()[1].phase, RankPhase::Blocked);
        }
        assert_eq!(d.snapshot()[1].phase, RankPhase::Running);
    }

    #[test]
    fn history_ring_caps_length() {
        let d = Diagnostics::default();
        d.init(1);
        for seq in 0..(HISTORY_LEN as u64 + 5) {
            d.record_history(
                0,
                HistoryEntry {
                    slot: SlotId { comm: 1, seq },
                    kind: CollectiveKind::Barrier,
                    clock: 0.0,
                },
            );
        }
        let h = d.histories();
        assert_eq!(h[0].len(), HISTORY_LEN);
        assert_eq!(h[0][0].slot.seq, 5);
    }

    #[test]
    fn done_and_panicked_are_terminal() {
        // The socket hub's lost-update race: a rank reports its RESULT
        // (→ Done) while the peer thread that completed its last
        // collective is about to mark it Running. The late transition
        // must lose, or the CheckMode watchdog waits forever.
        let d = Diagnostics::default();
        d.init(2);
        d.set_phase(1, RankPhase::Done);
        d.set_phase(1, RankPhase::Running);
        assert_eq!(d.snapshot()[1].phase, RankPhase::Done);
        d.set_blocked(
            1,
            WaitSlot {
                slot: SlotId { comm: 1, seq: 3 },
                kind: CollectiveKind::Barrier,
                members: vec![0, 1],
            },
        );
        assert_eq!(d.snapshot()[1].phase, RankPhase::Done);
        assert!(d.snapshot()[1].wait.is_none());
        d.set_phase(0, RankPhase::Panicked);
        d.set_phase(0, RankPhase::Running);
        assert_eq!(d.snapshot()[0].phase, RankPhase::Panicked);
    }

    #[test]
    fn first_panic_is_sticky() {
        let d = Diagnostics::default();
        d.record_first_panic(FirstPanic {
            rank: 2,
            during: "bcast on comm 1 seq 0".into(),
            message: "boom".into(),
        });
        d.record_first_panic(FirstPanic {
            rank: 3,
            during: "barrier on comm 1 seq 1".into(),
            message: "later".into(),
        });
        let r = d.first_panic_render().expect("recorded");
        assert!(r.contains("rank 2"));
        assert!(r.contains("boom"));
    }

    #[test]
    fn abort_first_writer_wins() {
        let d = Diagnostics::default();
        assert!(d.abort_message().is_none());
        d.set_abort("first".into());
        d.set_abort("second".into());
        assert_eq!(d.abort_message().as_deref(), Some("first"));
    }
}
