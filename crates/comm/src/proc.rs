//! The multi-process socket transport: real worker processes behind
//! [`CommLink`].
//!
//! Topology is hub-and-spoke. The launcher (the process that called
//! [`Cluster::run_wire`](crate::cluster::Cluster::run_wire)) binds a
//! Unix domain socket, spawns `size - 1` worker processes by
//! re-executing the current binary, and runs a **hub** that owns every
//! rendezvous: clients send `DEPOSIT` and `WAIT` frames, the hub
//! answers each `WAIT` with exactly one `COLLECT` (the full
//! member-ordered deposit set) or `ERROR`. Rank 0 itself participates
//! as an ordinary client over the same socket, so the protocol is
//! exercised uniformly.
//!
//! Everything above [`CommLink`] is shared with the thread backend:
//! entry clocks travel as exact `f64` bit patterns, CheckMode
//! fingerprints piggyback on `DEPOSIT` frames, and the deadlock
//! watchdog runs unmodified in the launcher because the hub mirrors
//! every remote deposit/wait/result/panic into the launcher's
//! [`Diagnostics`](crate::diag) tables.
//!
//! Workers are re-executions of the current binary (test runner or
//! bench binary) with `CAGNET_WORKER_*` environment variables. A worker
//! replays every socket-dispatched run before its target index through
//! the deterministic thread backend, so it reaches the target run with
//! identical program state; at the target it connects, runs its rank
//! closure, ships `(result, timeline report)` back as a `RESULT` frame,
//! and exits without returning to the caller.
//!
//! All wire I/O in this module goes through [`frame::read_frame`] /
//! [`frame::write_frame`] — the `raw-socket-io` lint rule keeps raw
//! socket reads/writes confined to `frame.rs`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use cagnet_check::fingerprint::Fingerprint;
use cagnet_check::waitgraph::{HistoryEntry, RankPhase, SlotId, WaitSlot};
use cagnet_parallel::ParallelCtx;

use crate::cluster::{panic_message, watchdog, Cluster, Ctx};
use crate::comm::{Communicator, Registry};
use crate::diag::FirstPanic;
use crate::frame::{
    self, CollectMsg, DepositMsg, ErrorMsg, Frame, FrameKind, HelloMsg, PanicMsg, WaitMsg, Wire,
};
use crate::timeline::{Meter, Timeline, TimelineReport};
use crate::transport::{
    CollectError, CommLink, Payload, RxDeposit, RxPayload, TxDeposit, WAIT_TICK,
};
use cagnet_check::fingerprint::CollectiveKind;

/// How long clients retry connecting to the hub socket (covers worker
/// process startup and run replay).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// The world communicator's id on the socket backend — matches the
/// first id the shared backend's registry hands out, so slot labels in
/// diagnostics read identically across transports.
const WORLD_COMM_ID: u64 = 1;

// ---------------------------------------------------------------------
// Run indexing and worker identity.
// ---------------------------------------------------------------------

thread_local! {
    static SOCKET_RUN_IDX: Cell<u64> = const { Cell::new(0) };
}

/// Next socket-dispatched run index for this thread. Thread-local, not
/// global: `cargo test` executes many tests concurrently in one
/// process, and each test's sequence of socket runs must be counted
/// independently for worker replay to find the right run.
pub(crate) fn next_socket_run_idx() -> u64 {
    SOCKET_RUN_IDX.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    })
}

/// A worker process's identity, decoded from the `CAGNET_WORKER_*`
/// environment variables set by [`spawn_workers`].
pub(crate) struct WorkerEnv {
    /// This worker's world rank (`1..size`).
    pub rank: usize,
    /// Expected world size.
    pub world: usize,
    /// Path of the launcher's hub socket.
    pub socket: PathBuf,
    /// Index of the socket run this worker was forked for.
    pub run: u64,
}

/// Decode the worker identity, or `None` when this process is a
/// launcher (the variables are unset).
pub(crate) fn worker_env() -> Option<WorkerEnv> {
    let rank = std::env::var("CAGNET_WORKER_RANK").ok()?.parse().ok()?;
    let world = std::env::var("CAGNET_WORKER_WORLD").ok()?.parse().ok()?;
    let socket = PathBuf::from(std::env::var("CAGNET_WORKER_SOCKET").ok()?);
    let run = std::env::var("CAGNET_WORKER_RUN").ok()?.parse().ok()?;
    Some(WorkerEnv {
        rank,
        world,
        socket,
        run,
    })
}

// ---------------------------------------------------------------------
// Client side: one socket connection per rank.
// ---------------------------------------------------------------------

/// Connect to `path`, retrying until `timeout` — the listener may not
/// be bound yet when a freshly spawned worker first tries.
pub fn connect_with_retry(path: &Path, timeout: Duration) -> Result<UnixStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!(
                        "could not connect to {} within {timeout:?}: {e}",
                        path.display()
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// What the reader thread hands the collecting rank.
enum Event {
    Frame(Frame),
    Closed(String),
}

/// One rank's connection to the hub: a writer half guarded by a mutex
/// plus a dedicated reader thread feeding a channel. The reader thread
/// exists so blocked collects can poll the abort flag every wait tick
/// without read timeouts ever landing mid-frame on the socket.
struct SocketClient {
    rank: usize,
    writer: Mutex<UnixStream>,
    rx: Mutex<Receiver<Event>>,
    /// This rank's own deposits, keyed by `(comm, seq)`: handed back as
    /// the same `Arc` at collect time so a rank's view of its own
    /// payload is zero-copy, exactly like the shared backend.
    pending: Mutex<HashMap<(u64, u64), Payload>>,
}

impl SocketClient {
    fn connect(
        path: &Path,
        rank: usize,
        world: usize,
        run: u64,
        timeout: Duration,
    ) -> Result<Arc<Self>, String> {
        let stream = connect_with_retry(path, timeout)?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("rank {rank}: could not clone socket: {e}"))?;
        frame::write_frame(
            &mut writer,
            FrameKind::Hello,
            &frame::encode(&HelloMsg { rank, world, run }),
        )
        .map_err(|e| format!("rank {rank}: hello failed: {e}"))?;
        let (tx, rx) = mpsc::channel();
        let mut reader = stream;
        std::thread::spawn(move || loop {
            match frame::read_frame(&mut reader) {
                Ok(f) => {
                    if tx.send(Event::Frame(f)).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Closed(format!("{e}")));
                    return;
                }
            }
        });
        Ok(Arc::new(SocketClient {
            rank,
            writer: Mutex::new(writer),
            rx: Mutex::new(rx),
            pending: Mutex::new(HashMap::new()),
        }))
    }

    fn send(&self, kind: FrameKind, body: &[u8]) -> Result<(), String> {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        frame::write_frame(&mut *w, kind, body)
            .map_err(|e| format!("rank {}: sending {kind:?} frame failed: {e}", self.rank))
    }

    /// Shut the connection down so the hub's per-connection thread (and
    /// our reader thread) unblock; used by rank 0, whose result never
    /// travels through the hub.
    fn close(&self) {
        let w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.shutdown(Shutdown::Both);
    }
}

/// [`CommLink`] over a [`SocketClient`]. Splitting a communicator
/// derives a new id deterministically from `(parent id, key seq,
/// color)` — every member computes the same id with no extra round
/// trip, and the hub just sees a fresh `(comm, seq)` keyspace.
struct SocketLink {
    id: u64,
    client: Arc<SocketClient>,
}

impl SocketLink {
    fn world(client: Arc<SocketClient>) -> Arc<dyn CommLink> {
        Arc::new(SocketLink {
            id: WORLD_COMM_ID,
            client,
        })
    }
}

/// FNV-1a over the three split coordinates, with the top bit forced so
/// derived ids can never collide with the small world id.
fn derived_id(parent: u64, key_seq: u64, color: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [parent, key_seq, color] {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h | (1 << 63)
}

impl CommLink for SocketLink {
    fn id(&self) -> u64 {
        self.id
    }

    fn deposit(
        &self,
        kind: CollectiveKind,
        seq: u64,
        my_idx: usize,
        members: &[usize],
        dep: TxDeposit,
    ) -> Result<(), CollectError> {
        let msg = DepositMsg {
            comm: self.id,
            seq,
            kind,
            my_idx,
            members: members.to_vec(),
            entry: dep.entry,
            dtype: dep.payload.dtype.to_string(),
            fp: dep.fp,
            payload: dep.payload.encode_wire(),
        };
        self.client
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((self.id, seq), dep.payload.local.clone());
        self.client
            .send(FrameKind::Deposit, &frame::encode(&msg))
            .map_err(CollectError::Transport)
    }

    fn collect(
        &self,
        kind: CollectiveKind,
        seq: u64,
        my_idx: usize,
        members: &[usize],
        abort: &dyn Fn() -> Option<String>,
        timeout: Duration,
    ) -> Result<Vec<RxDeposit>, CollectError> {
        let msg = WaitMsg {
            comm: self.id,
            seq,
            kind,
            my_idx,
            members: members.to_vec(),
        };
        self.client
            .send(FrameKind::Wait, &frame::encode(&msg))
            .map_err(CollectError::Transport)?;
        let rx = self
            .client
            .rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut waited = Duration::ZERO;
        loop {
            match rx.recv_timeout(WAIT_TICK) {
                Ok(Event::Frame(fr)) => {
                    return match fr.kind {
                        FrameKind::Collect => self.accept_collect(fr, seq, my_idx, members.len()),
                        FrameKind::Error => match frame::decode::<ErrorMsg>(&fr.body) {
                            Ok(e) => Err(CollectError::Transport(e.message)),
                            Err(e) => Err(CollectError::Transport(format!("bad error frame: {e}"))),
                        },
                        other => Err(CollectError::Transport(format!(
                            "protocol error: unexpected {other:?} frame while awaiting a collect"
                        ))),
                    };
                }
                Ok(Event::Closed(why)) => {
                    return Err(CollectError::Transport(format!(
                        "connection to the launcher hub lost: {why}"
                    )));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(why) = abort() {
                        return Err(CollectError::Abort(why));
                    }
                    waited += WAIT_TICK;
                    if waited >= timeout {
                        // The hub holds the arrival counts; a socket
                        // client only knows its own wait expired.
                        return Err(CollectError::Timeout { arrived: 0 });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CollectError::Transport(
                        "connection to the launcher hub lost".to_string(),
                    ));
                }
            }
        }
    }

    fn derive(&self, key_seq: u64, color: u64, _size: usize) -> Arc<dyn CommLink> {
        Arc::new(SocketLink {
            id: derived_id(self.id, key_seq, color),
            client: self.client.clone(),
        })
    }
}

impl SocketLink {
    /// Turn a `COLLECT` frame into member-ordered deposits, substituting
    /// this rank's own stored `Arc` at its member index.
    fn accept_collect(
        &self,
        fr: Frame,
        seq: u64,
        my_idx: usize,
        size: usize,
    ) -> Result<Vec<RxDeposit>, CollectError> {
        let msg = frame::decode::<CollectMsg>(&fr.body)
            .map_err(|e| CollectError::Transport(format!("bad collect frame: {e}")))?;
        if msg.comm != self.id || msg.seq != seq {
            return Err(CollectError::Transport(format!(
                "protocol error: collect for comm {} seq {} while awaiting comm {} seq {seq}",
                msg.comm, msg.seq, self.id
            )));
        }
        if msg.deposits.len() != size {
            return Err(CollectError::Transport(format!(
                "protocol error: collect carried {} deposits for a {size}-member rendezvous",
                msg.deposits.len()
            )));
        }
        let own = self
            .client
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&(self.id, seq));
        Ok(msg
            .deposits
            .into_iter()
            .enumerate()
            .map(|(idx, (entry, fp, bytes))| {
                let payload = match (&own, idx == my_idx) {
                    (Some(local), true) => RxPayload::Local(local.clone()),
                    _ => RxPayload::Remote(Arc::new(bytes)),
                };
                RxDeposit { entry, fp, payload }
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// Hub: the launcher-side rendezvous broker.
// ---------------------------------------------------------------------

/// A remote rank's contribution as the hub stores it: issue-time
/// clock, optional CheckMode fingerprint, encoded payload bytes.
type HubDeposit = (f64, Option<Fingerprint>, Vec<u8>);

/// One in-flight rendezvous on the hub.
struct HubSlot {
    members: Vec<usize>,
    deposits: Vec<Option<HubDeposit>>,
    /// World ranks whose `WAIT` arrived before the slot completed.
    waiters: Vec<usize>,
    /// How many `COLLECT`s have been served; the slot is dropped when
    /// every member has been answered.
    served: usize,
}

struct HubState {
    conns: Vec<Option<UnixStream>>,
    slots: HashMap<(u64, u64), HubSlot>,
    /// Encoded `(result, report)` per worker rank; index 0 is unused
    /// (rank 0's result never travels through the hub).
    results: Vec<Option<Vec<u8>>>,
    /// Death reason per rank, for fail-fast answers to later waits.
    dead: Vec<Option<String>>,
}

/// The rendezvous broker. Mirrors every remote rank's protocol traffic
/// into the launcher's diagnostics so the watchdog and failure reports
/// work identically to the thread backend; rank 0's own thread
/// maintains its diagnostics directly, so its frames are not mirrored.
struct Hub {
    registry: Arc<Registry>,
    size: usize,
    state: Mutex<HubState>,
}

impl Hub {
    fn new(registry: Arc<Registry>, size: usize) -> Self {
        Hub {
            registry,
            size,
            state: Mutex::new(HubState {
                conns: (0..size).map(|_| None).collect(),
                slots: HashMap::new(),
                results: vec![None; size],
                dead: vec![None; size],
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn send_locked(&self, state: &mut HubState, rank: usize, kind: FrameKind, body: &[u8]) {
        if let Some(conn) = state.conns.get_mut(rank).and_then(|c| c.as_mut()) {
            // A send failure means the peer died; the connection reader
            // will notice and take the run down with a named error.
            let _ = frame::write_frame(conn, kind, body);
        }
    }

    fn register_conn(&self, rank: usize, writer: UnixStream) {
        let mut state = self.lock();
        if let Some(slot) = state.conns.get_mut(rank) {
            *slot = Some(writer);
        }
    }

    fn on_frame(&self, rank: usize, fr: Frame) {
        match fr.kind {
            FrameKind::Deposit => match frame::decode::<DepositMsg>(&fr.body) {
                Ok(m) => self.on_deposit(rank, m),
                Err(e) => self.protocol_error(rank, format!("bad deposit frame: {e}")),
            },
            FrameKind::Wait => match frame::decode::<WaitMsg>(&fr.body) {
                Ok(m) => self.on_wait(rank, m),
                Err(e) => self.protocol_error(rank, format!("bad wait frame: {e}")),
            },
            FrameKind::Result => self.on_result(rank, fr.body),
            FrameKind::Panic => match frame::decode::<PanicMsg>(&fr.body) {
                Ok(m) => self.on_panic(rank, m),
                Err(e) => self.protocol_error(rank, format!("bad panic frame: {e}")),
            },
            other => self.protocol_error(rank, format!("unexpected {other:?} frame from a client")),
        }
    }

    fn protocol_error(&self, rank: usize, why: String) {
        let body = frame::encode(&ErrorMsg { message: why });
        let mut state = self.lock();
        self.send_locked(&mut state, rank, FrameKind::Error, &body);
    }

    fn on_deposit(&self, rank: usize, msg: DepositMsg) {
        if rank != 0 {
            self.registry.diag.record_history(
                rank,
                HistoryEntry {
                    slot: SlotId {
                        comm: msg.comm,
                        seq: msg.seq,
                    },
                    kind: msg.kind,
                    clock: msg.entry,
                },
            );
        }
        let key = (msg.comm, msg.seq);
        let mut state = self.lock();
        let slot = state.slots.entry(key).or_insert_with(|| HubSlot {
            members: msg.members.clone(),
            deposits: vec![None; msg.members.len()],
            waiters: Vec::new(),
            served: 0,
        });
        if msg.my_idx >= slot.deposits.len() || slot.deposits[msg.my_idx].is_some() {
            drop(state);
            self.protocol_error(
                rank,
                format!(
                    "rank deposited twice at comm {} seq {} — collective misuse",
                    msg.comm, msg.seq
                ),
            );
            return;
        }
        slot.deposits[msg.my_idx] = Some((msg.entry, msg.fp, msg.payload));
        let mut to_serve = Vec::new();
        let mut body = Vec::new();
        if slot.deposits.iter().all(|d| d.is_some()) {
            to_serve = std::mem::take(&mut slot.waiters);
            slot.served += to_serve.len();
            let done = slot.served == slot.members.len();
            body = frame::encode(&CollectMsg {
                comm: key.0,
                seq: key.1,
                deposits: slot.deposits.iter().flatten().cloned().collect(),
            });
            if done {
                state.slots.remove(&key);
            }
        }
        for &w in &to_serve {
            self.send_locked(&mut state, w, FrameKind::Collect, &body);
        }
        drop(state);
        for w in to_serve {
            if w != 0 {
                self.registry.diag.set_phase(w, RankPhase::Running);
            }
        }
    }

    fn on_wait(&self, rank: usize, msg: WaitMsg) {
        if rank != 0 {
            self.registry.diag.set_blocked(
                rank,
                WaitSlot {
                    slot: SlotId {
                        comm: msg.comm,
                        seq: msg.seq,
                    },
                    kind: msg.kind,
                    members: msg.members.clone(),
                },
            );
        }
        let key = (msg.comm, msg.seq);
        let mut state = self.lock();
        if let Some(why) = self.wait_error(&state, &msg.members) {
            let body = frame::encode(&ErrorMsg { message: why });
            self.send_locked(&mut state, rank, FrameKind::Error, &body);
            return;
        }
        let Some(slot) = state.slots.get_mut(&key) else {
            // The waiter deposits before waiting, so its slot must still
            // exist; a missing slot means the protocol was violated.
            let body = frame::encode(&ErrorMsg {
                message: format!(
                    "protocol error: wait for unknown rendezvous comm {} seq {}",
                    msg.comm, msg.seq
                ),
            });
            self.send_locked(&mut state, rank, FrameKind::Error, &body);
            return;
        };
        if slot.deposits.iter().all(|d| d.is_some()) {
            slot.served += 1;
            let done = slot.served == slot.members.len();
            let body = frame::encode(&CollectMsg {
                comm: key.0,
                seq: key.1,
                deposits: slot.deposits.iter().flatten().cloned().collect(),
            });
            if done {
                state.slots.remove(&key);
            }
            self.send_locked(&mut state, rank, FrameKind::Collect, &body);
            drop(state);
            if rank != 0 {
                self.registry.diag.set_phase(rank, RankPhase::Running);
            }
        } else {
            slot.waiters.push(rank);
        }
    }

    fn wait_error(&self, state: &HubState, members: &[usize]) -> Option<String> {
        if let Some(why) = self.registry.diag.abort_message() {
            return Some(why);
        }
        for &m in members {
            if let Some(reason) = state.dead.get(m).and_then(|d| d.as_ref()) {
                return Some(format!("rank {m} worker process died ({reason})"));
            }
        }
        None
    }

    fn on_result(&self, rank: usize, body: Vec<u8>) {
        {
            let mut state = self.lock();
            if let Some(slot) = state.results.get_mut(rank) {
                *slot = Some(body);
            }
        }
        if rank != 0 {
            self.registry.diag.set_phase(rank, RankPhase::Done);
        }
    }

    fn on_panic(&self, rank: usize, msg: PanicMsg) {
        let diag = &self.registry.diag;
        diag.record_first_panic(FirstPanic {
            rank,
            during: msg.during.clone(),
            message: msg.message,
        });
        diag.set_phase(rank, RankPhase::Panicked);
        let why = format!("rank {rank} panicked during {}", msg.during);
        diag.set_abort(why.clone());
        self.flush_waiters(&why);
    }

    /// A client connection closed (or its process exited) without a
    /// result: record the death, raise the abort flag, and answer every
    /// parked waiter with a named error so no peer hangs until timeout.
    /// Rank 0 lives in the launcher process, so its connection closing
    /// is never a death. Idempotent.
    fn rank_closed(&self, rank: usize, reason: String) {
        if rank == 0 {
            return;
        }
        {
            let mut state = self.lock();
            let finished = state.results.get(rank).is_some_and(|r| r.is_some());
            let already = state.dead.get(rank).is_some_and(|d| d.is_some());
            if finished || already {
                return;
            }
            if let Some(slot) = state.dead.get_mut(rank) {
                *slot = Some(reason.clone());
            }
        }
        let diag = &self.registry.diag;
        let during = diag.last_collective_label(rank);
        diag.record_first_panic(FirstPanic {
            rank,
            during,
            message: format!("worker process died ({reason})"),
        });
        diag.set_phase(rank, RankPhase::Panicked);
        let why = format!("rank {rank} worker process died ({reason})");
        diag.set_abort(why.clone());
        self.flush_waiters(&why);
    }

    /// Answer every parked waiter with `why`. Called on panic, death,
    /// and whenever the abort flag is observed by the monitor thread
    /// (covering rank-0 panics and watchdog-declared deadlocks).
    fn flush_waiters(&self, why: &str) {
        let body = frame::encode(&ErrorMsg {
            message: why.to_string(),
        });
        let mut state = self.lock();
        let keys: Vec<(u64, u64)> = state.slots.keys().copied().collect();
        for key in keys {
            let waiters = match state.slots.get_mut(&key) {
                Some(slot) => std::mem::take(&mut slot.waiters),
                None => Vec::new(),
            };
            for w in waiters {
                self.send_locked(&mut state, w, FrameKind::Error, &body);
            }
        }
    }

    fn all_worker_results(&self) -> bool {
        let state = self.lock();
        state.results.iter().skip(1).all(|r| r.is_some())
    }

    fn take_results(&self) -> Vec<Option<Vec<u8>>> {
        std::mem::take(&mut self.lock().results)
    }
}

// ---------------------------------------------------------------------
// Connection handling.
// ---------------------------------------------------------------------

fn accept_loop(listener: UnixListener, hub: Arc<Hub>) {
    for _ in 0..hub.size {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let hub = hub.clone();
        std::thread::spawn(move || handle_conn(stream, hub));
    }
}

fn handle_conn(mut stream: UnixStream, hub: Arc<Hub>) {
    let hello: HelloMsg = match frame::read_frame(&mut stream) {
        Ok(fr) if fr.kind == FrameKind::Hello => match frame::decode(&fr.body) {
            Ok(h) => h,
            Err(_) => return,
        },
        _ => return,
    };
    let rank = hello.rank;
    if rank >= hub.size || hello.world != hub.size {
        return;
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    hub.register_conn(rank, writer);
    loop {
        match frame::read_frame(&mut stream) {
            Ok(fr) => hub.on_frame(rank, fr),
            Err(e) => {
                hub.rank_closed(rank, format!("connection lost: {e}"));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker processes.
// ---------------------------------------------------------------------

static SOCKET_SALT: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    let n = SOCKET_SALT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cagnet-{}-{n}.sock", std::process::id()))
}

/// Removes the hub's socket file when the launcher exits, even by
/// panic.
struct SocketGuard(PathBuf);

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Spawn `size - 1` worker processes by re-executing the current binary
/// with the original arguments. Under `cargo test` (detected by the
/// thread name libtest assigns), the re-execution is narrowed to
/// exactly the current test on one thread, so the worker replays only
/// the runs that matter. Worker output is discarded — their panics
/// travel back over the socket as `PANIC` frames.
fn spawn_workers(sock: &Path, size: usize, run_idx: u64) -> std::io::Result<Vec<(usize, Child)>> {
    let exe = std::env::current_exe()?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_filter = std::thread::current()
        .name()
        .filter(|n| !n.is_empty() && *n != "main")
        .map(str::to_string);
    let mut children = Vec::with_capacity(size - 1);
    for rank in 1..size {
        let mut cmd = Command::new(&exe);
        cmd.args(&args);
        if let Some(name) = &test_filter {
            cmd.arg("--exact").arg(name).arg("--test-threads").arg("1");
        }
        cmd.env("CAGNET_WORKER_RANK", rank.to_string())
            .env("CAGNET_WORKER_WORLD", size.to_string())
            .env("CAGNET_WORKER_SOCKET", sock.as_os_str())
            .env("CAGNET_WORKER_RUN", run_idx.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        children.push((rank, cmd.spawn()?));
    }
    Ok(children)
}

/// Kill (when the run failed) and reap every worker, with a bounded
/// wait so a wedged child can never hang the launcher.
fn reap_children(children: &Mutex<Vec<(usize, Child)>>, kill: bool) {
    let mut kids = children.lock().unwrap_or_else(PoisonError::into_inner);
    if kill {
        for (_, child) in kids.iter_mut() {
            let _ = child.kill();
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    for (_, child) in kids.iter_mut() {
        loop {
            match child.try_wait() {
                Ok(Some(_)) | Err(_) => break,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
    kids.clear();
}

/// The monitor thread: pumps the abort flag out to parked waiters
/// (covering rank-0 panics and watchdog verdicts, which never pass
/// through the hub) and detects worker processes that exit without
/// reporting.
fn monitor_loop(
    hub: &Hub,
    children: &Mutex<Vec<(usize, Child)>>,
    registry: &Registry,
    stop: &AtomicBool,
) {
    // When a child exits its RESULT frame may still be in flight: the
    // connection reader observes EOF only after draining every buffered
    // frame, so it — not `try_wait` — is the authoritative death signal
    // for ranks that connected. The exit observation here is a delayed
    // backstop for workers that die before ever reaching the hub.
    const EXIT_GRACE: Duration = Duration::from_secs(1);
    let mut exited_at: HashMap<usize, (Instant, String)> = HashMap::new();
    while !stop.load(Ordering::Relaxed) {
        if let Some(why) = registry.diag.abort_message() {
            hub.flush_waiters(&why);
        }
        {
            let mut kids = children.lock().unwrap_or_else(PoisonError::into_inner);
            for (rank, child) in kids.iter_mut() {
                if let Ok(Some(status)) = child.try_wait() {
                    exited_at
                        .entry(*rank)
                        .or_insert_with(|| (Instant::now(), format!("{status}")));
                }
            }
        }
        for (rank, (seen, status)) in &exited_at {
            if seen.elapsed() >= EXIT_GRACE {
                hub.rank_closed(*rank, format!("exited with {status} before reporting"));
            }
        }
        std::thread::sleep(WAIT_TICK);
    }
}

// ---------------------------------------------------------------------
// Launcher and worker entry points.
// ---------------------------------------------------------------------

/// Run a socket-transport cluster from the launcher side: bind the hub,
/// spawn workers, run rank 0 in-process as an ordinary socket client,
/// and assemble every rank's `(result, report)` — decoding the workers'
/// from their `RESULT` frames — in rank order, exactly like
/// `run_threads`.
pub(crate) fn run_launcher<R, F>(cl: &Cluster, run_idx: u64, f: F) -> Vec<(R, TimelineReport)>
where
    R: Send + Wire,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    let size = cl.size;
    let registry = Arc::new(
        Registry::new(cl.timeout)
            .with_check(cl.check)
            .with_precision(cl.precision),
    );
    registry.diag.init(size);
    let sock_path = socket_path();
    let _ = std::fs::remove_file(&sock_path);
    let _guard = SocketGuard(sock_path.clone());
    let listener = match UnixListener::bind(&sock_path) {
        Ok(l) => l,
        Err(e) => panic!("socket transport: bind {} failed: {e}", sock_path.display()),
    };
    let hub = Arc::new(Hub::new(registry.clone(), size));
    {
        let hub = hub.clone();
        std::thread::spawn(move || accept_loop(listener, hub));
    }
    let children = match spawn_workers(&sock_path, size, run_idx) {
        Ok(c) => Arc::new(Mutex::new(c)),
        Err(e) => panic!("socket transport: spawning workers failed: {e}"),
    };
    let stop = Arc::new(AtomicBool::new(false));
    {
        let hub = hub.clone();
        let children = children.clone();
        let registry = registry.clone();
        let stop = stop.clone();
        std::thread::spawn(move || monitor_loop(&hub, &children, &registry, &stop));
    }

    let model = cl.effective_model();
    let parallel = ParallelCtx::new(cl.threads_per_rank);
    let f = &f;
    let registry_ref = &registry;
    let sock_ref = &sock_path;
    let rank0_res: Option<(R, TimelineReport)> = std::thread::scope(|scope| {
        if cl.check.is_on() {
            let registry = registry.clone();
            scope.spawn(move || watchdog(&registry));
        }
        let handle = scope.spawn(move || {
            let client = match SocketClient::connect(sock_ref, 0, size, run_idx, CONNECT_TIMEOUT) {
                Ok(c) => c,
                Err(e) => {
                    registry_ref
                        .diag
                        .set_abort(format!("rank 0 could not reach its own hub: {e}"));
                    return None;
                }
            };
            let meter = Rc::new(RefCell::new(Meter {
                model,
                timeline: Timeline::new(),
            }));
            let world = Communicator::new_world(
                registry_ref.clone(),
                SocketLink::world(client.clone()),
                size,
                0,
                meter.clone(),
            );
            let mut ctx = Ctx::for_rank(0, size, world, parallel, meter.clone());
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            let out = match result {
                Ok(out) => {
                    registry_ref.diag.set_phase(0, RankPhase::Done);
                    let report = meter.borrow().timeline.report();
                    Some((out, report))
                }
                Err(payload) => {
                    let during = registry_ref.diag.last_collective_label(0);
                    let message = panic_message(payload.as_ref());
                    registry_ref.diag.record_first_panic(FirstPanic {
                        rank: 0,
                        during: during.clone(),
                        message,
                    });
                    registry_ref.diag.set_phase(0, RankPhase::Panicked);
                    registry_ref
                        .diag
                        .set_abort(format!("rank 0 panicked during {during}"));
                    None
                }
            };
            // Unblock the hub's reader for rank 0 — the launcher keeps
            // no long-lived client once rank 0 is finished.
            client.close();
            out
        });
        handle.join().ok().flatten()
    });

    // Wait for every worker's RESULT (bounded by the collective timeout
    // plus reporting slack), unless the run already failed.
    let failed = rank0_res.is_none();
    let mut aborted = registry.diag.abort_message();
    if !failed && aborted.is_none() {
        let deadline = Instant::now() + cl.timeout + Duration::from_secs(10);
        loop {
            if hub.all_worker_results() {
                break;
            }
            aborted = registry.diag.abort_message();
            if aborted.is_some() {
                break;
            }
            if Instant::now() >= deadline {
                registry
                    .diag
                    .set_abort("timed out waiting for worker results".to_string());
                aborted = registry.diag.abort_message();
                break;
            }
            std::thread::sleep(WAIT_TICK);
        }
    }
    stop.store(true, Ordering::Relaxed);
    reap_children(&children, failed || aborted.is_some());

    if failed || aborted.is_some() {
        let why = registry
            .diag
            .first_panic_render()
            .or(aborted)
            .unwrap_or_else(|| "socket transport run failed".to_string());
        panic!("{why}");
    }
    let mut results = hub.take_results();
    let mut out = Vec::with_capacity(size);
    match rank0_res {
        Some(r0) => out.push(r0),
        None => panic!("socket transport run failed"),
    }
    for (rank, slot) in results.iter_mut().enumerate().skip(1) {
        let Some(bytes) = slot.take() else {
            panic!("rank {rank} produced no result despite a clean run");
        };
        match frame::decode::<(R, TimelineReport)>(&bytes) {
            Ok(pair) => out.push(pair),
            Err(e) => panic!("rank {rank}: result frame failed to decode: {e}"),
        }
    }
    out
}

/// Run this process's rank closure as a socket worker and exit. Never
/// returns: a worker exists only to serve one rank of one run, so on
/// success it ships `(result, report)` back as a `RESULT` frame and
/// exits 0, and on panic it ships a `PANIC` frame and exits nonzero.
pub(crate) fn run_worker<R, F>(cl: &Cluster, env: &WorkerEnv, f: F) -> !
where
    R: Send + Wire,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    assert_eq!(
        cl.size, env.world,
        "socket worker run {}: cluster size {} != spawned world size {}",
        env.run, cl.size, env.world
    );
    let registry = Arc::new(
        Registry::new(cl.timeout)
            .with_check(cl.check)
            .with_precision(cl.precision),
    );
    registry.diag.init(cl.size);
    let client =
        match SocketClient::connect(&env.socket, env.rank, env.world, env.run, CONNECT_TIMEOUT) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cagnet socket worker rank {}: {e}", env.rank);
                std::process::exit(3);
            }
        };
    let meter = Rc::new(RefCell::new(Meter {
        model: cl.effective_model(),
        timeline: Timeline::new(),
    }));
    let world = Communicator::new_world(
        registry.clone(),
        SocketLink::world(client.clone()),
        cl.size,
        env.rank,
        meter.clone(),
    );
    let mut ctx = Ctx::for_rank(
        env.rank,
        cl.size,
        world,
        ParallelCtx::new(cl.threads_per_rank),
        meter.clone(),
    );
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
    match result {
        Ok(out) => {
            let report = meter.borrow().timeline.report();
            let body = frame::encode(&(out, report));
            match client.send(FrameKind::Result, &body) {
                Ok(()) => std::process::exit(0),
                Err(e) => {
                    eprintln!("cagnet socket worker rank {}: {e}", env.rank);
                    std::process::exit(4);
                }
            }
        }
        Err(payload) => {
            let msg = PanicMsg {
                during: registry.diag.last_collective_label(env.rank),
                message: panic_message(payload.as_ref()),
            };
            let _ = client.send(FrameKind::Panic, &frame::encode(&msg));
            std::process::exit(101);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ids_are_stable_and_distinct() {
        let a = derived_id(1, 7, 0);
        assert_eq!(a, derived_id(1, 7, 0));
        assert_ne!(a, derived_id(1, 7, 1));
        assert_ne!(a, derived_id(1, 8, 0));
        assert_ne!(a, WORLD_COMM_ID);
        // The top bit keeps derived ids clear of small world ids.
        assert!(a & (1 << 63) != 0);
    }

    #[test]
    fn run_indices_count_per_thread() {
        let first = next_socket_run_idx();
        assert_eq!(next_socket_run_idx(), first + 1);
        let other = std::thread::spawn(next_socket_run_idx)
            .join()
            .expect("counter thread");
        assert_eq!(other, 0, "each thread counts its own socket runs");
    }

    #[test]
    fn connect_with_retry_reports_timeout() {
        let path = std::env::temp_dir().join("cagnet-no-such-hub.sock");
        let err = connect_with_retry(&path, Duration::from_millis(50))
            .expect_err("dead socket must not connect");
        assert!(err.contains("could not connect"), "got: {err}");
    }
}
