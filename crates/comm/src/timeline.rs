//! Per-rank modeled-time accounting.
//!
//! Every rank carries a [`Timeline`]: a bulk-synchronous-parallel clock
//! plus per-category accumulators of modeled seconds, words moved, and
//! message counts. Collectives synchronize the clock to the maximum entry
//! time across participants before adding the collective's modeled cost —
//! which makes an epoch's final clock exactly the BSP bound
//! `Σ_phases max_ranks (compute + comm)` that governs the runtime of the
//! paper's bulk-synchronous implementation (§IV-A.8 discusses precisely
//! this max-vs-total distinction).
//!
//! The timeline is **dual-lane** (DESIGN.md §10): the clock is the
//! *compute lane*, while `net_free` tracks when the *network lane* next
//! becomes free. Blocking collectives occupy both lanes; a nonblocking
//! collective's α–β cost occupies only the network lane from issue
//! readiness onward, so local charges issued before its `wait()` run
//! concurrently — the covered portion is metered as [`Cat::Overlapped`]
//! and only the uncovered remainder advances the clock, making a
//! pipelined stage cost `max(compute, comm)` instead of their sum.

use crate::cost::{Cat, CostModel, ALL_CATS, NUM_CATS};
use crate::trace::TraceEvent;

/// Modeled-time ledger for one rank.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    clock: f64,
    /// Time at which the single modeled NIC is next free — the network
    /// lane of the dual-lane model. Never ahead of `clock` unless a
    /// pending (nonblocking) op is in flight.
    net_free: f64,
    seconds: [f64; NUM_CATS],
    words: [u64; NUM_CATS],
    messages: [u64; NUM_CATS],
    /// When `Some`, every charge/wait is recorded as a trace event.
    trace: Option<Vec<TraceEvent>>,
}

impl Timeline {
    /// Fresh timeline at clock 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current BSP clock (seconds).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advance the clock by `dt` seconds, attributing them to `cat`.
    pub fn charge(&mut self, cat: Cat, dt: f64) {
        debug_assert!(dt >= 0.0, "negative charge");
        if let Some(tr) = &mut self.trace {
            if dt > 0.0 {
                tr.push(TraceEvent {
                    name: cat.label(),
                    cat,
                    start: self.clock,
                    end: self.clock + dt,
                });
            }
        }
        self.clock += dt;
        self.seconds[cat.index()] += dt;
    }

    /// Start recording trace events (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Take the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Record `w` words moved and one message under `cat` (bookkeeping
    /// only; time is charged separately via [`Timeline::charge`]).
    pub fn record_traffic(&mut self, cat: Cat, w: u64) {
        self.words[cat.index()] += w;
        self.messages[cat.index()] += 1;
    }

    /// Synchronize the clock up to `t` (BSP max at a collective); no-op if
    /// already past `t`.
    pub fn sync_to(&mut self, t: f64) {
        if t > self.clock {
            // Waiting-at-barrier time is attributed to Idle: it is load
            // imbalance, not any kernel — and keeping it out of Misc lets
            // reports separate real work from rendezvous blocking.
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent {
                    name: "wait",
                    cat: Cat::Idle,
                    start: self.clock,
                    end: t,
                });
            }
            self.seconds[Cat::Idle.index()] += t - self.clock;
            self.clock = t;
        }
    }

    /// Settle a **blocking** collective: both lanes engage. The op starts
    /// when the last participant arrived (`tmax`) *and* the network lane
    /// is free; the gap to the start is idle wait, the cost advances both
    /// lanes together. With no pending ops in flight `net_free ≤ clock`,
    /// so this reduces exactly to the historic `sync_to(tmax)` +
    /// `charge(cat, cost)`.
    pub fn settle_blocking(&mut self, tmax: f64, cat: Cat, cost: f64) {
        let start = tmax.max(self.net_free);
        self.sync_to(start);
        self.charge(cat, cost);
        self.net_free = self.clock;
    }

    /// Settle a **nonblocking** collective at `wait()` time: its α–β
    /// `cost` occupies the network lane from `max(ready, net_free)`,
    /// where `ready` is the rendezvous' max entry clock. The portion the
    /// compute lane has already covered is metered as
    /// [`Cat::Overlapped`] without advancing the clock; only the
    /// uncovered remainder (plus any gap until the op could start) moves
    /// the clock, so a fully hidden op costs zero modeled time.
    pub fn settle_pending(&mut self, ready: f64, cat: Cat, cost: f64) {
        debug_assert!(cost >= 0.0, "negative pending cost");
        let net_start = ready.max(self.net_free);
        let finish = net_start + cost;
        self.net_free = finish;
        let hidden = (self.clock - net_start).clamp(0.0, cost);
        if hidden > 0.0 {
            // Overlapped intervals overlay compute events on the trace:
            // the network lane is busy concurrently with the clock lane.
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent {
                    name: "ovlp",
                    cat: Cat::Overlapped,
                    start: net_start,
                    end: net_start + hidden,
                });
            }
            self.seconds[Cat::Overlapped.index()] += hidden;
        }
        // If every participant only became ready after our compute ended,
        // the gap is rendezvous idle time.
        self.sync_to(net_start);
        let remainder = (finish - self.clock).max(0.0);
        self.charge(cat, remainder);
    }

    /// Seconds attributed to a category.
    pub fn seconds(&self, cat: Cat) -> f64 {
        self.seconds[cat.index()]
    }

    /// Words moved under a category.
    pub fn words(&self, cat: Cat) -> u64 {
        self.words[cat.index()]
    }

    /// Messages counted under a category.
    pub fn messages(&self, cat: Cat) -> u64 {
        self.messages[cat.index()]
    }

    /// Total communication words (dense + sparse).
    pub fn comm_words(&self) -> u64 {
        self.words(Cat::DenseComm)
            + self.words(Cat::DenseComm32)
            + self.words(Cat::DenseComm16)
            + self.words(Cat::SparseComm)
    }

    /// Immutable snapshot for reporting.
    pub fn report(&self) -> TimelineReport {
        TimelineReport {
            clock: self.clock,
            seconds: self.seconds,
            words: self.words,
            messages: self.messages,
        }
    }

    /// Reset all accumulators (used between warmup and measured epochs).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Plain-data snapshot of a [`Timeline`], returned from cluster runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimelineReport {
    /// Final BSP clock.
    pub clock: f64,
    seconds: [f64; NUM_CATS],
    words: [u64; NUM_CATS],
    messages: [u64; NUM_CATS],
}

impl crate::frame::Wire for TimelineReport {
    // Lives here (not in frame.rs) because the per-category arrays are
    // private; f64 fields cross as exact bit patterns, preserving the
    // cross-backend bit-identity of reports.
    fn put(&self, out: &mut Vec<u8>) {
        self.clock.put(out);
        for v in self.seconds {
            v.put(out);
        }
        for v in self.words {
            v.put(out);
        }
        for v in self.messages {
            v.put(out);
        }
    }
    fn take(r: &mut crate::frame::Reader<'_>) -> Result<Self, crate::frame::FrameError> {
        let clock = f64::take(r)?;
        let mut rep = TimelineReport {
            clock,
            ..TimelineReport::default()
        };
        for v in rep.seconds.iter_mut() {
            *v = f64::take(r)?;
        }
        for v in rep.words.iter_mut() {
            *v = u64::take(r)?;
        }
        for v in rep.messages.iter_mut() {
            *v = u64::take(r)?;
        }
        Ok(rep)
    }
}

impl TimelineReport {
    /// Seconds attributed to a category.
    pub fn seconds(&self, cat: Cat) -> f64 {
        self.seconds[cat.index()]
    }

    /// Words moved under a category.
    pub fn words(&self, cat: Cat) -> u64 {
        self.words[cat.index()]
    }

    /// Messages counted under a category.
    pub fn messages(&self, cat: Cat) -> u64 {
        self.messages[cat.index()]
    }

    /// Total communication words (dense + sparse).
    pub fn comm_words(&self) -> u64 {
        self.words(Cat::DenseComm)
            + self.words(Cat::DenseComm32)
            + self.words(Cat::DenseComm16)
            + self.words(Cat::SparseComm)
    }

    /// Seconds that advanced the clock: every category except
    /// [`Cat::Overlapped`] (which meters hidden communication running
    /// concurrently with compute). Always equals `clock` exactly —
    /// the reconciliation invariant of the dual-lane model.
    pub fn busy_seconds(&self) -> f64 {
        ALL_CATS
            .iter()
            .filter(|c| **c != Cat::Overlapped)
            .map(|c| self.seconds(*c))
            .sum()
    }

    /// Elementwise-maximum reduction over per-rank reports: max clock and
    /// per-category maxima — the "slowest rank" view.
    pub fn max_over(reports: &[TimelineReport]) -> TimelineReport {
        let mut out = TimelineReport::default();
        for r in reports {
            out.clock = out.clock.max(r.clock);
            for c in ALL_CATS {
                let i = c.index();
                out.seconds[i] = out.seconds[i].max(r.seconds[i]);
                out.words[i] = out.words[i].max(r.words[i]);
                out.messages[i] = out.messages[i].max(r.messages[i]);
            }
        }
        out
    }

    /// Mean over per-rank reports (per-category arithmetic means).
    pub fn mean_over(reports: &[TimelineReport]) -> TimelineReport {
        let n = reports.len().max(1) as f64;
        let mut out = TimelineReport::default();
        for r in reports {
            out.clock += r.clock / n;
            for c in ALL_CATS {
                let i = c.index();
                out.seconds[i] += r.seconds[i] / n;
                out.words[i] += r.words[i] / (n as u64).max(1);
                out.messages[i] += r.messages[i] / (n as u64).max(1);
            }
        }
        out
    }

    /// Sum over per-rank reports (aggregate traffic view).
    pub fn sum_over(reports: &[TimelineReport]) -> TimelineReport {
        let mut out = TimelineReport::default();
        for r in reports {
            out.clock += r.clock;
            for c in ALL_CATS {
                let i = c.index();
                out.seconds[i] += r.seconds[i];
                out.words[i] += r.words[i];
                out.messages[i] += r.messages[i];
            }
        }
        out
    }
}

/// Convenience bundle of a timeline and the model that prices its charges.
#[derive(Clone, Debug)]
pub struct Meter {
    /// Cost model for pricing.
    pub model: std::sync::Arc<CostModel>,
    /// The ledger.
    pub timeline: Timeline,
}

impl Meter {
    /// New meter over a model.
    pub fn new(model: std::sync::Arc<CostModel>) -> Self {
        Meter {
            model,
            timeline: Timeline::new(),
        }
    }

    /// Charge a local SpMM (`nnz` stored entries, `rows` rows, dense
    /// operand `width` columns) under [`Cat::Spmm`].
    pub fn charge_spmm(&mut self, nnz: usize, rows: usize, width: usize) {
        let dt = self.model.spmm_time(nnz, rows, width);
        self.timeline.charge(Cat::Spmm, dt);
    }

    /// Charge a local GEMM under [`Cat::Gemm`].
    pub fn charge_gemm(&mut self, m: usize, k: usize, n: usize) {
        let dt = self.model.gemm_time(m, k, n);
        self.timeline.charge(Cat::Gemm, dt);
    }

    /// Charge a transpose of `nnz` entries under [`Cat::Transpose`].
    pub fn charge_transpose(&mut self, nnz: usize) {
        let dt = self.model.transpose_time(nnz);
        self.timeline.charge(Cat::Transpose, dt);
    }

    /// Charge elementwise work over `n` elements under [`Cat::Misc`].
    pub fn charge_elementwise(&mut self, n: usize) {
        let dt = self.model.elementwise_time(n);
        self.timeline.charge(Cat::Misc, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_clock_and_category() {
        let mut t = Timeline::new();
        t.charge(Cat::Spmm, 1.5);
        t.charge(Cat::DenseComm, 0.5);
        t.charge(Cat::Spmm, 1.0);
        assert_eq!(t.clock(), 3.0);
        assert_eq!(t.seconds(Cat::Spmm), 2.5);
        assert_eq!(t.seconds(Cat::DenseComm), 0.5);
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let mut t = Timeline::new();
        t.charge(Cat::Misc, 2.0);
        t.sync_to(1.0);
        assert_eq!(t.clock(), 2.0);
        t.sync_to(5.0);
        assert_eq!(t.clock(), 5.0);
        // Wait time lands in Idle; the original Misc charge is untouched.
        assert_eq!(t.seconds(Cat::Misc), 2.0);
        assert_eq!(t.seconds(Cat::Idle), 3.0);
    }

    #[test]
    fn settle_blocking_matches_historic_sync_then_charge() {
        // With no pending ops, the lane-aware settle is numerically
        // identical to sync_to + charge.
        let mut a = Timeline::new();
        a.charge(Cat::Spmm, 1.0);
        a.settle_blocking(3.0, Cat::DenseComm, 0.5);
        let mut b = Timeline::new();
        b.charge(Cat::Spmm, 1.0);
        b.sync_to(3.0);
        b.charge(Cat::DenseComm, 0.5);
        assert_eq!(a.clock(), b.clock());
        assert_eq!(a.seconds(Cat::Idle), b.seconds(Cat::Idle));
        assert_eq!(a.seconds(Cat::DenseComm), b.seconds(Cat::DenseComm));
    }

    #[test]
    fn settle_pending_fully_hidden_costs_nothing() {
        let mut t = Timeline::new();
        // Op became ready at 1.0; compute ran to 5.0; cost 2.0 fits
        // entirely under the compute: no clock movement, all Overlapped.
        t.charge(Cat::Spmm, 5.0);
        t.settle_pending(1.0, Cat::DenseComm, 2.0);
        assert_eq!(t.clock(), 5.0);
        assert_eq!(t.seconds(Cat::Overlapped), 2.0);
        assert_eq!(t.seconds(Cat::DenseComm), 0.0);
    }

    #[test]
    fn settle_pending_charges_uncovered_remainder() {
        let mut t = Timeline::new();
        // Ready at 1.0, compute to 3.0, cost 4.0: hidden 2.0, remainder
        // 2.0 → stage time max(compute, comm) = 5.0 from readiness.
        t.charge(Cat::Spmm, 3.0);
        t.settle_pending(1.0, Cat::DenseComm, 4.0);
        assert_eq!(t.clock(), 5.0);
        assert_eq!(t.seconds(Cat::Overlapped), 2.0);
        assert_eq!(t.seconds(Cat::DenseComm), 2.0);
    }

    #[test]
    fn settle_pending_waits_for_late_peers_as_idle() {
        let mut t = Timeline::new();
        // Peers only became ready at 4.0 (> our clock 1.0): the gap is
        // idle, the full cost is charged, nothing is hidden.
        t.charge(Cat::Spmm, 1.0);
        t.settle_pending(4.0, Cat::DenseComm, 2.0);
        assert_eq!(t.clock(), 6.0);
        assert_eq!(t.seconds(Cat::Idle), 3.0);
        assert_eq!(t.seconds(Cat::Overlapped), 0.0);
        assert_eq!(t.seconds(Cat::DenseComm), 2.0);
    }

    #[test]
    fn network_lane_serializes_pending_ops() {
        let mut t = Timeline::new();
        t.charge(Cat::Spmm, 10.0);
        // Two ops both ready at 0.0, cost 4.0 each: the single NIC
        // serializes them (0→4, 4→8); both fit under compute.
        t.settle_pending(0.0, Cat::DenseComm, 4.0);
        t.settle_pending(0.0, Cat::DenseComm, 4.0);
        assert_eq!(t.clock(), 10.0);
        assert_eq!(t.seconds(Cat::Overlapped), 8.0);
        // A third op spills past the compute cover: 8→12, 2 uncovered.
        t.settle_pending(0.0, Cat::DenseComm, 4.0);
        assert_eq!(t.clock(), 12.0);
        assert_eq!(t.seconds(Cat::Overlapped), 10.0);
        assert_eq!(t.seconds(Cat::DenseComm), 2.0);
    }

    #[test]
    fn busy_seconds_reconciles_with_clock() {
        let mut t = Timeline::new();
        t.charge(Cat::Spmm, 2.0);
        t.settle_pending(0.5, Cat::DenseComm, 3.0);
        t.settle_blocking(7.0, Cat::Misc, 0.25);
        let rep = t.report();
        assert!((rep.busy_seconds() - rep.clock).abs() < 1e-12);
        assert!(rep.seconds(Cat::Overlapped) > 0.0);
    }

    #[test]
    fn traffic_recording() {
        let mut t = Timeline::new();
        t.record_traffic(Cat::SparseComm, 100);
        t.record_traffic(Cat::SparseComm, 50);
        t.record_traffic(Cat::DenseComm, 10);
        assert_eq!(t.words(Cat::SparseComm), 150);
        assert_eq!(t.messages(Cat::SparseComm), 2);
        assert_eq!(t.comm_words(), 160);
        // Traffic does not advance the clock.
        assert_eq!(t.clock(), 0.0);
    }

    #[test]
    fn cache_hits_meter_words_but_not_clock_or_comm_words() {
        let mut t = Timeline::new();
        t.record_traffic(Cat::CacheHit, 500);
        t.record_traffic(Cat::DenseComm, 10);
        assert_eq!(t.words(Cat::CacheHit), 500);
        assert_eq!(t.messages(Cat::CacheHit), 1);
        // Served stages cost no modeled time and stay out of the
        // dense+sparse wire total — the collapse remains visible.
        assert_eq!(t.clock(), 0.0);
        assert_eq!(t.comm_words(), 10);
        let rep = t.report();
        assert_eq!(rep.words(Cat::CacheHit), 500);
        assert!((rep.busy_seconds() - rep.clock).abs() < 1e-12);
    }

    #[test]
    fn report_reductions() {
        let mut a = Timeline::new();
        a.charge(Cat::Spmm, 1.0);
        a.record_traffic(Cat::DenseComm, 10);
        let mut b = Timeline::new();
        b.charge(Cat::Spmm, 3.0);
        b.record_traffic(Cat::DenseComm, 30);
        let reports = [a.report(), b.report()];
        let mx = TimelineReport::max_over(&reports);
        assert_eq!(mx.clock, 3.0);
        assert_eq!(mx.words(Cat::DenseComm), 30);
        let sm = TimelineReport::sum_over(&reports);
        assert_eq!(sm.words(Cat::DenseComm), 40);
        assert_eq!(sm.seconds(Cat::Spmm), 4.0);
        let mean = TimelineReport::mean_over(&reports);
        assert!((mean.clock - 2.0).abs() < 1e-12);
    }

    #[test]
    fn meter_charges_via_model() {
        let model = std::sync::Arc::new(CostModel::summit_like());
        let mut m = Meter::new(model.clone());
        m.charge_gemm(10, 20, 30);
        let expect = model.gemm_time(10, 20, 30);
        assert!((m.timeline.seconds(Cat::Gemm) - expect).abs() < 1e-18);
        m.charge_spmm(100, 10, 8);
        assert!(m.timeline.seconds(Cat::Spmm) > 0.0);
    }
}
