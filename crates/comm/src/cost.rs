//! The α–β communication cost model and the local-kernel compute model.
//!
//! The paper analyzes every algorithm in the α–β model (§III-A): a message
//! of `n` words costs `α + β·n` seconds. Collectives are charged the
//! standard tree/pipeline formulas (Chan et al. \[11\], Thakur et al. \[28\],
//! both cited by the paper):
//!
//! * broadcast: `α·lg p + β·w`, or `α + β·w` when pipelined — the paper
//!   notes SUMMA "can avoid the lg P factor in the latency term through
//!   pipelining" (§IV-C), so the 2D/3D trainers enable the pipelined form.
//! * reduce-scatter / all-gather: `α·lg p + β·w·(p−1)/p` (the paper rounds
//!   the bandwidth term up to `β·w` "to reduce clutter").
//! * all-reduce: reduce-scatter followed by all-gather.
//!
//! The compute model charges local kernels by flop count over a sustained
//! rate. SpMM's rate additionally degrades with
//! (1) **hypersparsity**: following the paper's §VI discussion of Yang et
//! al. \[33\] — dropping the average row degree from 62 to 8 cuts sustained
//! GFlops by ≈3× for cuSPARSE `csrmm2` — modeled as a saturating
//! `d/(d + d_half)` efficiency with `d_half ≈ 26` (which reproduces the
//! 62→8 ⇒ 3× datum exactly), and
//! (2) **skinny dense operands**: 2D/3D partitioning narrows the dense
//! matrix by `√P`, hurting SpMM (§VI-a item 2); modeled as
//! `f/(f + f_half)`.

/// Communication/computation categories, matching the stacked bars of the
/// paper's Figure 3 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cat {
    /// Local sparse × dense multiplies ("spmm").
    Spmm,
    /// Communication of dense matrices ("dcomm").
    DenseComm,
    /// Communication of sparse matrices ("scomm").
    SparseComm,
    /// Matrix transposition work ("trpose").
    Transpose,
    /// Local dense GEMM — the paper reports these under "misc" because
    /// they are inexpensive; kept separate here and merged by the Figure 3
    /// harness.
    Gemm,
    /// Everything else ("misc"): activations, loss, weight updates.
    Misc,
    /// Communication hidden behind compute by a nonblocking collective
    /// ("ovlp"): the portion of a pending op's α–β cost that the compute
    /// lane had already covered by `wait()` time. Metered for visibility
    /// only — it never advances the clock (see DESIGN.md §10).
    Overlapped,
    /// Time spent blocked in a rendezvous waiting for slower peers
    /// ("idle"): load imbalance, not any kernel. Advances the clock, so
    /// per-category seconds (excluding [`Cat::Overlapped`]) reconcile
    /// with [`crate::timeline::Timeline::clock`].
    Idle,
    /// Stage operand served from a rank-local halo cache ("cache"):
    /// meters the words the skipped gather *would* have moved and one
    /// message per served stage, but never charges seconds — a cache hit
    /// costs no modeled time, so `Σ categories == clock()` holds
    /// trivially. Populated only by cached-mode training (DESIGN.md §13);
    /// excluded from `comm_words()` so the dense-word collapse stays
    /// visible.
    CacheHit,
    /// Dense-matrix collectives carried at f32 wire precision
    /// ("dcomm32"): same traffic as [`Cat::DenseComm`] but each payload
    /// word packs two converted values, so the β term — and the metered
    /// word count — halves (DESIGN.md §14). Kept distinct from `dcomm`
    /// so compressed and full-precision traffic never blur in reports.
    DenseComm32,
    /// Dense-matrix collectives carried at software-bf16 wire precision
    /// ("dcomm16"): four converted values per payload word.
    DenseComm16,
}

/// Number of categories (array-backed accumulators are sized by this).
pub const NUM_CATS: usize = 11;

/// All categories, for iteration. New categories are appended, never
/// reordered: [`Cat`]'s wire form is its index in this array.
pub const ALL_CATS: [Cat; NUM_CATS] = [
    Cat::Spmm,
    Cat::DenseComm,
    Cat::SparseComm,
    Cat::Transpose,
    Cat::Gemm,
    Cat::Misc,
    Cat::Overlapped,
    Cat::Idle,
    Cat::CacheHit,
    Cat::DenseComm32,
    Cat::DenseComm16,
];

impl Cat {
    /// Stable index for array-backed per-category accumulators.
    pub fn index(self) -> usize {
        match self {
            Cat::Spmm => 0,
            Cat::DenseComm => 1,
            Cat::SparseComm => 2,
            Cat::Transpose => 3,
            Cat::Gemm => 4,
            Cat::Misc => 5,
            Cat::Overlapped => 6,
            Cat::Idle => 7,
            Cat::CacheHit => 8,
            Cat::DenseComm32 => 9,
            Cat::DenseComm16 => 10,
        }
    }

    /// Paper label used in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            Cat::Spmm => "spmm",
            Cat::DenseComm => "dcomm",
            Cat::SparseComm => "scomm",
            Cat::Transpose => "trpose",
            Cat::Gemm => "gemm",
            Cat::Misc => "misc",
            Cat::Overlapped => "ovlp",
            Cat::Idle => "idle",
            Cat::CacheHit => "cache",
            Cat::DenseComm32 => "dcomm32",
            Cat::DenseComm16 => "dcomm16",
        }
    }
}

/// Cost model parameters. All times in seconds, sizes in 8-byte words.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Per-message latency (seconds).
    pub alpha: f64,
    /// Per-word inverse bandwidth (seconds/word).
    pub beta: f64,
    /// Use the pipelined broadcast cost `α + β·w` instead of
    /// `α·lg p + β·w` (the SUMMA optimization the paper invokes in §IV-C).
    pub pipelined_bcast: bool,
    /// Sustained GEMM rate (flops/second).
    pub gemm_rate: f64,
    /// Peak sustained SpMM rate (flops/second) before sparsity penalties.
    pub spmm_rate: f64,
    /// Degree at which SpMM reaches half its peak rate (hypersparsity
    /// knee; 26 reproduces Yang et al.'s 62→8 ⇒ 3× slowdown).
    pub spmm_degree_half: f64,
    /// Dense-operand width at which SpMM reaches half its peak rate
    /// (skinny-matrix knee).
    pub spmm_width_half: f64,
    /// Rate for transpose/permute traffic (words/second).
    pub transpose_rate: f64,
    /// Rate for miscellaneous elementwise work (elements/second).
    pub elementwise_rate: f64,
    /// Intra-rank compute threads: the parallelized local kernels (GEMM,
    /// SpMM) are charged `flops / (threads_per_rank · rate)`. Models the
    /// per-device parallelism of the real system's GPU kernels; 1 (the
    /// default) reproduces the original serial charging exactly.
    pub threads_per_rank: usize,
}

impl CostModel {
    /// Parameters loosely calibrated to a Summit-class GPU cluster: EDR
    /// InfiniBand-ish latency and bandwidth per GPU endpoint, V100-class
    /// local kernel rates. Only *relative* magnitudes matter for the
    /// reproduction; see EXPERIMENTS.md.
    pub fn summit_like() -> Self {
        CostModel {
            alpha: 15e-6,
            beta: 8.0 / 10e9, // 10 GB/s effective per endpoint, 8-byte words
            pipelined_bcast: true,
            gemm_rate: 2.0e12,
            spmm_rate: 60.0e9,
            spmm_degree_half: 26.0,
            spmm_width_half: 8.0,
            transpose_rate: 5.0e9,
            elementwise_rate: 50.0e9,
            threads_per_rank: 1,
        }
    }

    /// Same model with an intra-rank thread budget for local compute.
    pub fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = threads.max(1);
        self
    }

    /// A latency-dominated network (slow interconnect) — used by ablation
    /// benches; the paper argues reduced-communication algorithms help
    /// *more* on slower networks (§I).
    pub fn slow_network() -> Self {
        CostModel {
            alpha: 100e-6,
            beta: 8.0 / 1e9,
            ..Self::summit_like()
        }
    }

    /// Zero-cost communication — isolates compute in ablations.
    pub fn free_network() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            ..Self::summit_like()
        }
    }

    fn lg(p: usize) -> f64 {
        (p.max(1) as f64).log2().ceil().max(1.0)
    }

    /// Broadcast of `w` words among `p` ranks.
    pub fn bcast_time(&self, p: usize, w: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let lat = if self.pipelined_bcast {
            self.alpha
        } else {
            self.alpha * Self::lg(p)
        };
        lat + self.beta * w as f64
    }

    /// Reduce-scatter of `w` total words among `p` ranks.
    pub fn reduce_scatter_time(&self, p: usize, w: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.alpha * Self::lg(p) + self.beta * w as f64 * (p - 1) as f64 / p as f64
    }

    /// All-gather producing `w` total words among `p` ranks.
    pub fn allgather_time(&self, p: usize, w: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.alpha * Self::lg(p) + self.beta * w as f64 * (p - 1) as f64 / p as f64
    }

    /// All-reduce of `w` words among `p` ranks (reduce-scatter +
    /// all-gather).
    pub fn allreduce_time(&self, p: usize, w: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        2.0 * self.alpha * Self::lg(p) + 2.0 * self.beta * w as f64 * (p - 1) as f64 / p as f64
    }

    /// Point-to-point message of `w` words.
    pub fn p2p_time(&self, w: u64) -> f64 {
        self.alpha + self.beta * w as f64
    }

    /// Barrier among `p` ranks.
    pub fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.alpha * Self::lg(p)
        }
    }

    /// SpMM efficiency multiplier in `(0, 1]` for local average degree `d`
    /// and dense width `f`.
    pub fn spmm_efficiency(&self, avg_degree: f64, width: usize) -> f64 {
        let sd = avg_degree / (avg_degree + self.spmm_degree_half);
        let sf = width as f64 / (width as f64 + self.spmm_width_half);
        (sd * sf).max(1e-6)
    }

    /// Modeled time of a local SpMM: CSR with `nnz` nonzeros over `rows`
    /// rows, times a dense operand of `width` columns.
    pub fn spmm_time(&self, nnz: usize, rows: usize, width: usize) -> f64 {
        if nnz == 0 || width == 0 {
            return 0.0;
        }
        let flops = 2.0 * nnz as f64 * width as f64;
        let d = nnz as f64 / rows.max(1) as f64;
        flops / (self.compute_threads() * self.spmm_rate * self.spmm_efficiency(d, width))
    }

    /// Modeled time of a local `m x k · k x n` GEMM.
    pub fn gemm_time(&self, m: usize, k: usize, n: usize) -> f64 {
        2.0 * m as f64 * k as f64 * n as f64 / (self.compute_threads() * self.gemm_rate)
    }

    fn compute_threads(&self) -> f64 {
        self.threads_per_rank.max(1) as f64
    }

    /// Modeled time of transposing `nnz` stored entries (sparse) or
    /// elements (dense).
    pub fn transpose_time(&self, nnz: usize) -> f64 {
        nnz as f64 / self.transpose_rate
    }

    /// Modeled time of elementwise work over `n` elements (activations,
    /// Hadamard products, weight updates).
    pub fn elementwise_time(&self, n: usize) -> f64 {
        n as f64 / self.elementwise_rate
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::summit_like()
    }
}

/// Payload word counts for communication charging: one word per `f64`,
/// two words per sparse nonzero (column index + value).
pub trait CommWords {
    /// Number of 8-byte words this payload occupies on the wire.
    fn comm_words(&self) -> u64;
}

impl CommWords for f64 {
    fn comm_words(&self) -> u64 {
        1
    }
}

impl CommWords for () {
    fn comm_words(&self) -> u64 {
        0
    }
}

impl CommWords for cagnet_dense::Mat {
    fn comm_words(&self) -> u64 {
        self.len() as u64
    }
}

impl CommWords for cagnet_sparse::Csr {
    fn comm_words(&self) -> u64 {
        2 * self.nnz() as u64
    }
}

impl CommWords for crate::frame::PackedMat {
    fn comm_words(&self) -> u64 {
        self.wire_words()
    }
}

impl<T: CommWords> CommWords for Option<T> {
    fn comm_words(&self) -> u64 {
        self.as_ref().map_or(0, CommWords::comm_words)
    }
}

impl<A: CommWords, B: CommWords> CommWords for (A, B) {
    fn comm_words(&self) -> u64 {
        self.0.comm_words() + self.1.comm_words()
    }
}

impl<T: CommWords> CommWords for Vec<T> {
    fn comm_words(&self) -> u64 {
        self.iter().map(CommWords::comm_words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_pipelined_vs_tree() {
        let mut m = CostModel::summit_like();
        m.pipelined_bcast = false;
        let tree = m.bcast_time(16, 1000);
        m.pipelined_bcast = true;
        let pipe = m.bcast_time(16, 1000);
        assert!(pipe < tree);
        assert!((tree - pipe - m.alpha * 3.0).abs() < 1e-12); // lg16=4 vs 1
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = CostModel::summit_like();
        assert_eq!(m.bcast_time(1, 100), 0.0);
        assert_eq!(m.allreduce_time(1, 100), 0.0);
        assert_eq!(m.reduce_scatter_time(1, 100), 0.0);
        assert_eq!(m.barrier_time(1), 0.0);
    }

    #[test]
    fn allreduce_is_rs_plus_ag() {
        let m = CostModel::summit_like();
        let p = 8;
        let w = 4096;
        let combined = m.reduce_scatter_time(p, w) + m.allgather_time(p, w);
        assert!((m.allreduce_time(p, w) - combined).abs() < 1e-15);
    }

    #[test]
    fn table_ii_formulas_pinned_exactly() {
        // Direct pins of the paper's Table II α–β expressions, evaluated
        // against the closed forms with no tolerance games. `w` is always
        // the *total* vector size; callers must never pre-divide by P.
        let m = CostModel {
            alpha: 3.0,
            beta: 0.5,
            pipelined_bcast: false,
            ..CostModel::summit_like()
        };
        let lg = |p: usize| (p as f64).log2().ceil();
        for p in [2usize, 3, 4, 5, 7, 8, 16, 63] {
            for w in [1u64, 80, 4096] {
                let wf = w as f64;
                let pm1 = p as f64 - 1.0;
                // broadcast (tree): α·⌈lg P⌉ + β·w
                assert_eq!(m.bcast_time(p, w), 3.0 * lg(p) + 0.5 * wf, "bcast p={p}");
                // reduce-scatter: α·⌈lg P⌉ + β·w·(P−1)/P, associated
                // exactly as written (β·w, then ·(P−1), then /P).
                assert_eq!(
                    m.reduce_scatter_time(p, w),
                    3.0 * lg(p) + 0.5 * wf * pm1 / p as f64,
                    "rs p={p} w={w}"
                );
                // all-gather: identical form to reduce-scatter
                assert_eq!(
                    m.allgather_time(p, w),
                    3.0 * lg(p) + 0.5 * wf * pm1 / p as f64,
                    "ag p={p} w={w}"
                );
                // all-reduce = reduce-scatter + all-gather, doubled
                // term by term
                assert_eq!(
                    m.allreduce_time(p, w),
                    2.0 * 3.0 * lg(p) + 2.0 * 0.5 * wf * pm1 / p as f64,
                    "ar p={p} w={w}"
                );
                // point-to-point: α + β·w
                assert_eq!(m.p2p_time(w), 3.0 + 0.5 * wf);
            }
        }
        // Pipelined broadcast drops the ⌈lg P⌉ latency factor only.
        let pipe = CostModel {
            pipelined_bcast: true,
            ..m.clone()
        };
        assert_eq!(pipe.bcast_time(64, 1000), 3.0 + 0.5 * 1000.0);
    }

    #[test]
    fn non_power_of_two_latency_rounds_up() {
        // ⌈lg P⌉: 5 ranks need 3 communication rounds, not log2(5)≈2.32.
        let m = CostModel {
            alpha: 1.0,
            beta: 0.0,
            pipelined_bcast: false,
            ..CostModel::summit_like()
        };
        assert_eq!(m.bcast_time(5, 0), 3.0);
        assert_eq!(m.reduce_scatter_time(9, 0), 4.0);
        assert_eq!(m.barrier_time(2), 1.0);
    }

    #[test]
    fn hypersparsity_reproduces_yang_ratio() {
        // Yang et al.: degree 62 -> 8 cuts sustained rate ~3x.
        let m = CostModel::summit_like();
        let wide = 128;
        let r = m.spmm_efficiency(62.0, wide) / m.spmm_efficiency(8.0, wide);
        assert!((r - 3.0).abs() < 0.15, "ratio {r} not ≈ 3");
    }

    #[test]
    fn skinny_operand_slows_spmm() {
        let m = CostModel::summit_like();
        // Same flops, narrower dense operand => more modeled time per flop.
        let per_flop_wide = m.spmm_time(1000, 100, 64) / (2.0 * 1000.0 * 64.0);
        let per_flop_skinny = m.spmm_time(1000, 100, 2) / (2.0 * 1000.0 * 2.0);
        assert!(per_flop_skinny > 2.0 * per_flop_wide);
    }

    #[test]
    fn spmm_time_zero_cases() {
        let m = CostModel::summit_like();
        assert_eq!(m.spmm_time(0, 10, 16), 0.0);
        assert_eq!(m.spmm_time(10, 10, 0), 0.0);
    }

    #[test]
    fn comm_words_impls() {
        assert_eq!(vec![1.0f64; 7].comm_words(), 7);
        assert_eq!(().comm_words(), 0);
        assert_eq!(Some(3.0f64).comm_words(), 1);
        assert_eq!((2.0f64, vec![0.0f64; 3]).comm_words(), 4);
        let m = cagnet_dense::Mat::zeros(3, 4);
        assert_eq!(m.comm_words(), 12);
        let c = cagnet_sparse::Csr::identity(5);
        assert_eq!(c.comm_words(), 10);
    }

    #[test]
    fn threads_divide_compute_time_only() {
        let serial = CostModel::summit_like();
        let four = CostModel::summit_like().with_threads_per_rank(4);
        assert!((serial.gemm_time(64, 64, 64) / four.gemm_time(64, 64, 64) - 4.0).abs() < 1e-12);
        assert!(
            (serial.spmm_time(1000, 100, 16) / four.spmm_time(1000, 100, 16) - 4.0).abs() < 1e-12
        );
        // Communication and unparallelized local work are unaffected.
        assert_eq!(serial.bcast_time(8, 100), four.bcast_time(8, 100));
        assert_eq!(serial.transpose_time(100), four.transpose_time(100));
        assert_eq!(serial.elementwise_time(100), four.elementwise_time(100));
        // Zero is clamped like ParallelCtx does.
        assert_eq!(
            CostModel::summit_like()
                .with_threads_per_rank(0)
                .gemm_time(8, 8, 8),
            serial.gemm_time(8, 8, 8)
        );
    }

    #[test]
    fn cat_indices_unique() {
        let mut seen = [false; NUM_CATS];
        for c in ALL_CATS {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }
}
