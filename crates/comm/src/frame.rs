//! The wire codec of the socket transport: a length-prefixed binary
//! frame protocol plus the [`Wire`] serialization trait for every
//! payload type that can ride through a collective.
//!
//! **All raw socket I/O in `cagnet-comm` lives in this module** — the
//! rest of the transport layer (`proc.rs`, `transport.rs`) speaks only
//! in [`Frame`]s through [`read_frame`] / [`write_frame`]. The repo's
//! `xtask lint` pass enforces this boundary (`raw-socket-io` rule), so
//! partial reads, header parsing, and allocation-size validation are
//! audited in exactly one place.
//!
//! ## Frame format
//!
//! ```text
//! +--------+---------+------+----------+------------------+
//! | magic  | version | kind | body_len | body (body_len B)|
//! | 4 B    | 1 B     | 1 B  | 4 B LE   |                  |
//! +--------+---------+------+----------+------------------+
//! ```
//!
//! The header is validated **before** the body is allocated: bad magic,
//! unknown version/kind, or a length above [`MAX_FRAME`] is rejected
//! without reserving a byte — a truncated or corrupt header can never
//! drive an attacker-controlled allocation (mirroring the hardened
//! checkpoint loader).
//!
//! A `Deposit` body carries `{comm id, seq, collective kind, rank,
//! members, entry clock, dtype, optional CheckMode fingerprint,
//! payload}` — the fingerprint piggybacks on the frame exactly as it
//! piggybacks on in-memory rendezvous deposits, so checked mode works
//! unchanged over the wire.
//!
//! ## Determinism
//!
//! `f64` values cross the wire as `to_bits` (IEEE-754 bit patterns), so
//! entry clocks, matrix entries, and losses survive the round trip
//! bit-exactly — the foundation of the cross-backend bit-identity
//! guarantee.

use std::collections::HashSet;
use std::fmt;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use cagnet_check::fingerprint::{CollectiveKind, Fingerprint, Shape};
use cagnet_dense::Mat;
use cagnet_sparse::Csr;

use crate::cost::Cat;
use crate::trace::TraceEvent;

/// Frame header magic bytes (`CGNT`).
pub const MAGIC: [u8; 4] = *b"CGNT";
/// Wire protocol version.
pub const VERSION: u8 = 1;
/// Maximum accepted frame body length (1 GiB). Validated before any
/// allocation happens.
pub const MAX_FRAME: u32 = 1 << 30;
/// Fixed header length in bytes: magic + version + kind + body length.
pub const HEADER_LEN: usize = 10;

/// A decoding or I/O failure at the frame layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/pipe error (includes EOF mid-frame).
    Io(std::io::Error),
    /// Header magic bytes did not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Declared body length exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// Body failed structural validation while decoding.
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversize(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            FrameError::Malformed(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// The role of a frame in the rendezvous protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → hub: identify `{rank, world size, run index}` right
    /// after connecting.
    Hello,
    /// Client → hub: one rank's deposit into a collective rendezvous.
    Deposit,
    /// Client → hub: block until the rendezvous for `{comm, seq}` is
    /// full; the hub answers with exactly one `Collect` or `Error`.
    Wait,
    /// Hub → client: the full deposit set of a completed rendezvous.
    Collect,
    /// Client → hub: the rank's final `(result, timeline report)`.
    Result,
    /// Hub → client: the rendezvous cannot complete (peer death, abort,
    /// deadlock); the message names the failing rank where known.
    Error,
    /// Client → hub: the rank panicked; carries `{during, message}` so
    /// the launcher's first-panic record matches the thread backend.
    Panic,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Deposit => 2,
            FrameKind::Wait => 3,
            FrameKind::Collect => 4,
            FrameKind::Result => 5,
            FrameKind::Error => 6,
            FrameKind::Panic => 7,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Deposit,
            3 => FrameKind::Wait,
            4 => FrameKind::Collect,
            5 => FrameKind::Result,
            6 => FrameKind::Error,
            7 => FrameKind::Panic,
            _ => return None,
        })
    }
}

/// One decoded frame: a kind tag plus its raw body bytes.
#[derive(Clone, Debug)]
pub struct Frame {
    /// What the frame means in the protocol.
    pub kind: FrameKind,
    /// The undecoded body; interpret with [`decode`] per kind.
    pub body: Vec<u8>,
}

/// Write one frame (header + body) and flush.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(body.len()).map_err(|_| FrameError::Oversize(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversize(len));
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = kind.to_u8();
    header[6..10].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. The header is fully validated — magic, version,
/// kind, and the body-length cap — **before** the body buffer is
/// allocated, so corrupt input cannot trigger an oversized allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let Some(kind) = FrameKind::from_u8(header[5]) else {
        return Err(FrameError::BadKind(header[5]));
    };
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_FRAME {
        return Err(FrameError::Oversize(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Frame { kind, body })
}

/// Encode a [`Wire`] value into a fresh byte vector.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.put(&mut out);
    out
}

/// Decode a [`Wire`] value from `bytes`, requiring full consumption.
pub fn decode<T: Wire>(bytes: &[u8]) -> Result<T, FrameError> {
    let mut r = Reader::new(bytes);
    let v = T::take(&mut r)?;
    if r.remaining() != 0 {
        return Err(FrameError::Malformed("trailing bytes after value"));
    }
    Ok(v)
}

/// Bounds-checked cursor over a frame body.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Malformed("body truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.bytes(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Wire serialization for collective payloads and protocol bodies.
///
/// Invariant relied on by the `Vec<T>` codec's pre-allocation guard:
/// **every encoding occupies at least one byte** (even `()` writes a
/// marker byte), so a declared element count can never exceed the
/// remaining body length.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader.
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError>;
}

impl Wire for () {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(0);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        match r.u8()? {
            0 => Ok(()),
            _ => Err(FrameError::Malformed("unit marker")),
        }
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::Malformed("bool out of range")),
        }
    }
}

impl Wire for u8 {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        r.u8()
    }
}

impl Wire for u64 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        r.u64()
    }
}

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        usize::try_from(r.u64()?).map_err(|_| FrameError::Malformed("usize overflow"))
    }
}

impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        r.f64()
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let n = usize::take(r)?;
        if n > r.remaining() {
            return Err(FrameError::Malformed("string length exceeds body"));
        }
        let bytes = r.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed("string not UTF-8"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            _ => Err(FrameError::Malformed("option tag out of range")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        for v in self {
            v.put(out);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let n = usize::take(r)?;
        // Every Wire encoding is ≥ 1 byte, so a valid count can never
        // exceed the bytes left — reject before reserving capacity.
        if n > r.remaining() {
            return Err(FrameError::Malformed("element count exceeds body"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.as_ref().put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(Arc::new(T::take(r)?))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok((A::take(r)?, B::take(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok((A::take(r)?, B::take(r)?, C::take(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
        self.3.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok((A::take(r)?, B::take(r)?, C::take(r)?, D::take(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire, E: Wire> Wire for (A, B, C, D, E) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
        self.3.put(out);
        self.4.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok((
            A::take(r)?,
            B::take(r)?,
            C::take(r)?,
            D::take(r)?,
            E::take(r)?,
        ))
    }
}

impl Wire for Mat {
    fn put(&self, out: &mut Vec<u8>) {
        self.rows().put(out);
        self.cols().put(out);
        for &x in self.as_slice() {
            x.put(out);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let rows = usize::take(r)?;
        let cols = usize::take(r)?;
        let n = rows
            .checked_mul(cols)
            .ok_or(FrameError::Malformed("matrix dims overflow"))?;
        let bytes = n
            .checked_mul(8)
            .ok_or(FrameError::Malformed("matrix dims overflow"))?;
        if bytes > r.remaining() {
            return Err(FrameError::Malformed("matrix data exceeds body"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f64()?);
        }
        Ok(Mat::from_vec(rows, cols, data))
    }
}

impl Wire for Csr {
    fn put(&self, out: &mut Vec<u8>) {
        self.rows().put(out);
        self.cols().put(out);
        self.row_ptr().to_vec().put(out);
        self.col_idx().to_vec().put(out);
        self.vals().to_vec().put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let rows = usize::take(r)?;
        let cols = usize::take(r)?;
        let row_ptr = Vec::<usize>::take(r)?;
        let col_idx = Vec::<usize>::take(r)?;
        let vals = Vec::<f64>::take(r)?;
        if row_ptr.len() != rows + 1
            || col_idx.len() != vals.len()
            || row_ptr.last().copied() != Some(col_idx.len())
        {
            return Err(FrameError::Malformed("inconsistent CSR arrays"));
        }
        // Deep structural validation (monotonicity, column bounds) is
        // `from_raw`'s own contract; its panic aborts the run exactly
        // like any other poisoned-payload panic.
        Ok(Csr::from_raw(rows, cols, row_ptr, col_idx, vals))
    }
}

/// Wire precision of dense-matrix collective payloads (DESIGN.md §14).
///
/// Ranks always *compute* in `f64`; this selects how many bits each
/// value occupies while crossing a dense collective. [`Precision::F64`]
/// is the historical format and takes the exact pre-compression code
/// path — byte-for-byte identical frames. The narrow modes convert once
/// on the sending side and widen back to `f64` on receipt, so every
/// rank still holds identical `f64` replicas after a collective.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full 64-bit values: one value per 8-byte wire word (default).
    #[default]
    F64,
    /// IEEE-754 binary32: two values per wire word, β term halves.
    F32,
    /// Software bfloat16 (the high 16 bits of the binary32 encoding,
    /// round-to-nearest-even): four values per wire word.
    Bf16,
}

impl Precision {
    /// Parse a `--precision` flag value. Every rejection names the bad
    /// input and the accepted set, mirroring the other CLI enums.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            "bf16" => Ok(Precision::Bf16),
            other => Err(format!(
                "unknown precision '{other}' (expected f64 | f32 | bf16)"
            )),
        }
    }

    /// The CLI spelling, the inverse of [`Precision::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }

    /// Bytes per value on the wire.
    pub fn bytes_per_value(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
            Precision::Bf16 => 2,
        }
    }

    /// Payload dtype recorded in CheckMode fingerprints. Distinct per
    /// precision, so a precision-mismatched rank pair fails the
    /// fingerprint cross-check with a *named* dtype mismatch instead of
    /// a downcast panic.
    pub fn packed_dtype(self) -> &'static str {
        match self {
            Precision::F64 => "packed-f64",
            Precision::F32 => "packed-f32",
            Precision::Bf16 => "packed-bf16",
        }
    }

    /// Metering category for dense collectives at this precision.
    pub fn dense_cat(self) -> Cat {
        match self {
            Precision::F64 => Cat::DenseComm,
            Precision::F32 => Cat::DenseComm32,
            Precision::Bf16 => Cat::DenseComm16,
        }
    }
}

impl Wire for Precision {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
            Precision::Bf16 => 2,
        });
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(match r.u8()? {
            0 => Precision::F64,
            1 => Precision::F32,
            2 => Precision::Bf16,
            _ => return Err(FrameError::Malformed("precision tag out of range")),
        })
    }
}

/// Round an `f32` to software bfloat16 (round-to-nearest-even), kept as
/// the high 16 bits of the binary32 encoding. NaN stays NaN.
fn bf16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Force a quiet-NaN mantissa bit so truncation can't yield inf.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// A dense matrix converted to a narrower wire precision — the payload
/// type dense collectives deposit when compression is on. The sender
/// rounds exactly once ([`PackedMat::pack`]); [`PackedMat::widen`] is
/// exact, so every receiving rank reconstructs identical `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedMat {
    precision: Precision,
    rows: usize,
    cols: usize,
    /// Little-endian packed values, `bytes_per_value` each, row-major.
    bytes: Vec<u8>,
}

impl PackedMat {
    /// Convert `m` for the wire, rounding each value to `precision`.
    pub fn pack(m: &Mat, precision: Precision) -> Self {
        let mut bytes = Vec::with_capacity(m.len() * precision.bytes_per_value());
        match precision {
            Precision::F64 => {
                for &x in m.as_slice() {
                    bytes.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Precision::F32 => {
                for &x in m.as_slice() {
                    bytes.extend_from_slice(&(x as f32).to_bits().to_le_bytes());
                }
            }
            Precision::Bf16 => {
                for &x in m.as_slice() {
                    bytes.extend_from_slice(&bf16_from_f32(x as f32).to_le_bytes());
                }
            }
        }
        PackedMat {
            precision,
            rows: m.rows(),
            cols: m.cols(),
            bytes,
        }
    }

    /// Reconstruct the `f64` matrix. Widening is exact — every `f32`
    /// and bf16 value is representable in `f64` — so all receivers of
    /// the same packed payload hold bit-identical replicas.
    pub fn widen(&self) -> Mat {
        let n = self.rows * self.cols;
        let mut data = Vec::with_capacity(n);
        match self.precision {
            Precision::F64 => {
                for c in self.bytes.chunks_exact(8) {
                    let mut a = [0u8; 8];
                    a.copy_from_slice(c);
                    data.push(f64::from_bits(u64::from_le_bytes(a)));
                }
            }
            Precision::F32 => {
                for c in self.bytes.chunks_exact(4) {
                    let mut a = [0u8; 4];
                    a.copy_from_slice(c);
                    data.push(f64::from(f32::from_bits(u32::from_le_bytes(a))));
                }
            }
            Precision::Bf16 => {
                for c in self.bytes.chunks_exact(2) {
                    let h = u16::from_le_bytes([c[0], c[1]]);
                    data.push(f64::from(f32::from_bits(u32::from(h) << 16)));
                }
            }
        }
        Mat::from_vec(self.rows, self.cols, data)
    }

    /// Wire precision of this payload.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Logical matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// 8-byte wire words this payload occupies: packed values share
    /// words, so f32 halves — and bf16 quarters — the `f64` count.
    pub fn wire_words(&self) -> u64 {
        (self.bytes.len() as u64).div_ceil(8)
    }
}

impl Wire for PackedMat {
    fn put(&self, out: &mut Vec<u8>) {
        self.precision.put(out);
        self.rows.put(out);
        self.cols.put(out);
        out.extend_from_slice(&self.bytes);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let precision = Precision::take(r)?;
        let rows = usize::take(r)?;
        let cols = usize::take(r)?;
        let n = rows
            .checked_mul(cols)
            .ok_or(FrameError::Malformed("packed matrix dims overflow"))?;
        let nbytes = n
            .checked_mul(precision.bytes_per_value())
            .ok_or(FrameError::Malformed("packed matrix dims overflow"))?;
        if nbytes > r.remaining() {
            return Err(FrameError::Malformed("packed matrix data exceeds body"));
        }
        let bytes = r.bytes(nbytes)?.to_vec();
        Ok(PackedMat {
            precision,
            rows,
            cols,
            bytes,
        })
    }
}

impl Wire for CollectiveKind {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            CollectiveKind::Barrier => 0,
            CollectiveKind::Bcast => 1,
            CollectiveKind::Allgather => 2,
            CollectiveKind::AllreduceMat => 3,
            CollectiveKind::AllreduceScalar => 4,
            CollectiveKind::ReduceScatterRows => 5,
            CollectiveKind::Alltoall => 6,
            CollectiveKind::Gather => 7,
            CollectiveKind::Scatter => 8,
            CollectiveKind::Sendrecv => 9,
            CollectiveKind::GatherRows => 10,
            CollectiveKind::Split => 11,
            CollectiveKind::IBcast => 12,
            CollectiveKind::IGatherRows => 13,
            CollectiveKind::IAllreduceMat => 14,
            CollectiveKind::GatherRowsRefresh => 15,
            CollectiveKind::IGatherRowsRefresh => 16,
        };
        out.push(tag);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(match r.u8()? {
            0 => CollectiveKind::Barrier,
            1 => CollectiveKind::Bcast,
            2 => CollectiveKind::Allgather,
            3 => CollectiveKind::AllreduceMat,
            4 => CollectiveKind::AllreduceScalar,
            5 => CollectiveKind::ReduceScatterRows,
            6 => CollectiveKind::Alltoall,
            7 => CollectiveKind::Gather,
            8 => CollectiveKind::Scatter,
            9 => CollectiveKind::Sendrecv,
            10 => CollectiveKind::GatherRows,
            11 => CollectiveKind::Split,
            12 => CollectiveKind::IBcast,
            13 => CollectiveKind::IGatherRows,
            14 => CollectiveKind::IAllreduceMat,
            15 => CollectiveKind::GatherRowsRefresh,
            16 => CollectiveKind::IGatherRowsRefresh,
            _ => return Err(FrameError::Malformed("collective kind out of range")),
        })
    }
}

impl Wire for Shape {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Shape::Unknown => out.push(0),
            Shape::Words(w) => {
                out.push(1);
                w.put(out);
            }
            Shape::Dims(r, c) => {
                out.push(2);
                r.put(out);
                c.put(out);
            }
            Shape::Count(n) => {
                out.push(3);
                n.put(out);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(match r.u8()? {
            0 => Shape::Unknown,
            1 => Shape::Words(u64::take(r)?),
            2 => Shape::Dims(usize::take(r)?, usize::take(r)?),
            3 => Shape::Count(usize::take(r)?),
            _ => return Err(FrameError::Malformed("shape tag out of range")),
        })
    }
}

impl Wire for Fingerprint {
    fn put(&self, out: &mut Vec<u8>) {
        self.kind.put(out);
        self.root.put(out);
        self.partner.put(out);
        self.dtype.to_string().put(out);
        self.shape.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(Fingerprint {
            kind: CollectiveKind::take(r)?,
            root: <Option<usize> as Wire>::take(r)?,
            partner: <Option<usize> as Wire>::take(r)?,
            dtype: intern(String::take(r)?),
            shape: Shape::take(r)?,
        })
    }
}

impl Wire for Cat {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let idx = r.u8()? as usize;
        crate::cost::ALL_CATS
            .get(idx)
            .copied()
            .ok_or(FrameError::Malformed("category out of range"))
    }
}

impl Wire for TraceEvent {
    fn put(&self, out: &mut Vec<u8>) {
        self.cat.put(out);
        // Names are &'static str; almost all are the category label or
        // one of the two fixed wait/overlap markers, so a tag byte
        // avoids shipping strings for the common cases.
        if self.name == self.cat.label() {
            out.push(0);
        } else if self.name == "wait" {
            out.push(1);
        } else if self.name == "ovlp" {
            out.push(2);
        } else {
            out.push(3);
            self.name.to_string().put(out);
        }
        self.start.put(out);
        self.end.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let cat = Cat::take(r)?;
        let name: &'static str = match r.u8()? {
            0 => cat.label(),
            1 => "wait",
            2 => "ovlp",
            3 => intern(String::take(r)?),
            _ => return Err(FrameError::Malformed("trace name tag out of range")),
        };
        Ok(TraceEvent {
            name,
            cat,
            start: f64::take(r)?,
            end: f64::take(r)?,
        })
    }
}

/// Intern a decoded string as `&'static str`. The set of distinct
/// strings crossing the wire (dtype names, trace labels) is small and
/// fixed by the program text, so the leaked total is bounded.
fn intern(s: String) -> &'static str {
    static SET: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = SET.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = set.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&existing) = guard.get(s.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    guard.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Protocol message bodies.
// ---------------------------------------------------------------------

/// `Hello` body: who is connecting.
#[derive(Clone, Debug, PartialEq)]
pub struct HelloMsg {
    /// World rank of the connecting client.
    pub rank: usize,
    /// Expected world size (cross-checked by the hub).
    pub world: usize,
    /// Index of the cluster run this connection serves.
    pub run: u64,
}

impl Wire for HelloMsg {
    fn put(&self, out: &mut Vec<u8>) {
        self.rank.put(out);
        self.world.put(out);
        self.run.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(HelloMsg {
            rank: usize::take(r)?,
            world: usize::take(r)?,
            run: u64::take(r)?,
        })
    }
}

/// `Deposit` body: one rank's contribution to a rendezvous — the wire
/// twin of the in-memory deposit tuple, with the CheckMode fingerprint
/// piggybacked when verification is on.
#[derive(Clone, Debug)]
pub struct DepositMsg {
    /// Communicator id.
    pub comm: u64,
    /// Per-communicator collective sequence number.
    pub seq: u64,
    /// Which collective the rank claims to be entering.
    pub kind: CollectiveKind,
    /// Depositor's index within the communicator.
    pub my_idx: usize,
    /// World ranks of all communicator members, ascending.
    pub members: Vec<usize>,
    /// Depositor's modeled entry clock (bit-exact via `to_bits`).
    pub entry: f64,
    /// `std::any::type_name` of the payload type.
    pub dtype: String,
    /// CheckMode fingerprint (present exactly when checking is on).
    pub fp: Option<Fingerprint>,
    /// [`Wire`]-encoded payload bytes.
    pub payload: Vec<u8>,
}

impl Wire for DepositMsg {
    fn put(&self, out: &mut Vec<u8>) {
        self.comm.put(out);
        self.seq.put(out);
        self.kind.put(out);
        self.my_idx.put(out);
        self.members.put(out);
        self.entry.put(out);
        self.dtype.put(out);
        self.fp.put(out);
        self.payload.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(DepositMsg {
            comm: u64::take(r)?,
            seq: u64::take(r)?,
            kind: CollectiveKind::take(r)?,
            my_idx: usize::take(r)?,
            members: Vec::<usize>::take(r)?,
            entry: f64::take(r)?,
            dtype: String::take(r)?,
            fp: <Option<Fingerprint> as Wire>::take(r)?,
            payload: Vec::<u8>::take(r)?,
        })
    }
}

/// `Wait` body: block for the rendezvous `{comm, seq}`.
#[derive(Clone, Debug)]
pub struct WaitMsg {
    /// Communicator id.
    pub comm: u64,
    /// Collective sequence number being awaited.
    pub seq: u64,
    /// Collective kind (for the hub's wait-for-graph mirror).
    pub kind: CollectiveKind,
    /// Waiter's index within the communicator.
    pub my_idx: usize,
    /// World ranks of all communicator members, ascending.
    pub members: Vec<usize>,
}

impl Wire for WaitMsg {
    fn put(&self, out: &mut Vec<u8>) {
        self.comm.put(out);
        self.seq.put(out);
        self.kind.put(out);
        self.my_idx.put(out);
        self.members.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(WaitMsg {
            comm: u64::take(r)?,
            seq: u64::take(r)?,
            kind: CollectiveKind::take(r)?,
            my_idx: usize::take(r)?,
            members: Vec::<usize>::take(r)?,
        })
    }
}

/// `Collect` body: the completed rendezvous — every member's `(entry
/// clock, fingerprint, payload bytes)` in member order.
#[derive(Clone, Debug)]
pub struct CollectMsg {
    /// Communicator id (echoed for cross-checking).
    pub comm: u64,
    /// Collective sequence number (echoed for cross-checking).
    pub seq: u64,
    /// Per-member deposits in member order.
    pub deposits: Vec<(f64, Option<Fingerprint>, Vec<u8>)>,
}

impl Wire for CollectMsg {
    fn put(&self, out: &mut Vec<u8>) {
        self.comm.put(out);
        self.seq.put(out);
        self.deposits.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(CollectMsg {
            comm: u64::take(r)?,
            seq: u64::take(r)?,
            deposits: Vec::take(r)?,
        })
    }
}

/// `Error` body: why a wait cannot be satisfied.
#[derive(Clone, Debug)]
pub struct ErrorMsg {
    /// Human-readable failure, naming the responsible rank when known.
    pub message: String,
}

impl Wire for ErrorMsg {
    fn put(&self, out: &mut Vec<u8>) {
        self.message.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(ErrorMsg {
            message: String::take(r)?,
        })
    }
}

/// `Panic` body: a worker rank's panic, mirrored into the launcher's
/// first-panic record.
#[derive(Clone, Debug)]
pub struct PanicMsg {
    /// The collective (or phase) the rank was in when it panicked.
    pub during: String,
    /// The original panic message.
    pub message: String,
}

impl Wire for PanicMsg {
    fn put(&self, out: &mut Vec<u8>) {
        self.during.put(out);
        self.message.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(PanicMsg {
            during: String::take(r)?,
            message: String::take(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode(&v);
        assert!(!bytes.is_empty(), "every encoding must occupy >= 1 byte");
        let back: T = decode(&bytes).expect("roundtrip decode");
        assert_eq!(back, v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(());
        roundtrip(true);
        roundtrip(42u8);
        roundtrip(u64::MAX);
        roundtrip(12345usize);
        roundtrip(-1.5e-300f64);
        roundtrip(String::from("héllo"));
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1.0f64, -2.0, f64::MIN_POSITIVE]);
        roundtrip((1u64, 2.0f64, String::from("x")));
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let bytes = encode(&v);
            let back: f64 = decode(&bytes).expect("decode");
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn mat_roundtrips() {
        let m = Mat::from_fn(3, 4, |i, j| (i * 10 + j) as f64 / 7.0);
        let bytes = encode(&m);
        let back: Mat = decode(&bytes).expect("decode");
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.as_slice(), m.as_slice());
    }

    #[test]
    fn csr_roundtrips() {
        let c = Csr::from_raw(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![1.0, 2.5, -3.0]);
        let bytes = encode(&c);
        let back: Csr = decode(&bytes).expect("decode");
        assert_eq!(back.rows(), 3);
        assert_eq!(back.nnz(), 3);
        assert_eq!(back.vals(), c.vals());
        assert_eq!(back.col_idx(), c.col_idx());
    }

    #[test]
    fn fingerprint_roundtrips() {
        let fp = Fingerprint {
            kind: CollectiveKind::GatherRows,
            root: Some(3),
            partner: None,
            dtype: "cagnet_dense::matrix::Mat",
            shape: Shape::Dims(8, 16),
        };
        let bytes = encode(&fp);
        let back: Fingerprint = decode(&bytes).expect("decode");
        assert_eq!(back, fp);
    }

    #[test]
    fn trace_event_roundtrips() {
        for ev in [
            TraceEvent {
                name: "spmm",
                cat: Cat::Spmm,
                start: 0.25,
                end: 0.5,
            },
            TraceEvent {
                name: "wait",
                cat: Cat::Idle,
                start: 1.0,
                end: 2.0,
            },
            TraceEvent {
                name: "ovlp",
                cat: Cat::Overlapped,
                start: 0.0,
                end: 0.125,
            },
        ] {
            let bytes = encode(&ev);
            let back: TraceEvent = decode(&bytes).expect("decode");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn frame_roundtrips_through_a_stream() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, FrameKind::Deposit, b"hello").expect("write");
        write_frame(&mut buf, FrameKind::Wait, b"").expect("write");
        let mut cursor = &buf[..];
        let f1 = read_frame(&mut cursor).expect("read 1");
        assert_eq!(f1.kind, FrameKind::Deposit);
        assert_eq!(f1.body, b"hello");
        let f2 = read_frame(&mut cursor).expect("read 2");
        assert_eq!(f2.kind, FrameKind::Wait);
        assert!(f2.body.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Hello, b"x").expect("write");
        buf[0] = b'X';
        let err = read_frame(&mut &buf[..]).expect_err("must reject");
        assert!(matches!(err, FrameError::BadMagic(_)), "{err}");
    }

    #[test]
    fn bad_version_and_kind_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Hello, b"x").expect("write");
        let mut v = buf.clone();
        v[4] = 99;
        assert!(matches!(
            read_frame(&mut &v[..]).expect_err("version"),
            FrameError::BadVersion(99)
        ));
        let mut k = buf;
        k[5] = 200;
        assert!(matches!(
            read_frame(&mut &k[..]).expect_err("kind"),
            FrameError::BadKind(200)
        ));
    }

    #[test]
    fn oversize_header_rejected_before_allocation() {
        // A header declaring a body near u32::MAX must be rejected from
        // the 10 header bytes alone — no body allocation, no read.
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&MAGIC);
        header[4] = VERSION;
        header[5] = 2; // Deposit
        header[6..10].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &header[..]).expect_err("must reject");
        assert!(matches!(err, FrameError::Oversize(_)), "{err}");
    }

    #[test]
    fn truncated_header_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Hello, b"abc").expect("write");
        let cut = &buf[..HEADER_LEN - 3];
        let err = read_frame(&mut &cut[..]).expect_err("must reject");
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn truncated_body_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Hello, b"abcdef").expect("write");
        let cut = &buf[..buf.len() - 2];
        let err = read_frame(&mut &cut[..]).expect_err("must reject");
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn hostile_vec_length_rejected_before_allocation() {
        // A Vec<f64> body claiming u64::MAX elements in a 16-byte body
        // must fail the remaining-bytes guard, not attempt a reserve.
        let mut body = Vec::new();
        u64::MAX.put(&mut body);
        body.extend_from_slice(&[0u8; 8]);
        let err = decode::<Vec<f64>>(&body).expect_err("must reject");
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn hostile_mat_dims_rejected() {
        let mut body = Vec::new();
        usize::MAX.put(&mut body);
        2usize.put(&mut body);
        let err = decode::<Mat>(&body).expect_err("must reject");
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn deposit_msg_roundtrips() {
        let msg = DepositMsg {
            comm: 1,
            seq: 7,
            kind: CollectiveKind::Bcast,
            my_idx: 2,
            members: vec![0, 1, 2, 3],
            entry: 0.125,
            dtype: "f64".into(),
            fp: Some(Fingerprint {
                kind: CollectiveKind::Bcast,
                root: Some(0),
                partner: None,
                dtype: "f64",
                shape: Shape::Words(1),
            }),
            payload: vec![1, 2, 3],
        };
        let back: DepositMsg = decode(&encode(&msg)).expect("decode");
        assert_eq!(back.comm, 1);
        assert_eq!(back.seq, 7);
        assert_eq!(back.members, msg.members);
        assert_eq!(back.entry, 0.125);
        assert_eq!(back.fp, msg.fp);
        assert_eq!(back.payload, msg.payload);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&42u64);
        bytes.push(0);
        assert!(decode::<u64>(&bytes).is_err());
    }
}
