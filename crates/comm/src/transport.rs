//! The transport abstraction under the collective layer.
//!
//! [`Communicator`](crate::comm::Communicator) implements every
//! collective — BSP entry-clock maximisation, α–β charging, CheckMode
//! fingerprint verification, deterministic member-order reduction —
//! **above** the [`CommLink`] trait defined here. A link only moves
//! opaque deposits: it accepts one `(entry clock, fingerprint, payload)`
//! triple per member and hands back the full member-ordered set once the
//! rendezvous is complete. Two implementations exist:
//!
//! * [`SharedLink`] — the original shared-memory simulator: deposits are
//!   `Arc` pointer copies through a generation-keyed mailbox guarded by
//!   a mutex + condvar. Deterministic, dependency-free, the CI fast
//!   path and the default.
//! * `SocketLink` (in `proc.rs`) — real multi-process transport: rank 0
//!   spawns worker processes connected over Unix domain sockets, and
//!   deposits travel as length-prefixed binary frames (`frame.rs`).
//!
//! Because everything above the trait is shared code operating on
//! bit-exact inputs (entry clocks cross the wire as `f64::to_bits`),
//! losses, weights, word counts, and timelines are bit-identical across
//! backends — pinned by `crates/core/tests/socket_transport.rs`.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cagnet_check::fingerprint::{CollectiveKind, Fingerprint};

use crate::comm::Registry;
use crate::frame::Wire;

/// An `Arc`-boxed collective payload as it lives in shared memory.
pub(crate) type Payload = Arc<dyn Any + Send + Sync>;

/// Poll granularity of blocked collective waits: how quickly a parked
/// rank observes the run-wide abort flag.
pub(crate) const WAIT_TICK: Duration = Duration::from_millis(25);

/// Which transport backend a [`Cluster`](crate::cluster::Cluster) run
/// uses for its collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Ranks are threads of this process; deposits are `Arc` pointer
    /// copies (deterministic default, CI fast path).
    Shared,
    /// Ranks are worker processes spawned by rank 0, connected over
    /// Unix domain sockets speaking the framed protocol of
    /// [`crate::frame`]. Requires [`Cluster::run_wire`]
    /// (results must be [`Wire`]-serializable).
    ///
    /// [`Cluster::run_wire`]: crate::cluster::Cluster::run_wire
    Socket,
}

impl TransportKind {
    /// Resolve the backend from `CAGNET_TRANSPORT`: `socket` selects the
    /// multi-process backend, `shared` (or unset) the in-process
    /// simulator.
    ///
    /// # Panics
    /// On an unrecognised value, so CI typos fail loudly instead of
    /// silently testing the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var("CAGNET_TRANSPORT") {
            Err(_) => TransportKind::Shared,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "shared" | "thread" | "threads" => TransportKind::Shared,
                "socket" | "sockets" | "process" => TransportKind::Socket,
                other => panic!("CAGNET_TRANSPORT must be 'shared' or 'socket', got '{other}'"),
            },
        }
    }
}

/// A payload on its way into a rendezvous: the local `Arc` (for
/// zero-copy shared-memory delivery) plus a deferred encoder the socket
/// backend invokes to produce frame bytes. The encoder is only called
/// when the deposit actually crosses a process boundary.
pub(crate) struct TxPayload {
    /// The payload as shared-memory ranks will receive it.
    pub local: Payload,
    /// `std::any::type_name` of the concrete payload type.
    pub dtype: &'static str,
    encode: WireEncoder,
}

/// Deferred payload-to-bytes encoder, invoked only when a deposit
/// actually crosses a process boundary.
type WireEncoder = Box<dyn Fn(&mut Vec<u8>) + Send>;

impl TxPayload {
    /// Wrap a typed payload for deposit on either backend.
    pub fn of<T: Any + Send + Sync + Wire>(data: Arc<T>) -> Self {
        let local: Payload = data.clone();
        TxPayload {
            local,
            dtype: std::any::type_name::<T>(),
            encode: Box::new(move |out| data.put(out)),
        }
    }

    /// The empty bystander payload (non-root ranks of rooted
    /// collectives).
    pub fn unit() -> Self {
        TxPayload::of(Arc::new(()))
    }

    /// Produce the wire encoding (socket backend only).
    pub fn encode_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        (self.encode)(&mut out);
        out
    }
}

/// One rank's full deposit into a rendezvous.
pub(crate) struct TxDeposit {
    /// The depositor's modeled entry clock.
    pub entry: f64,
    /// CheckMode fingerprint, present exactly when checking is on — it
    /// piggybacks on the deposit (and, over sockets, on the frame), so
    /// checked mode adds no synchronization on either backend.
    pub fp: Option<Fingerprint>,
    /// The payload.
    pub payload: TxPayload,
}

/// A received payload: either the depositor's own `Arc` (shared memory,
/// or a socket rank's own deposit handed back locally) or undecoded
/// frame bytes. Decoding is demand-driven — bystander `()` deposits are
/// never decoded because no collective extracts them.
#[derive(Clone)]
pub(crate) enum RxPayload {
    /// Zero-copy local delivery.
    Local(Payload),
    /// Encoded bytes from a remote rank.
    Remote(Arc<Vec<u8>>),
}

impl RxPayload {
    /// Recover the typed payload: downcast the local `Arc` or decode the
    /// wire bytes.
    ///
    /// # Panics
    /// On a type mismatch or undecodable bytes — both mean ranks
    /// disagreed about the collective being executed.
    pub fn extract<T: Any + Send + Sync + Wire>(&self) -> Arc<T> {
        match self {
            RxPayload::Local(p) => p
                .clone()
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("collective payload type mismatch across ranks")),
            RxPayload::Remote(bytes) => match crate::frame::decode::<T>(bytes) {
                Ok(v) => Arc::new(v),
                Err(e) => panic!(
                    "collective payload failed to decode as {}: {e}",
                    std::any::type_name::<T>()
                ),
            },
        }
    }
}

/// One member's deposit as handed back by [`CommLink::collect`].
pub(crate) struct RxDeposit {
    /// The depositor's modeled entry clock (bit-exact on both backends).
    pub entry: f64,
    /// The depositor's CheckMode fingerprint, when checking is on.
    pub fp: Option<Fingerprint>,
    /// The payload.
    pub payload: RxPayload,
}

/// Why a deposit or collect could not complete. The
/// [`Communicator`](crate::comm::Communicator) maps each variant onto
/// the exact panic the shared-memory backend has always raised, so
/// failure modes read identically on both transports.
pub(crate) enum CollectError {
    /// The run-wide abort flag was raised (peer panic, watchdog).
    Abort(String),
    /// The rendezvous stayed incomplete past the collective timeout.
    Timeout {
        /// How many members had arrived when time ran out.
        arrived: usize,
    },
    /// The link itself failed: poisoned rendezvous, dead peer process,
    /// socket error. The string names the cause (and the rank, where
    /// known).
    Transport(String),
}

/// A communicator's rendezvous channel. Object-safe so the collective
/// layer can hold `Arc<dyn CommLink>` and stay byte-for-byte identical
/// across backends.
pub(crate) trait CommLink: Send + Sync {
    /// Stable id of this communicator (keys diagnostic slot ids).
    fn id(&self) -> u64;

    /// Place `my_idx`'s deposit into the rendezvous for `seq`.
    /// `members` are the world ranks of the group, ascending.
    fn deposit(
        &self,
        kind: CollectiveKind,
        seq: u64,
        my_idx: usize,
        members: &[usize],
        dep: TxDeposit,
    ) -> Result<(), CollectError>;

    /// Block until the rendezvous for `seq` holds one deposit per
    /// member and return them in member order. Polls `abort` every wait
    /// tick so one failing rank stops the whole run quickly; gives up
    /// after `timeout`.
    fn collect(
        &self,
        kind: CollectiveKind,
        seq: u64,
        my_idx: usize,
        members: &[usize],
        abort: &dyn Fn() -> Option<String>,
        timeout: Duration,
    ) -> Result<Vec<RxDeposit>, CollectError>;

    /// The link for a sub-communicator split off this one: `key_seq` is
    /// the parent's sequence number at the split and `color` the group
    /// color, so every member derives the same link without out-of-band
    /// coordination. `size` is the sub-group's member count.
    fn derive(&self, key_seq: u64, color: u64, size: usize) -> Arc<dyn CommLink>;
}

struct CallSlot {
    deposits: Vec<Option<(f64, Option<Fingerprint>, Payload)>>,
    arrived: usize,
    consumed: usize,
}

/// State shared by all member threads of one shared-memory communicator.
pub(crate) struct CommInner {
    pub(crate) id: u64,
    pub(crate) size: usize,
    slots: Mutex<HashMap<u64, CallSlot>>,
    cv: Condvar,
}

impl CommInner {
    pub(crate) fn new(id: u64, size: usize) -> Self {
        CommInner {
            id,
            size,
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// The shared-memory transport: a generation-keyed mailbox of `Arc`
/// deposits guarded by a mutex + condvar. "Communication" is a pointer
/// copy; all costs are modeled.
pub(crate) struct SharedLink {
    inner: Arc<CommInner>,
    registry: Arc<Registry>,
}

impl SharedLink {
    /// The world link of a fresh run.
    pub(crate) fn world(registry: &Arc<Registry>, size: usize) -> Arc<dyn CommLink> {
        Arc::new(SharedLink {
            inner: registry.fresh_world(size),
            registry: registry.clone(),
        })
    }

    fn poisoned() -> CollectError {
        CollectError::Transport("a peer rank panicked inside a collective".to_string())
    }
}

impl CommLink for SharedLink {
    fn id(&self) -> u64 {
        self.inner.id
    }

    fn deposit(
        &self,
        _kind: CollectiveKind,
        seq: u64,
        my_idx: usize,
        members: &[usize],
        dep: TxDeposit,
    ) -> Result<(), CollectError> {
        let size = members.len();
        let mut slots = self.inner.slots.lock().map_err(|_| Self::poisoned())?;
        let slot = slots.entry(seq).or_insert_with(|| CallSlot {
            deposits: vec![None; size],
            arrived: 0,
            consumed: 0,
        });
        assert!(
            slot.deposits[my_idx].is_none(),
            "rank deposited twice at comm {} seq {seq} — collective misuse",
            self.inner.id
        );
        slot.deposits[my_idx] = Some((dep.entry, dep.fp, dep.payload.local));
        slot.arrived += 1;
        if slot.arrived == size {
            self.inner.cv.notify_all();
        }
        Ok(())
    }

    fn collect(
        &self,
        _kind: CollectiveKind,
        seq: u64,
        _my_idx: usize,
        members: &[usize],
        abort: &dyn Fn() -> Option<String>,
        timeout: Duration,
    ) -> Result<Vec<RxDeposit>, CollectError> {
        let size = members.len();
        let mut slots = self.inner.slots.lock().map_err(|_| Self::poisoned())?;
        // Wait for the full group, waking every WAIT_TICK to observe the
        // run-wide abort flag (set when a peer panics or the watchdog
        // declares deadlock) so one failure stops the whole run quickly.
        let mut waited = Duration::ZERO;
        loop {
            let ready = slots.get(&seq).map(|s| s.arrived == size).unwrap_or(false);
            if ready {
                break;
            }
            if let Some(why) = abort() {
                return Err(CollectError::Abort(why));
            }
            let (guard, result) = match self.inner.cv.wait_timeout(slots, WAIT_TICK) {
                Ok(pair) => pair,
                Err(_) => return Err(Self::poisoned()),
            };
            slots = guard;
            if result.timed_out() {
                waited += WAIT_TICK;
                if waited >= timeout {
                    // A spurious-looking timeout can race the final
                    // arrival; recheck under the lock before giving up.
                    if slots.get(&seq).map(|s| s.arrived == size).unwrap_or(false) {
                        break;
                    }
                    let arrived = slots.get(&seq).map(|s| s.arrived).unwrap_or(0);
                    return Err(CollectError::Timeout { arrived });
                }
            }
        }
        let (out, done) = {
            let Some(slot) = slots.get_mut(&seq) else {
                unreachable!(
                    "comm {} seq {seq}: slot vanished before consumption",
                    self.inner.id
                )
            };
            let mut out = Vec::with_capacity(size);
            for (idx, d) in slot.deposits.iter().enumerate() {
                let Some((t, fp, p)) = d.as_ref() else {
                    unreachable!(
                        "comm {} seq {seq}: member {idx} deposit missing",
                        self.inner.id
                    )
                };
                out.push(RxDeposit {
                    entry: *t,
                    fp: fp.clone(),
                    payload: RxPayload::Local(p.clone()),
                });
            }
            slot.consumed += 1;
            (out, slot.consumed == size)
        };
        if done {
            slots.remove(&seq);
        }
        Ok(out)
    }

    fn derive(&self, key_seq: u64, color: u64, size: usize) -> Arc<dyn CommLink> {
        let inner = self
            .registry
            .get_or_create((self.inner.id, key_seq, color), size);
        assert_eq!(inner.size, size, "split group size disagreement");
        Arc::new(SharedLink {
            inner,
            registry: self.registry.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_kind_parses_env_values() {
        // from_env reads the live environment; exercise the match arms
        // through a local copy of the mapping instead of mutating env.
        let map = |v: &str| match v {
            "" | "shared" | "thread" | "threads" => TransportKind::Shared,
            "socket" | "sockets" | "process" => TransportKind::Socket,
            other => panic!("unexpected {other}"),
        };
        assert_eq!(map("shared"), TransportKind::Shared);
        assert_eq!(map("socket"), TransportKind::Socket);
    }

    #[test]
    fn tx_payload_encodes_and_keeps_local_arc() {
        let data = Arc::new(vec![1.0f64, 2.0, 3.0]);
        let tx = TxPayload::of(data.clone());
        assert!(tx.dtype.contains("Vec<f64>"));
        let bytes = tx.encode_wire();
        let back: Vec<f64> = crate::frame::decode(&bytes).expect("decode");
        assert_eq!(back, *data);
        let local = RxPayload::Local(tx.local.clone());
        assert!(Arc::ptr_eq(&local.extract::<Vec<f64>>(), &data));
    }

    #[test]
    fn remote_payload_decodes_on_extract() {
        let data = vec![0usize, 7, 42];
        let rx = RxPayload::Remote(Arc::new(crate::frame::encode(&data)));
        assert_eq!(*rx.extract::<Vec<usize>>(), data);
    }

    #[test]
    #[should_panic(expected = "failed to decode")]
    fn remote_payload_rejects_wrong_type() {
        let rx = RxPayload::Remote(Arc::new(crate::frame::encode(&3u8)));
        let _ = rx.extract::<Vec<f64>>();
    }
}
