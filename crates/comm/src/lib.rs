//! # cagnet-comm
//!
//! A deterministic simulated distributed runtime: `P` ranks as threads,
//! MPI-style communicators with split, bulk-synchronous collectives
//! (broadcast, all-gather, all-reduce, reduce-scatter, all-to-all,
//! barrier), 2D/3D process grids, and an α–β + local-kernel cost model
//! that meters every operation onto per-rank timelines.
//!
//! This substrate replaces the paper's Summit + NCCL + torch.distributed
//! stack (see DESIGN.md §1 for the substitution argument): the algorithms
//! execute their real data movement through shared memory, while modeled
//! time and word counters reproduce the quantities the paper analyzes and
//! plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod comm;
pub mod cost;
mod diag;
pub mod frame;
pub mod grid;
#[cfg(unix)]
mod proc;
pub mod timeline;
pub mod trace;
pub mod transport;

pub use cagnet_check::CheckMode;
pub use cluster::{Cluster, Ctx};
pub use comm::{Communicator, GatheredRows, PendingOp};
pub use cost::{Cat, CommWords, CostModel, ALL_CATS, NUM_CATS};
pub use frame::{PackedMat, Precision, Wire};
pub use grid::{Grid2D, Grid3D};
#[cfg(unix)]
pub use proc::connect_with_retry;
pub use timeline::{Timeline, TimelineReport};
pub use transport::TransportKind;
