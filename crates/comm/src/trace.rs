//! Execution tracing: per-rank event logs over the modeled clock,
//! exportable as Chrome trace JSON (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)) — a Gantt view of how SUMMA
//! stages, reductions, and waits interleave across ranks, in model time.

use crate::cost::Cat;

/// One traced interval on a rank's modeled clock.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event label (category label, or `"wait"` for barrier imbalance).
    pub name: &'static str,
    /// Cost category the interval was charged to.
    pub cat: Cat,
    /// Start clock (seconds).
    pub start: f64,
    /// End clock (seconds).
    pub end: f64,
}

impl TraceEvent {
    /// Interval duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Serialize per-rank event logs into the Chrome trace-event JSON format
/// (array-of-objects flavor): `pid` 0, one `tid` per rank, timestamps in
/// microseconds of the modeled clock.
pub fn to_chrome_json(per_rank: &[Vec<TraceEvent>]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (rank, events) in per_rank.iter().enumerate() {
        for e in events {
            if e.duration() <= 0.0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                e.name,
                e.cat.label(),
                rank,
                e.start * 1e6,
                e.duration() * 1e6
            ));
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape() {
        let events = vec![vec![
            TraceEvent {
                name: "spmm",
                cat: Cat::Spmm,
                start: 0.0,
                end: 1e-3,
            },
            TraceEvent {
                name: "wait",
                cat: Cat::Misc,
                start: 1e-3,
                end: 1e-3, // zero-length: skipped
            },
        ]];
        let json = to_chrome_json(&events);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"spmm\""));
        assert!(json.contains("\"dur\":1000.000"));
        assert!(!json.contains("wait"), "zero-length events are dropped");
        // Valid JSON (no trailing commas).
        assert!(!json.contains(",]"));
    }

    #[test]
    fn multi_rank_tids() {
        let ev = |s: f64| TraceEvent {
            name: "dcomm",
            cat: Cat::DenseComm,
            start: s,
            end: s + 0.5,
        };
        let json = to_chrome_json(&[vec![ev(0.0)], vec![ev(1.0)]]);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
    }
}
