//! Process-grid geometries and their sub-communicators.
//!
//! The 2D algorithm (§IV-C) organizes `P = Pr × Pc` ranks on a grid with
//! per-row and per-column broadcast groups (SUMMA); the 3D algorithm
//! (§IV-D) uses a `q × q × q` mesh whose 2D planes are "layers" and whose
//! third-dimension groups are "fibers".

use crate::cluster::Ctx;
use crate::comm::Communicator;

/// A 2D process grid: rank `r` sits at row `i = r / pc`, column
/// `j = r % pc`.
pub struct Grid2D {
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
    /// This rank's grid row.
    pub i: usize,
    /// This rank's grid column.
    pub j: usize,
    /// Communicator over this rank's grid row (size `pc`) — used for
    /// `BCAST(A_ic, P(i, :))`.
    pub row: Communicator,
    /// Communicator over this rank's grid column (size `pr`) — used for
    /// `BCAST(H_rj, P(:, j))`.
    pub col: Communicator,
}

impl Grid2D {
    /// Build the grid from a context. All ranks must call this at the same
    /// point. `pr * pc` must equal the world size.
    pub fn new(ctx: &Ctx, pr: usize, pc: usize) -> Self {
        assert_eq!(pr * pc, ctx.size, "grid {pr}x{pc} != world {}", ctx.size);
        let i = ctx.rank / pc;
        let j = ctx.rank % pc;
        // Two splits, same order on every rank.
        let row = ctx.world.split(i as u64);
        let col = ctx.world.split(j as u64);
        debug_assert_eq!(row.size(), pc);
        debug_assert_eq!(col.size(), pr);
        Grid2D {
            pr,
            pc,
            i,
            j,
            row,
            col,
        }
    }

    /// Square grid of side `√P`; panics if `P` is not a perfect square.
    pub fn square(ctx: &Ctx) -> Self {
        let q = int_sqrt(ctx.size)
            .unwrap_or_else(|| panic!("world size {} is not a perfect square", ctx.size));
        Self::new(ctx, q, q)
    }
}

/// A 3D process mesh of side `q` (`P = q³`): rank
/// `r = k·q² + i·q + j` sits at layer `k`, layer-row `i`, layer-column
/// `j`.
pub struct Grid3D {
    /// Mesh side.
    pub q: usize,
    /// Layer-row index.
    pub i: usize,
    /// Layer-column index.
    pub j: usize,
    /// Layer index.
    pub k: usize,
    /// Communicator over the layer row `(i, :, k)` (size `q`).
    pub row: Communicator,
    /// Communicator over the layer column `(:, j, k)` (size `q`).
    pub col: Communicator,
    /// Communicator over the fiber `(i, j, :)` (size `q`) — the
    /// third-dimension reduction group of Split-3D-SpMM.
    pub fiber: Communicator,
}

impl Grid3D {
    /// Build the mesh; `q³` must equal the world size.
    pub fn new(ctx: &Ctx, q: usize) -> Self {
        assert_eq!(q * q * q, ctx.size, "mesh {q}^3 != world {}", ctx.size);
        let k = ctx.rank / (q * q);
        let rem = ctx.rank % (q * q);
        let i = rem / q;
        let j = rem % q;
        let row = ctx.world.split((k * q + i) as u64);
        let col = ctx.world.split((k * q + j) as u64);
        let fiber = ctx.world.split((i * q + j) as u64);
        debug_assert_eq!(row.size(), q);
        debug_assert_eq!(col.size(), q);
        debug_assert_eq!(fiber.size(), q);
        Grid3D {
            q,
            i,
            j,
            k,
            row,
            col,
            fiber,
        }
    }

    /// Cube mesh from the world size; panics if `P` is not a perfect cube.
    pub fn cube(ctx: &Ctx) -> Self {
        let q = int_cbrt(ctx.size)
            .unwrap_or_else(|| panic!("world size {} is not a perfect cube", ctx.size));
        Self::new(ctx, q)
    }
}

/// Exact integer square root, if `n` is a perfect square.
pub fn int_sqrt(n: usize) -> Option<usize> {
    let r = (n as f64).sqrt().round() as usize;
    (r.saturating_sub(1)..=r + 1).find(|&c| c * c == n)
}

/// Exact integer cube root, if `n` is a perfect cube.
pub fn int_cbrt(n: usize) -> Option<usize> {
    let r = (n as f64).cbrt().round() as usize;
    (r.saturating_sub(1)..=r + 1).find(|&c| c * c * c == n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::cost::Cat;

    #[test]
    fn int_roots() {
        assert_eq!(int_sqrt(36), Some(6));
        assert_eq!(int_sqrt(35), None);
        assert_eq!(int_sqrt(1), Some(1));
        assert_eq!(int_cbrt(27), Some(3));
        assert_eq!(int_cbrt(26), None);
        assert_eq!(int_cbrt(64), Some(4));
    }

    #[test]
    fn grid2d_row_col_membership() {
        let results = Cluster::new(6).run(|ctx| {
            let g = Grid2D::new(ctx, 2, 3);
            let row_members = g
                .row
                .allgather(vec![ctx.rank as f64], Cat::DenseComm)
                .iter()
                .map(|v| v[0] as usize)
                .collect::<Vec<_>>();
            let col_members = g
                .col
                .allgather(vec![ctx.rank as f64], Cat::DenseComm)
                .iter()
                .map(|v| v[0] as usize)
                .collect::<Vec<_>>();
            (g.i, g.j, row_members, col_members)
        });
        for (rank, ((i, j, row, col), _)) in results.iter().enumerate() {
            assert_eq!(rank, i * 3 + j);
            let expect_row: Vec<usize> = (0..3).map(|jj| i * 3 + jj).collect();
            let expect_col: Vec<usize> = (0..2).map(|ii| ii * 3 + j).collect();
            assert_eq!(*row, expect_row);
            assert_eq!(*col, expect_col);
        }
    }

    #[test]
    fn grid3d_fiber_membership() {
        let results = Cluster::new(8).run(|ctx| {
            let g = Grid3D::new(ctx, 2);
            let fiber = g
                .fiber
                .allgather(vec![ctx.rank as f64], Cat::DenseComm)
                .iter()
                .map(|v| v[0] as usize)
                .collect::<Vec<_>>();
            (g.i, g.j, g.k, fiber)
        });
        for (rank, ((i, j, k, fiber), _)) in results.iter().enumerate() {
            assert_eq!(rank, k * 4 + i * 2 + j);
            let expect: Vec<usize> = (0..2).map(|kk| kk * 4 + i * 2 + j).collect();
            assert_eq!(*fiber, expect);
        }
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn square_grid_rejects_nonsquare() {
        Cluster::new(3).run(|ctx| {
            let _ = Grid2D::square(ctx);
        });
    }
}
