//! Simulated cluster driver: spawn `P` ranks as threads and run a closure
//! on each, returning per-rank results plus timeline reports.
//!
//! This replaces the paper's `torch.distributed` process group: ranks are
//! OS threads, "GPUs" are the rank-local kernels, and the interconnect is
//! the α–β model. One rank per simulated GPU, exactly like the paper's one
//! process per GPU on Summit.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crate::comm::{Communicator, Registry};
use crate::cost::{Cat, CostModel};
use crate::timeline::{Meter, Timeline, TimelineReport};

/// Per-rank execution context handed to the rank closure.
pub struct Ctx {
    /// This rank's id in `0..size`.
    pub rank: usize,
    /// Total rank count.
    pub size: usize,
    /// World communicator over all ranks.
    pub world: Communicator,
    meter: Rc<RefCell<Meter>>,
}

impl Ctx {
    /// Charge `dt` modeled seconds to `cat` on this rank.
    pub fn charge(&self, cat: Cat, dt: f64) {
        self.meter.borrow_mut().timeline.charge(cat, dt);
    }

    /// Charge a local SpMM (`nnz` entries over `rows` rows, dense operand
    /// `width` columns wide) under [`Cat::Spmm`].
    pub fn charge_spmm(&self, nnz: usize, rows: usize, width: usize) {
        self.meter.borrow_mut().charge_spmm(nnz, rows, width);
    }

    /// Charge a local `m x k · k x n` GEMM under [`Cat::Gemm`].
    pub fn charge_gemm(&self, m: usize, k: usize, n: usize) {
        self.meter.borrow_mut().charge_gemm(m, k, n);
    }

    /// Charge a transpose of `nnz` entries under [`Cat::Transpose`].
    pub fn charge_transpose(&self, nnz: usize) {
        self.meter.borrow_mut().charge_transpose(nnz);
    }

    /// Charge elementwise work over `n` elements under [`Cat::Misc`].
    pub fn charge_elementwise(&self, n: usize) {
        self.meter.borrow_mut().charge_elementwise(n);
    }

    /// Current modeled clock of this rank.
    pub fn clock(&self) -> f64 {
        self.meter.borrow().timeline.clock()
    }

    /// Snapshot this rank's timeline.
    pub fn report(&self) -> TimelineReport {
        self.meter.borrow().timeline.report()
    }

    /// Reset this rank's timeline (e.g., after warm-up epochs). Callers
    /// should barrier first so all ranks reset at a common point.
    pub fn reset_timeline(&self) {
        self.meter.borrow_mut().timeline.reset();
    }

    /// Start recording a per-rank execution trace (see
    /// [`crate::trace::to_chrome_json`]).
    pub fn enable_tracing(&self) {
        self.meter.borrow_mut().timeline.enable_tracing();
    }

    /// Take the recorded trace events.
    pub fn take_trace(&self) -> Vec<crate::trace::TraceEvent> {
        self.meter.borrow_mut().timeline.take_trace()
    }

    /// The cost model in effect.
    pub fn model(&self) -> Arc<CostModel> {
        self.meter.borrow().model.clone()
    }
}

/// Builder/driver for a simulated cluster run.
///
/// ```
/// use cagnet_comm::{Cat, Cluster};
/// // Sum each rank's id with an all-reduce on a 4-rank cluster.
/// let results = Cluster::new(4).run(|ctx| {
///     ctx.world.allreduce_scalar(ctx.rank as f64, Cat::DenseComm)
/// });
/// for (sum, report) in results {
///     assert_eq!(sum, 6.0);
///     assert!(report.clock > 0.0); // α–β time was charged
/// }
/// ```
pub struct Cluster {
    size: usize,
    model: Arc<CostModel>,
    timeout: Duration,
}

impl Cluster {
    /// A cluster of `size` ranks with the default (Summit-like) cost model.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "cluster needs at least one rank");
        Cluster {
            size,
            model: Arc::new(CostModel::summit_like()),
            timeout: Duration::from_secs(120),
        }
    }

    /// Use a specific cost model.
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = Arc::new(model);
        self
    }

    /// Override the collective-deadlock timeout (mainly for tests).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Run `f` on every rank; returns `(result, timeline report)` per rank,
    /// indexed by rank.
    ///
    /// # Panics
    /// Propagates the first rank panic (including collective-deadlock
    /// detection panics).
    pub fn run<R, F>(&self, f: F) -> Vec<(R, TimelineReport)>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Send + Sync,
    {
        let registry = Arc::new(Registry::new(self.timeout));
        let world_inner = registry.fresh_world(self.size);
        let size = self.size;
        let model = self.model.clone();
        let f = &f;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for rank in 0..size {
                let registry = registry.clone();
                let world_inner = world_inner.clone();
                let model = model.clone();
                handles.push(scope.spawn(move || {
                    let meter = Rc::new(RefCell::new(Meter {
                        model,
                        timeline: Timeline::new(),
                    }));
                    let world = Communicator::new_world(
                        registry,
                        world_inner,
                        size,
                        rank,
                        meter.clone(),
                    );
                    let mut ctx = Ctx {
                        rank,
                        size,
                        world,
                        meter: meter.clone(),
                    };
                    let out = f(&mut ctx);
                    let report = meter.borrow().timeline.report();
                    (out, report)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let results = Cluster::new(5).run(|ctx| (ctx.rank, ctx.size));
        for (rank, ((r, s), _)) in results.iter().enumerate() {
            assert_eq!(*r, rank);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn reports_capture_charges() {
        let results = Cluster::new(2).run(|ctx| {
            ctx.charge(Cat::Spmm, 1.0);
            ctx.charge_gemm(10, 10, 10);
        });
        for (_, rep) in results {
            assert_eq!(rep.seconds(Cat::Spmm), 1.0);
            assert!(rep.seconds(Cat::Gemm) > 0.0);
            assert!(rep.clock > 1.0);
        }
    }

    #[test]
    fn reset_clears_timeline() {
        let results = Cluster::new(2).run(|ctx| {
            ctx.charge(Cat::Spmm, 2.0);
            ctx.world.barrier();
            ctx.reset_timeline();
            ctx.charge(Cat::Gemm, 0.5);
            ctx.report()
        });
        for (rep, _) in results {
            assert_eq!(rep.seconds(Cat::Spmm), 0.0);
            assert_eq!(rep.seconds(Cat::Gemm), 0.5);
            assert_eq!(rep.clock, 0.5);
        }
    }

    #[test]
    fn charged_compute_is_modeled_not_wallclock() {
        // A 1-flop charge must not cost wall time proportional to model
        // time: just verify the modeled clock is tiny but nonzero.
        let results = Cluster::new(1).run(|ctx| {
            ctx.charge_gemm(1, 1, 1);
            ctx.clock()
        });
        assert!(results[0].0 > 0.0 && results[0].0 < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Cluster::new(0);
    }
}
