//! Simulated cluster driver: spawn `P` ranks as threads and run a closure
//! on each, returning per-rank results plus timeline reports.
//!
//! This replaces the paper's `torch.distributed` process group: ranks are
//! OS threads, "GPUs" are the rank-local kernels, and the interconnect is
//! the α–β model. One rank per simulated GPU, exactly like the paper's one
//! process per GPU on Summit.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crate::comm::{Communicator, Registry};
use crate::cost::{Cat, CostModel};
use crate::diag::FirstPanic;
use crate::frame::{Precision, Wire};
use crate::timeline::{Meter, Timeline, TimelineReport};
use crate::transport::{SharedLink, TransportKind};
use cagnet_check::waitgraph::{deadlock_report, is_quiescent_deadlock, RankPhase, RankSnapshot};
use cagnet_check::CheckMode;
use cagnet_parallel::ParallelCtx;

/// Watchdog poll period; a deadlock must hold across
/// [`STABLE_POLLS`] consecutive polls before it is declared.
const WATCHDOG_TICK: Duration = Duration::from_millis(25);
const STABLE_POLLS: usize = 3;

/// Per-rank execution context handed to the rank closure.
pub struct Ctx {
    /// This rank's id in `0..size`.
    pub rank: usize,
    /// Total rank count.
    pub size: usize,
    /// World communicator over all ranks.
    pub world: Communicator,
    /// Intra-rank thread budget for local compute kernels.
    parallel: ParallelCtx,
    meter: Rc<RefCell<Meter>>,
}

impl Ctx {
    pub(crate) fn for_rank(
        rank: usize,
        size: usize,
        world: Communicator,
        parallel: ParallelCtx,
        meter: Rc<RefCell<Meter>>,
    ) -> Self {
        Ctx {
            rank,
            size,
            world,
            parallel,
            meter,
        }
    }

    /// Charge `dt` modeled seconds to `cat` on this rank.
    pub fn charge(&self, cat: Cat, dt: f64) {
        self.meter.borrow_mut().timeline.charge(cat, dt);
    }

    /// Charge a local SpMM (`nnz` entries over `rows` rows, dense operand
    /// `width` columns wide) under [`Cat::Spmm`].
    pub fn charge_spmm(&self, nnz: usize, rows: usize, width: usize) {
        self.meter.borrow_mut().charge_spmm(nnz, rows, width);
    }

    /// Charge a local `m x k · k x n` GEMM under [`Cat::Gemm`].
    pub fn charge_gemm(&self, m: usize, k: usize, n: usize) {
        self.meter.borrow_mut().charge_gemm(m, k, n);
    }

    /// Charge a transpose of `nnz` entries under [`Cat::Transpose`].
    pub fn charge_transpose(&self, nnz: usize) {
        self.meter.borrow_mut().charge_transpose(nnz);
    }

    /// Charge elementwise work over `n` elements under [`Cat::Misc`].
    pub fn charge_elementwise(&self, n: usize) {
        self.meter.borrow_mut().charge_elementwise(n);
    }

    /// Current modeled clock of this rank.
    pub fn clock(&self) -> f64 {
        self.meter.borrow().timeline.clock()
    }

    /// Snapshot this rank's timeline.
    pub fn report(&self) -> TimelineReport {
        self.meter.borrow().timeline.report()
    }

    /// Reset this rank's timeline (e.g., after warm-up epochs). Callers
    /// should barrier first so all ranks reset at a common point.
    pub fn reset_timeline(&self) {
        self.meter.borrow_mut().timeline.reset();
    }

    /// Start recording a per-rank execution trace (see
    /// [`crate::trace::to_chrome_json`]).
    pub fn enable_tracing(&self) {
        self.meter.borrow_mut().timeline.enable_tracing();
    }

    /// Take the recorded trace events.
    pub fn take_trace(&self) -> Vec<crate::trace::TraceEvent> {
        self.meter.borrow_mut().timeline.take_trace()
    }

    /// The cost model in effect.
    pub fn model(&self) -> Arc<CostModel> {
        self.meter.borrow().model.clone()
    }

    /// The intra-rank parallel context: pass it to the `_with` kernel
    /// variants (`matmul_with`, `spmm_with`, ...) to fork local compute
    /// across this rank's thread budget. Results are bit-for-bit
    /// identical to serial regardless of the budget.
    pub fn parallel(&self) -> ParallelCtx {
        self.parallel
    }
}

/// Builder/driver for a simulated cluster run.
///
/// ```
/// use cagnet_comm::{Cat, Cluster};
/// // Sum each rank's id with an all-reduce on a 4-rank cluster.
/// let results = Cluster::new(4).run(|ctx| {
///     ctx.world.allreduce_scalar(ctx.rank as f64, Cat::DenseComm)
/// });
/// for (sum, report) in results {
///     assert_eq!(sum, 6.0);
///     assert!(report.clock > 0.0); // α–β time was charged
/// }
/// ```
pub struct Cluster {
    pub(crate) size: usize,
    pub(crate) model: Arc<CostModel>,
    pub(crate) timeout: Duration,
    pub(crate) threads_per_rank: usize,
    pub(crate) check: CheckMode,
    pub(crate) transport: TransportKind,
    pub(crate) precision: Precision,
}

impl Cluster {
    /// A cluster of `size` ranks with the default (Summit-like) cost model
    /// and a serial (1-thread) per-rank compute budget. Collective
    /// verification defaults to the `CAGNET_CHECK` environment variable
    /// (see [`CheckMode::from_env`]); override with [`Cluster::with_check`].
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "cluster needs at least one rank");
        Cluster {
            size,
            model: Arc::new(CostModel::summit_like()),
            timeout: Duration::from_secs(120),
            threads_per_rank: 1,
            check: CheckMode::from_env(),
            transport: TransportKind::from_env(),
            precision: Precision::default(),
        }
    }

    /// Select the wire precision for dense collectives (default
    /// [`Precision::F64`], the exact pre-compression behaviour). Sub-f64
    /// precisions round dense payloads at the communicator boundary only
    /// — local compute and reduction accumulation stay f64 throughout
    /// (DESIGN.md §14).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Select the transport backend explicitly (default: the
    /// `CAGNET_TRANSPORT` environment variable, shared memory when
    /// unset). Only [`Cluster::run_wire`] dispatches on it —
    /// [`Cluster::run`] always uses the in-process thread backend
    /// because its results never cross a process boundary.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Enable or disable collective verification (fingerprint matching on
    /// every collective plus the deadlock watchdog). Checking never
    /// changes modeled results: timelines and traces are bit-identical
    /// with it on and off.
    pub fn with_check(mut self, check: CheckMode) -> Self {
        self.check = check;
        self
    }

    /// Use a specific cost model. Call before
    /// [`Cluster::with_threads_per_rank`] — the thread budget is folded
    /// into the model's compute term at `run` time.
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = Arc::new(model);
        self
    }

    /// Give every rank `threads` compute threads: local kernels invoked
    /// through [`Ctx::parallel`] fork across them, and the cost model's
    /// GEMM/SpMM terms divide by the budget. Results stay bit-for-bit
    /// identical to `threads = 1`.
    pub fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = threads.max(1);
        self
    }

    /// Override the collective-deadlock timeout (mainly for tests).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Run `f` on every rank; returns `(result, timeline report)` per rank,
    /// indexed by rank.
    ///
    /// # Panics
    /// On any rank failure, panics with the **first** rank's panic —
    /// naming the rank and the collective it was in — rather than a
    /// cascade of follow-on errors from its peers.
    pub fn run<R, F>(&self, f: F) -> Vec<(R, TimelineReport)>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Send + Sync,
    {
        self.run_threads(f)
    }

    /// Like [`Cluster::run`], but dispatches on the configured
    /// [`TransportKind`]: the shared-memory backend runs ranks as
    /// threads exactly like `run`, while the socket backend launches
    /// `size - 1` worker processes (re-executions of the current
    /// binary) connected over a Unix domain socket and ships each
    /// rank's `(result, report)` back as framed bytes — hence the
    /// [`Wire`] bound on `R`. Single-rank runs never spawn.
    ///
    /// Results are bit-identical across backends: all collective
    /// semantics live above the transport trait, and every `f64`
    /// crosses the wire as its exact bit pattern.
    pub fn run_wire<R, F>(&self, f: F) -> Vec<(R, TimelineReport)>
    where
        R: Send + Wire,
        F: Fn(&mut Ctx) -> R + Send + Sync,
    {
        match self.transport {
            TransportKind::Shared => self.run_threads(f),
            #[cfg(unix)]
            TransportKind::Socket => {
                // Count socket-dispatched runs per test/caller thread so
                // a spawned worker (which replays the same code path)
                // can find the run it was forked for.
                let idx = crate::proc::next_socket_run_idx();
                if self.size == 1 {
                    return self.run_threads(f);
                }
                match crate::proc::worker_env() {
                    Some(env) if env.run == idx => crate::proc::run_worker(self, &env, f),
                    // Earlier runs replay deterministically in-process
                    // so the worker reaches its target run with
                    // identical state.
                    Some(_) => self.run_threads(f),
                    None => crate::proc::run_launcher(self, idx, f),
                }
            }
            #[cfg(not(unix))]
            TransportKind::Socket => {
                panic!("the socket transport requires a Unix platform")
            }
        }
    }

    /// The cost model with the cluster's thread budget folded in.
    pub(crate) fn effective_model(&self) -> Arc<CostModel> {
        if self.threads_per_rank == self.model.threads_per_rank {
            self.model.clone()
        } else {
            let mut m = (*self.model).clone();
            m.threads_per_rank = self.threads_per_rank;
            Arc::new(m)
        }
    }

    fn run_threads<R, F>(&self, f: F) -> Vec<(R, TimelineReport)>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Send + Sync,
    {
        let registry = Arc::new(
            Registry::new(self.timeout)
                .with_check(self.check)
                .with_precision(self.precision),
        );
        registry.diag.init(self.size);
        let world_link = SharedLink::world(&registry, self.size);
        let size = self.size;
        let model = self.effective_model();
        let parallel = ParallelCtx::new(self.threads_per_rank);
        let f = &f;

        std::thread::scope(|scope| {
            // The watchdog polls rank states and declares quiescent
            // deadlock (every rank done or parked, no rendezvous
            // completable) long before the collective timeout would fire.
            if self.check.is_on() {
                let registry = registry.clone();
                scope.spawn(move || watchdog(&registry));
            }
            let mut handles = Vec::with_capacity(size);
            for rank in 0..size {
                let registry = registry.clone();
                let world_link = world_link.clone();
                let model = model.clone();
                handles.push(scope.spawn(move || {
                    let meter = Rc::new(RefCell::new(Meter {
                        model,
                        timeline: Timeline::new(),
                    }));
                    let world = Communicator::new_world(
                        registry.clone(),
                        world_link,
                        size,
                        rank,
                        meter.clone(),
                    );
                    let mut ctx = Ctx::for_rank(rank, size, world, parallel, meter.clone());
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                    match result {
                        Ok(out) => {
                            registry.diag.set_phase(rank, RankPhase::Done);
                            let report = meter.borrow().timeline.report();
                            (out, report)
                        }
                        Err(payload) => {
                            // Record which rank failed first and during
                            // which collective, raise the abort flag so
                            // peers stop within one wait tick, then let
                            // the panic continue unwinding.
                            let during = registry.diag.last_collective_label(rank);
                            let message = panic_message(payload.as_ref());
                            registry.diag.record_first_panic(FirstPanic {
                                rank,
                                during: during.clone(),
                                message: message.clone(),
                            });
                            registry.diag.set_phase(rank, RankPhase::Panicked);
                            registry
                                .diag
                                .set_abort(format!("rank {rank} panicked during {during}"));
                            std::panic::resume_unwind(payload)
                        }
                    }
                }));
            }
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let mut out = Vec::with_capacity(size);
            let mut first_err = None;
            for j in joined {
                match j {
                    Ok(v) => out.push(v),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                // Prefer the recorded first failure: one clear error that
                // names the offending rank and collective (and embeds the
                // original panic message) instead of whichever follow-on
                // abort happened to be joined first.
                match registry.diag.first_panic_render() {
                    Some(msg) => panic!("{msg}"),
                    None => std::panic::resume_unwind(e),
                }
            }
            out
        })
    }
}

/// Extract a readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "(non-string panic payload)".to_string(),
        }
    }
}

/// Deadlock watchdog: exits once every rank is done or panicked (or the
/// run is already aborting); raises the abort flag with a full
/// wait-for-graph report when the rank states show a quiescent deadlock
/// stable across [`STABLE_POLLS`] polls.
pub(crate) fn watchdog(registry: &Registry) {
    let mut stable = 0usize;
    let mut last: Option<Vec<RankSnapshot>> = None;
    loop {
        std::thread::sleep(WATCHDOG_TICK);
        if registry.diag.abort_message().is_some() {
            return;
        }
        let snap = registry.diag.snapshot();
        if snap
            .iter()
            .all(|s| matches!(s.phase, RankPhase::Done | RankPhase::Panicked))
        {
            return;
        }
        if is_quiescent_deadlock(&snap) && last.as_ref() == Some(&snap) {
            stable += 1;
            if stable >= STABLE_POLLS {
                let report = deadlock_report(&snap, &registry.diag.histories());
                registry.diag.set_abort(report);
                return;
            }
        } else {
            stable = 0;
        }
        last = Some(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let results = Cluster::new(5).run(|ctx| (ctx.rank, ctx.size));
        for (rank, ((r, s), _)) in results.iter().enumerate() {
            assert_eq!(*r, rank);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn reports_capture_charges() {
        let results = Cluster::new(2).run(|ctx| {
            ctx.charge(Cat::Spmm, 1.0);
            ctx.charge_gemm(10, 10, 10);
        });
        for (_, rep) in results {
            assert_eq!(rep.seconds(Cat::Spmm), 1.0);
            assert!(rep.seconds(Cat::Gemm) > 0.0);
            assert!(rep.clock > 1.0);
        }
    }

    #[test]
    fn reset_clears_timeline() {
        let results = Cluster::new(2).run(|ctx| {
            ctx.charge(Cat::Spmm, 2.0);
            ctx.world.barrier();
            ctx.reset_timeline();
            ctx.charge(Cat::Gemm, 0.5);
            ctx.report()
        });
        for (rep, _) in results {
            assert_eq!(rep.seconds(Cat::Spmm), 0.0);
            assert_eq!(rep.seconds(Cat::Gemm), 0.5);
            assert_eq!(rep.clock, 0.5);
        }
    }

    #[test]
    fn charged_compute_is_modeled_not_wallclock() {
        // A 1-flop charge must not cost wall time proportional to model
        // time: just verify the modeled clock is tiny but nonzero.
        let results = Cluster::new(1).run(|ctx| {
            ctx.charge_gemm(1, 1, 1);
            ctx.clock()
        });
        assert!(results[0].0 > 0.0 && results[0].0 < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Cluster::new(0);
    }

    #[test]
    fn thread_budget_reaches_ctx_and_model() {
        let results = Cluster::new(2)
            .with_threads_per_rank(4)
            .run(|ctx| (ctx.parallel().threads(), ctx.model().threads_per_rank));
        for ((kernel_threads, model_threads), _) in results {
            assert_eq!(kernel_threads, 4);
            assert_eq!(model_threads, 4);
        }
    }

    #[test]
    fn default_cluster_is_serial() {
        let results = Cluster::new(1).run(|ctx| ctx.parallel().threads());
        assert_eq!(results[0].0, 1);
    }

    #[test]
    fn threads_speed_up_modeled_gemm() {
        let charge = |threads: usize| {
            let results = Cluster::new(1).with_threads_per_rank(threads).run(|ctx| {
                ctx.charge_gemm(64, 64, 64);
                ctx.clock()
            });
            results[0].0
        };
        let serial = charge(1);
        let quad = charge(4);
        assert!((serial / quad - 4.0).abs() < 1e-9);
    }
}
